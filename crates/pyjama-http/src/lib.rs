//! HTTP service substrate for the paper's second case study (§V-B).
//!
//! The paper implements "an HTTP service that provides data encryption to
//! web users" two ways: with Jetty's thread-pool framework ("a
//! thread-per-request policy but reuses a fixed number of threads from a
//! thread pool") and with Pyjama's virtual targets ("to offload the
//! time-consuming computations to worker threads"). This crate provides:
//!
//! * [`message`] — a small HTTP/1.1 request/response codec (one request per
//!   connection, `Connection: close`, `Content-Length` bodies).
//! * [`server`] — a TCP server over loopback with pluggable
//!   [`ServingPolicy`]: [`ServingPolicy::JettyPool`] or
//!   [`ServingPolicy::PyjamaVirtualTarget`].
//! * [`client`] — a blocking client plus the closed-loop
//!   [`LoadGenerator`]: "100 virtual users, with each user sending a
//!   constant number of requests", measuring throughput (responses/sec).
//!
//! Everything runs over real loopback sockets; no external web server or
//! load-testing tool is required.

pub mod client;
pub mod message;
pub mod server;

pub use client::{http_get, http_post, LoadGenerator, LoadReport};
pub use message::{Request, Response, Status};
pub use server::{HttpServer, ServingPolicy};
