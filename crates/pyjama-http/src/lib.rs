//! HTTP service substrate for the paper's second case study (§V-B).
//!
//! The paper implements "an HTTP service that provides data encryption to
//! web users" two ways: with Jetty's thread-pool framework ("a
//! thread-per-request policy but reuses a fixed number of threads from a
//! thread pool") and with Pyjama's virtual targets ("to offload the
//! time-consuming computations to worker threads"). This crate provides:
//!
//! * [`message`] — a small HTTP/1.1 request/response codec with an
//!   allocation-conscious hot path (reusable request shells, header slots
//!   and serialisation buffers; `Content-Length` bodies, 8 MiB cap).
//! * [`server`] — a TCP server over loopback with persistent (keep-alive,
//!   pipelining-capable) connections, a sharded accept path, and pluggable
//!   [`ServingPolicy`]: [`ServingPolicy::JettyPool`] (thread-pinned
//!   sessions), [`ServingPolicy::PyjamaVirtualTarget`] (each connection
//!   re-arms itself as a chain of `nowait` target regions; idle sockets
//!   park on a poller instead of pinning a worker) or
//!   [`ServingPolicy::Reactor`] (an epoll reactor owns every socket
//!   non-blocking and kernel readiness posts the serving regions — tens of
//!   thousands of keep-alive connections on a bounded pool).
//! * [`client`] — a blocking client, the persistent-connection
//!   [`ClientConn`], and the closed-loop [`LoadGenerator`]: "100 virtual
//!   users, with each user sending a constant number of requests",
//!   measuring throughput (responses/sec) and latency percentiles.
//! * [`admin`] — the `/admin` control surface on its own listener: inspect
//!   and atomically reconfigure a live server started with
//!   [`HttpServer::start_controlled`], whose connection limits, body cap
//!   and admission threshold (shed with `429 Retry-After` under overload)
//!   follow the control plane's current config snapshot.
//!
//! Everything runs over real loopback sockets; no external web server or
//! load-testing tool is required.

pub mod admin;
pub mod client;
pub(crate) mod conn;
pub(crate) mod idle;
pub mod message;
pub(crate) mod reactor;
pub mod server;

pub use admin::{AdminServer, AdmissionProbe};
pub use client::{http_get, http_post, ClientConn, LoadGenerator, LoadReport};
pub use message::{
    Headers, ParseStatus, ReadError, Request, Response, Status, MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
pub use reactor::nofile_limit_at_least;
pub use server::{HttpServer, ServerOptions, ServingPolicy};
