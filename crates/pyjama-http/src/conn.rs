//! Per-connection serving state for persistent (keep-alive) connections.
//!
//! [`ConnState`] owns everything one TCP connection needs across its whole
//! lifetime — the buffered reader, the parsed-request shell, the line
//! scratch and the outgoing head buffer — so that serving request *n+1* on
//! a connection allocates nothing the serving of request *n* did not
//! already allocate. Responses leave as one `writev` over `[head, body]`
//! (with `TCP_NODELAY` set, so the kernel does not hold the tail of a
//! response hostage to Nagle/delayed-ACK interplay): the body is never
//! copied into the head buffer, and the common case is still a single
//! syscall.

use std::io::{BufRead, BufReader, IoSlice, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use pyjama_trace::TraceId;

use crate::message::{ReadError, ReadScratch, Request, Response};
use crate::server::ServerOptions;

/// One accepted connection and its reusable serving buffers.
pub(crate) struct ConnState {
    /// Write half (`try_clone` of the reader's stream — same socket).
    write: TcpStream,
    /// Buffered read half; persists so pipelined bytes are never dropped.
    reader: BufReader<TcpStream>,
    /// Parsed-request shell, reused across requests.
    pub(crate) req: Request,
    /// Line scratch for the parser.
    scratch: ReadScratch,
    /// Outgoing head serialisation buffer, reused across responses (the
    /// body is sent as its own `writev` slice, never copied in here).
    out: Vec<u8>,
    /// Requests fully served (written) on this connection.
    pub(crate) served: u32,
    /// Causal trace id minted at accept; every region in the connection's
    /// re-arm chain continues this flow.
    pub(crate) trace: TraceId,
    /// Effective per-session options captured at accept. A live
    /// reconfiguration changes *new* sessions; this one keeps the limits it
    /// was admitted under.
    pub(crate) opts: ServerOptions,
}

impl ConnState {
    /// Wraps an accepted stream: sets `TCP_NODELAY` plus the per-I/O
    /// timeouts and splits read/write halves.
    pub(crate) fn new(stream: TcpStream, io_timeout: Duration) -> std::io::Result<ConnState> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        let write = stream.try_clone()?;
        Ok(ConnState {
            write,
            reader: BufReader::new(stream),
            req: Request::empty(),
            scratch: ReadScratch::new(),
            out: Vec::new(),
            served: 0,
            trace: TraceId::NONE,
            opts: ServerOptions::default(),
        })
    }

    /// True when bytes of a further request are already buffered — the
    /// client pipelined.
    pub(crate) fn has_buffered(&self) -> bool {
        !self.reader.buffer().is_empty()
    }

    /// Parses the next request into the reused shell.
    pub(crate) fn read_request(&mut self) -> Result<(), ReadError> {
        Request::read_into(&mut self.reader, &mut self.req, &mut self.scratch)
    }

    /// Parses the next request with a config-sourced body cap.
    pub(crate) fn read_request_capped(&mut self, max_body: usize) -> Result<(), ReadError> {
        Request::read_into_capped(&mut self.reader, &mut self.req, &mut self.scratch, max_body)
    }

    /// Serialises `resp`'s head (with the connection header forced to
    /// `close`/`keep-alive` per `close`) into the reused buffer and sends
    /// head + body as one vectored write (a single `writev` syscall when
    /// the socket buffer has room; short writes continue where they left
    /// off).
    pub(crate) fn write_response(&mut self, resp: &Response, close: bool) -> std::io::Result<()> {
        let tok = if close { "close" } else { "keep-alive" };
        resp.write_head_into(&mut self.out, Some(tok));
        write_all_vectored(&mut self.write, &self.out, &resp.body)?;
        self.write.flush()
    }

    /// The underlying socket (for readiness polling).
    pub(crate) fn socket(&self) -> &TcpStream {
        self.reader.get_ref()
    }

    /// Restores the per-I/O read timeout (after readiness waiting fiddled
    /// with it).
    pub(crate) fn set_read_timeout(&self, t: Duration) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(Some(t))
    }
}

/// Writes the concatenation of `a` then `b` to `w`, preferring one
/// `write_vectored` (`writev`) per attempt so the fast path is a single
/// syscall with no copy joining the slices. Short writes continue from the
/// exact offset reached; `Interrupted` retries.
///
/// (Hand-rolled continuation arithmetic instead of `IoSlice::advance_slices`
/// to stay on long-stable std APIs.)
pub(crate) fn write_all_vectored(
    w: &mut impl Write,
    a: &[u8],
    b: &[u8],
) -> std::io::Result<()> {
    let (mut a, mut b) = (a, b);
    while !a.is_empty() || !b.is_empty() {
        let written = if a.is_empty() {
            w.write(b)
        } else if b.is_empty() {
            w.write(a)
        } else {
            w.write_vectored(&[IoSlice::new(a), IoSlice::new(b)])
        };
        match written {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write whole response",
                ))
            }
            Ok(n) => {
                let from_a = n.min(a.len());
                a = &a[from_a..];
                b = &b[n - from_a..];
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

impl std::fmt::Debug for ConnState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnState")
            .field("peer", &self.socket().peer_addr().ok())
            .field("served", &self.served)
            .finish()
    }
}

/// Outcome of waiting for the next request on a persistent connection.
#[derive(Debug)]
pub(crate) enum NextRequest {
    /// Request bytes are available; `pipelined` when they were already
    /// buffered before the wait (no read happened in between).
    Ready {
        /// True when the bytes were sitting in the read buffer already.
        pipelined: bool,
    },
    /// The peer closed the connection cleanly.
    Eof,
    /// No request arrived within the deadline.
    IdleTimeout,
    /// The server began shutdown while waiting.
    Stopped,
    /// Transport failure (payload kept for `Debug` diagnostics only).
    Err(#[allow(dead_code)] std::io::Error),
}

/// Blocks (in short slices, so `stop` stays responsive) until request bytes
/// are available on `conn`, the peer closes, `deadline` passes, or `stop`
/// is raised. Used by the pool-thread (Jetty-style) session loop; the
/// Pyjama policy parks idle connections on the shared poller instead.
pub(crate) fn wait_readable(
    conn: &mut ConnState,
    deadline: Instant,
    io_timeout: Duration,
    stop: &AtomicBool,
) -> NextRequest {
    if conn.has_buffered() {
        return NextRequest::Ready { pipelined: true };
    }
    const SLICE: Duration = Duration::from_millis(50);
    loop {
        if stop.load(Ordering::SeqCst) {
            return NextRequest::Stopped;
        }
        let now = Instant::now();
        if now >= deadline {
            return NextRequest::IdleTimeout;
        }
        let wait = SLICE.min(deadline - now);
        if let Err(e) = conn.socket().set_read_timeout(Some(wait.max(Duration::from_millis(1)))) {
            return NextRequest::Err(e);
        }
        match conn.reader.fill_buf() {
            Ok(buf) if buf.is_empty() => return NextRequest::Eof,
            Ok(_) => {
                return match conn.set_read_timeout(io_timeout) {
                    Ok(()) => NextRequest::Ready { pipelined: false },
                    Err(e) => NextRequest::Err(e),
                };
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return NextRequest::Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        (a, b)
    }

    #[test]
    fn ready_pipelined_when_bytes_already_buffered() {
        let (mut client, server) = pair();
        let mut conn = ConnState::new(server, Duration::from_millis(500)).unwrap();
        let mut wire = Vec::new();
        Request::new("GET", "/a", Vec::new()).write_to(&mut wire).unwrap();
        Request::new("GET", "/b", Vec::new()).write_to(&mut wire).unwrap();
        client.write_all(&wire).unwrap();

        // First read buffers both requests; only one is consumed.
        conn.read_request().unwrap();
        assert_eq!(conn.req.path, "/a");
        assert!(conn.has_buffered());
        let stop = AtomicBool::new(false);
        let next = wait_readable(
            &mut conn,
            Instant::now() + Duration::from_secs(1),
            Duration::from_millis(500),
            &stop,
        );
        assert!(matches!(next, NextRequest::Ready { pipelined: true }), "{next:?}");
        conn.read_request().unwrap();
        assert_eq!(conn.req.path, "/b");
    }

    #[test]
    fn wait_sees_late_arriving_bytes_without_pipelined_flag() {
        let (mut client, server) = pair();
        let mut conn = ConnState::new(server, Duration::from_millis(500)).unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            Request::new("GET", "/late", Vec::new()).write_to(&mut client).unwrap();
            client
        });
        let stop = AtomicBool::new(false);
        let next = wait_readable(
            &mut conn,
            Instant::now() + Duration::from_secs(2),
            Duration::from_millis(500),
            &stop,
        );
        assert!(matches!(next, NextRequest::Ready { pipelined: false }), "{next:?}");
        conn.read_request().unwrap();
        assert_eq!(conn.req.path, "/late");
        drop(t.join().unwrap());
    }

    #[test]
    fn wait_reports_eof_on_peer_close() {
        let (client, server) = pair();
        let mut conn = ConnState::new(server, Duration::from_millis(500)).unwrap();
        drop(client);
        let stop = AtomicBool::new(false);
        let next = wait_readable(
            &mut conn,
            Instant::now() + Duration::from_secs(1),
            Duration::from_millis(500),
            &stop,
        );
        assert!(matches!(next, NextRequest::Eof), "{next:?}");
    }

    #[test]
    fn wait_times_out_and_honors_stop() {
        let (_client, server) = pair();
        let mut conn = ConnState::new(server, Duration::from_millis(500)).unwrap();
        let stop = AtomicBool::new(false);
        let t0 = Instant::now();
        let next = wait_readable(
            &mut conn,
            Instant::now() + Duration::from_millis(80),
            Duration::from_millis(500),
            &stop,
        );
        assert!(matches!(next, NextRequest::IdleTimeout), "{next:?}");
        assert!(t0.elapsed() >= Duration::from_millis(75));

        stop.store(true, Ordering::SeqCst);
        let next = wait_readable(
            &mut conn,
            Instant::now() + Duration::from_secs(10),
            Duration::from_millis(500),
            &stop,
        );
        assert!(matches!(next, NextRequest::Stopped), "{next:?}");
    }

    /// A writer that accepts at most `limit` bytes per call — exercises the
    /// short-write continuation across the head/body slice boundary.
    struct Trickle {
        limit: usize,
        calls: usize,
        data: Vec<u8>,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls += 1;
            let n = buf.len().min(self.limit);
            self.data.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            self.calls += 1;
            let mut left = self.limit;
            let mut n = 0;
            for b in bufs {
                let take = b.len().min(left);
                self.data.extend_from_slice(&b[..take]);
                n += take;
                left -= take;
                if left == 0 {
                    break;
                }
            }
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_continues_across_short_writes() {
        let head = b"HTTP/1.1 200 OK\r\ncontent-length: 11\r\n\r\n";
        let body = b"hello world";
        // Every per-call limit, including ones that split mid-head,
        // exactly at the boundary, and mid-body.
        for limit in 1..=head.len() + body.len() {
            let mut w = Trickle { limit, calls: 0, data: Vec::new() };
            write_all_vectored(&mut w, head, body).unwrap();
            let mut want = head.to_vec();
            want.extend_from_slice(body);
            assert_eq!(w.data, want, "limit={limit}");
        }
        // Unconstrained writer: exactly one (vectored) call.
        let mut w = Trickle { limit: usize::MAX, calls: 0, data: Vec::new() };
        write_all_vectored(&mut w, head, body).unwrap();
        assert_eq!(w.calls, 1, "fast path must be a single syscall");
    }

    #[test]
    fn vectored_write_handles_empty_sides() {
        for (a, b) in [(&b""[..], &b"body"[..]), (&b"head"[..], &b""[..]), (&b""[..], &b""[..])] {
            let mut w = Trickle { limit: 3, calls: 0, data: Vec::new() };
            write_all_vectored(&mut w, a, b).unwrap();
            let mut want = a.to_vec();
            want.extend_from_slice(b);
            assert_eq!(w.data, want);
        }
    }

    #[test]
    fn write_response_is_single_buffered_write_with_override() {
        let (client, server) = pair();
        let mut conn = ConnState::new(server, Duration::from_millis(500)).unwrap();
        let resp = Response::ok(b"abc".to_vec());
        conn.write_response(&resp, false).unwrap();
        let cap = conn.out.capacity();
        let ptr = conn.out.as_ptr();
        conn.write_response(&resp, true).unwrap();
        assert_eq!(conn.out.capacity(), cap, "out buffer must be reused");
        assert_eq!(conn.out.as_ptr(), ptr);

        let mut reader = BufReader::new(client);
        let first = Response::read_from(&mut reader).unwrap();
        assert!(!first.announces_close());
        let second = Response::read_from(&mut reader).unwrap();
        assert!(second.announces_close());
        assert_eq!(second.body, b"abc");
    }
}
