//! Idle-connection parking for the Pyjama serving policy.
//!
//! The paper's invariant is that the event-dispatch side never blocks: a
//! worker offloaded a handler must not then sit in `read` waiting for a
//! keep-alive client that may stay silent for seconds. Instead, once a
//! response is written and no further request is buffered, the connection is
//! *parked* here. A single poller thread multiplexes every parked socket
//! (one `poll(2)` over all of them on Linux; a non-blocking probe sweep
//! elsewhere) and hands a connection back to the serving policy — via the
//! `on_ready` callback, which posts a fresh target region — only when bytes
//! have actually arrived. Connections idle past their deadline are evicted
//! through `on_timeout`.
//!
//! One thread, however many thousand parked sockets; pool workers only ever
//! touch connections with data waiting.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use crate::conn::ConnState;

/// A parked connection and its eviction deadline.
pub(crate) struct Parked {
    /// The idle connection (no request bytes buffered when parked).
    pub(crate) conn: ConnState,
    /// Evict at this instant if still silent.
    pub(crate) deadline: Instant,
}

/// State shared between parkers (worker threads finishing a response) and
/// the poller thread.
pub(crate) struct ParkerShared {
    incoming: Mutex<Vec<Parked>>,
    stop: AtomicBool,
    #[cfg(target_os = "linux")]
    wake_tx: std::os::unix::net::UnixStream,
    #[cfg(target_os = "linux")]
    wake_rx: Mutex<Option<std::os::unix::net::UnixStream>>,
}

impl ParkerShared {
    /// Fresh parker state (on Linux this allocates the wake pipe).
    pub(crate) fn new() -> std::io::Result<Arc<Self>> {
        #[cfg(target_os = "linux")]
        {
            let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            Ok(Arc::new(ParkerShared {
                incoming: Mutex::new(Vec::new()),
                stop: AtomicBool::new(false),
                wake_tx: tx,
                wake_rx: Mutex::new(Some(rx)),
            }))
        }
        #[cfg(not(target_os = "linux"))]
        Ok(Arc::new(ParkerShared {
            incoming: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        }))
    }

    /// Hands an idle connection to the poller. If the parker has stopped the
    /// connection is simply dropped (socket closed) — the client observes a
    /// clean EOF, never a stranded half-open connection.
    pub(crate) fn park(&self, conn: ConnState, deadline: Instant) {
        if self.stop.load(Ordering::SeqCst) {
            return; // drop closes the socket
        }
        self.incoming.lock().push(Parked { conn, deadline });
        self.wake();
    }

    /// Raises the stop flag and wakes the poller.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake();
    }

    fn wake(&self) {
        #[cfg(target_os = "linux")]
        {
            use std::io::Write as _;
            // A full pipe means a wake is already pending; any error here is
            // therefore ignorable.
            let _ = (&self.wake_tx).write(&[1]);
        }
    }
}

/// The poller thread plus its shared state. Dropping (or
/// [`shutdown`](IdleParker::shutdown)) stops the thread and closes every
/// still-parked connection.
pub(crate) struct IdleParker {
    shared: Arc<ParkerShared>,
    thread: Option<JoinHandle<()>>,
}

impl IdleParker {
    /// Spawns the poller over `shared`. `on_ready` receives connections with
    /// bytes (or EOF/error) waiting; `on_timeout` receives idle-evicted
    /// ones. Both run on the poller thread, so they must be cheap — the
    /// serving policies just post a target region / bump a counter.
    pub(crate) fn spawn(
        shared: Arc<ParkerShared>,
        on_ready: impl Fn(ConnState) + Send + 'static,
        on_timeout: impl Fn(ConnState) + Send + 'static,
    ) -> std::io::Result<IdleParker> {
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("http-idle-poller".into())
                .spawn(move || poll_loop(shared, on_ready, on_timeout))?
        };
        Ok(IdleParker {
            shared,
            thread: Some(thread),
        })
    }

    /// Stops and joins the poller; parked connections are closed. Idempotent.
    pub(crate) fn shutdown(&mut self) {
        self.shared.stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for IdleParker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Linux: one `poll(2)` over the wake pipe plus every parked socket.
///
/// The raw FFI declaration avoids a libc dependency (std-only constraint);
/// it is gated to Linux because `nfds_t` is `unsigned long` here but not on
/// every unix.
#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_ulong};
    use std::os::unix::io::RawFd;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub(super) struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    pub(super) const POLLIN: i16 = 0x001;
    pub(super) const POLLERR: i16 = 0x008;
    pub(super) const POLLHUP: i16 = 0x010;

    extern "C" {
        pub(super) fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }
}

#[cfg(target_os = "linux")]
fn poll_loop(
    shared: Arc<ParkerShared>,
    on_ready: impl Fn(ConnState),
    on_timeout: impl Fn(ConnState),
) {
    use std::io::Read as _;
    use std::os::unix::io::AsRawFd as _;
    use sys::{PollFd, POLLERR, POLLHUP, POLLIN};

    let wake_rx = shared
        .wake_rx
        .lock()
        .take()
        .expect("poller spawned twice over one ParkerShared");
    let mut parked: Vec<Parked> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    loop {
        parked.append(&mut shared.incoming.lock());
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        fds.clear();
        fds.push(PollFd {
            fd: wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for p in &parked {
            fds.push(PollFd {
                fd: p.conn.socket().as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
        }
        // Sleep until the earliest eviction deadline (or indefinitely when
        // nothing is parked — the wake pipe interrupts for new arrivals and
        // stop).
        let now = Instant::now();
        let timeout_ms: i32 = parked
            .iter()
            .map(|p| p.deadline.saturating_duration_since(now))
            .min()
            .map(|d| (d.as_millis().min(60_000) as i32).saturating_add(1))
            .unwrap_or(-1);
        let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as _, timeout_ms) };
        if n < 0 {
            // EINTR (a signal landed mid-wait) is routine: retry at once —
            // the loop top recomputes the timeout from the deadlines, so the
            // retried wait never over-sleeps. Anything else is a persistent
            // error; back off so we don't spin hot on it.
            if std::io::Error::last_os_error().kind() != std::io::ErrorKind::Interrupted {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            continue;
        }
        if fds[0].revents != 0 {
            let mut buf = [0u8; 64];
            while matches!((&wake_rx).read(&mut buf), Ok(n) if n > 0) {}
        }
        // Ready (data, error or hangup — the read path disambiguates) and
        // expired connections leave `parked` back to front so `swap_remove`
        // indices stay valid.
        for i in (0..parked.len()).rev() {
            if fds[i + 1].revents & (POLLIN | POLLERR | POLLHUP) != 0 {
                on_ready(parked.swap_remove(i).conn);
            }
        }
        let now = Instant::now();
        for i in (0..parked.len()).rev() {
            if parked[i].deadline <= now {
                on_timeout(parked.swap_remove(i).conn);
            }
        }
    }
    // Dropping parked connections closes their sockets: clients see EOF.
    parked.clear();
    shared.incoming.lock().clear();
}

/// Portable fallback: a non-blocking `peek` sweep every couple of
/// milliseconds. O(parked) per tick, but correct anywhere std's TcpStream
/// works.
#[cfg(not(target_os = "linux"))]
fn poll_loop(
    shared: Arc<ParkerShared>,
    on_ready: impl Fn(ConnState),
    on_timeout: impl Fn(ConnState),
) {
    let mut parked: Vec<Parked> = Vec::new();
    let mut probe = [0u8; 1];
    loop {
        {
            // Flip each socket to non-blocking once, on arrival, instead of
            // toggling it around every probe (two fcntl syscalls per parked
            // connection per 2 ms tick added up fast). It flips back to
            // blocking only when the connection is handed back.
            let mut incoming = shared.incoming.lock();
            for p in incoming.drain(..) {
                let _ = p.conn.socket().set_nonblocking(true);
                parked.push(p);
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        for i in (0..parked.len()).rev() {
            let ready = match parked[i].conn.socket().peek(&mut probe) {
                Ok(_) => true, // data, or Ok(0) = EOF
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
                Err(_) => true, // surface the broken socket to the read path
            };
            if ready {
                let p = parked.swap_remove(i);
                let _ = p.conn.socket().set_nonblocking(false);
                on_ready(p.conn);
            }
        }
        let now = Instant::now();
        for i in (0..parked.len()).rev() {
            if parked[i].deadline <= now {
                let p = parked.swap_remove(i);
                let _ = p.conn.socket().set_nonblocking(false);
                on_timeout(p.conn);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    parked.clear();
    shared.incoming.lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Request;
    use std::net::{TcpListener, TcpStream};
    use std::sync::mpsc;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        (a, b)
    }

    fn conn(stream: TcpStream) -> ConnState {
        ConnState::new(stream, Duration::from_millis(500)).unwrap()
    }

    #[test]
    fn parked_conn_is_returned_when_bytes_arrive() {
        let shared = ParkerShared::new().unwrap();
        let (ready_tx, ready_rx) = mpsc::channel();
        let mut parker = IdleParker::spawn(
            Arc::clone(&shared),
            move |c| ready_tx.send(c).unwrap(),
            |_| panic!("no timeout expected"),
        )
        .unwrap();

        let (mut client, server) = pair();
        shared.park(conn(server), Instant::now() + Duration::from_secs(30));
        std::thread::sleep(Duration::from_millis(20)); // definitely parked
        Request::new("GET", "/x", Vec::new()).write_to(&mut client).unwrap();

        let mut c = ready_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        c.read_request().unwrap();
        assert_eq!(c.req.path, "/x");
        parker.shutdown();
    }

    #[test]
    fn idle_conn_is_evicted_at_deadline() {
        let shared = ParkerShared::new().unwrap();
        let (to_tx, to_rx) = mpsc::channel();
        let mut parker = IdleParker::spawn(
            Arc::clone(&shared),
            |_| panic!("no data expected"),
            move |c| to_tx.send(c).unwrap(),
        )
        .unwrap();

        let (client, server) = pair();
        shared.park(conn(server), Instant::now() + Duration::from_millis(60));
        let evicted = to_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        drop(evicted);
        // The client observes the close as EOF.
        client.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut buf = [0u8; 8];
        use std::io::Read as _;
        assert_eq!((&client).read(&mut buf).unwrap(), 0);
        parker.shutdown();
    }

    #[test]
    fn peer_close_counts_as_ready_not_leak() {
        let shared = ParkerShared::new().unwrap();
        let (ready_tx, ready_rx) = mpsc::channel();
        let mut parker = IdleParker::spawn(
            Arc::clone(&shared),
            move |c| ready_tx.send(c).unwrap(),
            |_| {},
        )
        .unwrap();
        let (client, server) = pair();
        shared.park(conn(server), Instant::now() + Duration::from_secs(30));
        std::thread::sleep(Duration::from_millis(20));
        drop(client); // EOF must surface as readiness
        let mut c = ready_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(matches!(
            c.read_request(),
            Err(crate::message::ReadError::Eof)
        ));
        parker.shutdown();
    }

    #[test]
    fn shutdown_closes_parked_conns_and_is_idempotent() {
        let shared = ParkerShared::new().unwrap();
        let mut parker =
            IdleParker::spawn(Arc::clone(&shared), |_| {}, |_| {}).unwrap();
        let (client, server) = pair();
        shared.park(conn(server), Instant::now() + Duration::from_secs(30));
        std::thread::sleep(Duration::from_millis(20));
        parker.shutdown();
        parker.shutdown();
        client.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        use std::io::Read as _;
        let mut buf = [0u8; 8];
        assert_eq!((&client).read(&mut buf).unwrap(), 0, "socket must be closed");
        // Parking after stop silently closes the connection too.
        let (client2, server2) = pair();
        shared.park(conn(server2), Instant::now() + Duration::from_secs(30));
        client2.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        assert_eq!((&client2).read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn many_parked_conns_wake_individually() {
        let shared = ParkerShared::new().unwrap();
        let (ready_tx, ready_rx) = mpsc::channel();
        let mut parker = IdleParker::spawn(
            Arc::clone(&shared),
            move |c| ready_tx.send(c).unwrap(),
            |_| {},
        )
        .unwrap();
        let mut clients = Vec::new();
        for _ in 0..16 {
            let (client, server) = pair();
            shared.park(conn(server), Instant::now() + Duration::from_secs(30));
            clients.push(client);
        }
        std::thread::sleep(Duration::from_millis(30));
        for (i, client) in clients.iter_mut().enumerate() {
            Request::new("GET", format!("/c{i}"), Vec::new())
                .write_to(client)
                .unwrap();
        }
        let mut paths: Vec<String> = (0..16)
            .map(|_| {
                let mut c = ready_rx.recv_timeout(Duration::from_secs(2)).unwrap();
                c.read_request().unwrap();
                c.req.path.clone()
            })
            .collect();
        paths.sort();
        let mut expect: Vec<String> = (0..16).map(|i| format!("/c{i}")).collect();
        expect.sort();
        assert_eq!(paths, expect);
        parker.shutdown();
    }
}
