//! A minimal HTTP/1.1 codec: enough for the encryption-service benchmark.
//!
//! The hot path is allocation-conscious: [`Request::read_into`] parses into
//! a *reused* [`Request`] (method/path `String`s, [`Headers`] slots and the
//! body `Vec` all keep their capacity across requests on a persistent
//! connection), and [`Response::write_into`] serialises status line, headers
//! and body into one reused `Vec<u8>` so the server answers with a single
//! `write_all` instead of a burst of small writes.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Largest accepted message body. A hostile `content-length` beyond this is
/// answered with `400 Bad Request` instead of an attempted allocation, so a
/// single header cannot OOM a worker.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Largest accepted header count per message (anti-abuse bound).
pub const MAX_HEADERS: usize = 128;

/// Largest accepted request head (request line + headers + blank line) for
/// the incremental parser. A client that dribbles garbage without ever
/// completing its head is rejected at this bound instead of growing the
/// connection's buffer forever.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Response status codes the service uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// 200.
    Ok,
    /// 400.
    BadRequest,
    /// 404.
    NotFound,
    /// 429 — shed by admission control; retry after the advertised delay.
    TooManyRequests,
    /// 500.
    InternalServerError,
}

impl Status {
    /// Numeric code.
    pub fn code(&self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::TooManyRequests => 429,
            Status::InternalServerError => 500,
        }
    }

    /// Reason phrase.
    pub fn reason(&self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::TooManyRequests => "Too Many Requests",
            Status::InternalServerError => "Internal Server Error",
        }
    }
}

/// An ordered header map with case-insensitive names.
///
/// Backed by a `Vec` of `(name, value)` slots with a logical length:
/// [`clear`](Headers::clear) keeps the slot `String`s alive, so parsing the
/// next request on a persistent connection reuses their capacity instead of
/// re-allocating per header. Lookup compares names with
/// `eq_ignore_ascii_case` — no per-lookup or per-header lowercasing.
#[derive(Default)]
pub struct Headers {
    entries: Vec<(String, String)>,
    live: usize,
}

impl Headers {
    /// An empty header map.
    pub fn new() -> Self {
        Headers {
            entries: Vec::new(),
            live: 0,
        }
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Removes all headers, keeping slot capacity for reuse.
    pub fn clear(&mut self) {
        self.live = 0;
    }

    /// The value of `name` (ASCII case-insensitive), if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries[..self.live]
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// True when `name` is present (ASCII case-insensitive).
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries[..self.live]
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Sets `name` to `value`, replacing an existing entry with the same
    /// (case-insensitive) name. The value is formatted into a reused slot
    /// `String`, so `headers.insert("content-length", body.len())` does not
    /// allocate once the slot exists.
    pub fn insert(&mut self, name: &str, value: impl std::fmt::Display) {
        let slot = self.slot_for(name);
        slot.1.clear();
        let _ = write!(slot.1, "{value}");
    }

    /// Finds (or creates, reusing a dead slot when possible) the slot for
    /// `name`, with the name written into it.
    fn slot_for(&mut self, name: &str) -> &mut (String, String) {
        if let Some(i) = self.entries[..self.live]
            .iter()
            .position(|(k, _)| k.eq_ignore_ascii_case(name))
        {
            return &mut self.entries[i];
        }
        if self.live == self.entries.len() {
            self.entries.push((String::new(), String::new()));
        }
        let slot = &mut self.entries[self.live];
        self.live += 1;
        slot.0.clear();
        slot.0.push_str(name);
        slot
    }
}

impl Clone for Headers {
    fn clone(&self) -> Self {
        Headers {
            entries: self.entries[..self.live].to_vec(),
            live: self.live,
        }
    }
}

impl std::fmt::Debug for Headers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl PartialEq for Headers {
    /// Order-independent; names compare case-insensitively.
    fn eq(&self, other: &Self) -> bool {
        self.live == other.live
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl Eq for Headers {}

impl std::ops::Index<&str> for Headers {
    type Output = str;

    fn index(&self, name: &str) -> &str {
        self.get(name)
            .unwrap_or_else(|| panic!("no header named {name:?}"))
    }
}

/// Reused line buffer for request/response parsing. One per connection.
#[derive(Debug, Default)]
pub struct ReadScratch {
    line: String,
}

impl ReadScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Why a message could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly before the first byte of a
    /// message — the normal end of a persistent connection, not an error.
    Eof,
    /// The message is malformed in a way the sender should be told about:
    /// answer `400 Bad Request` and close.
    BadRequest(&'static str),
    /// Transport failure (timeout, reset, truncation mid-message).
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl ReadError {
    /// Collapses into an `io::Error` for the non-streaming entry points.
    pub fn into_io(self) -> std::io::Error {
        match self {
            ReadError::Eof => std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a request",
            ),
            ReadError::BadRequest(msg) => {
                std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
            }
            ReadError::Io(e) => e,
        }
    }
}

/// Outcome of one incremental parse attempt over a byte buffer
/// ([`Request::parse_into`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseStatus {
    /// A full request was parsed; the first `consumed` bytes of the buffer
    /// belong to it (head + body) and must be drained before the next call.
    Complete {
        /// Bytes of the buffer consumed by this request.
        consumed: usize,
    },
    /// The buffer ends mid-head or mid-body; read more bytes and call again
    /// with the grown buffer.
    NeedMore,
}

/// A parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Request target, e.g. `/encrypt`.
    pub path: String,
    /// Header map (names matched case-insensitively).
    pub headers: Headers,
    /// Message body.
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a request with a body and a correct `content-length`.
    pub fn new(method: impl Into<String>, path: impl Into<String>, body: Vec<u8>) -> Self {
        let mut headers = Headers::new();
        headers.insert("content-length", body.len());
        headers.insert("connection", "close");
        Request {
            method: method.into(),
            path: path.into(),
            headers,
            body,
        }
    }

    /// An empty request shell whose buffers [`read_into`](Request::read_into)
    /// fills and reuses.
    pub fn empty() -> Self {
        Request {
            method: String::new(),
            path: String::new(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// True when the sender asked for the connection to be closed after
    /// this request (`connection: close`; HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Serialises into `buf` (cleared first): request line, headers, blank
    /// line, body — ready for a single `write_all`.
    pub fn write_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        let _ = write!(
            ByteWriter(buf),
            "{} {} HTTP/1.1\r\n",
            self.method,
            self.path
        );
        for (k, v) in self.headers.iter() {
            let _ = write!(ByteWriter(buf), "{k}: {v}\r\n");
        }
        buf.extend_from_slice(b"\r\n");
        buf.extend_from_slice(&self.body);
    }

    /// Serialises onto a writer (buffers internally; one write + flush).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(128 + self.body.len());
        self.write_into(&mut buf);
        w.write_all(&buf)?;
        w.flush()
    }

    /// Parses one request from a buffered reader into fresh storage.
    pub fn read_from(r: &mut BufReader<impl Read>) -> std::io::Result<Request> {
        let mut req = Request::empty();
        let mut scratch = ReadScratch::new();
        Request::read_into(r, &mut req, &mut scratch).map_err(ReadError::into_io)?;
        Ok(req)
    }

    /// Parses one request into `req`, reusing its buffers and `scratch`.
    ///
    /// Framing rules (the server turns [`ReadError::BadRequest`] into an
    /// immediate `400` instead of stalling on a body that will never come):
    ///
    /// * `POST`/`PUT`/`PATCH` **must** carry a `content-length`;
    /// * a `content-length` that does not parse as an integer is rejected;
    /// * a `content-length` above [`MAX_BODY_BYTES`] is rejected.
    pub fn read_into(
        r: &mut BufReader<impl Read>,
        req: &mut Request,
        scratch: &mut ReadScratch,
    ) -> Result<(), ReadError> {
        Self::read_into_capped(r, req, scratch, MAX_BODY_BYTES)
    }

    /// [`read_into`](Request::read_into) with an explicit body cap — the
    /// control plane sources `max_body` from the live config snapshot;
    /// [`MAX_BODY_BYTES`] remains the unconfigured default.
    pub fn read_into_capped(
        r: &mut BufReader<impl Read>,
        req: &mut Request,
        scratch: &mut ReadScratch,
        max_body: usize,
    ) -> Result<(), ReadError> {
        scratch.line.clear();
        if r.read_line(&mut scratch.line)? == 0 {
            return Err(ReadError::Eof);
        }
        {
            let mut parts = scratch.line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/") => {
                    req.method.clear();
                    req.method.push_str(m);
                    req.path.clear();
                    req.path.push_str(p);
                }
                _ => return Err(ReadError::BadRequest("malformed request line")),
            }
        }
        read_header_block(r, &mut req.headers, &mut scratch.line)?;

        let body_expected = matches!(req.method.as_str(), "POST" | "PUT" | "PATCH");
        let len = match req.headers.get("content-length") {
            None if body_expected => {
                return Err(ReadError::BadRequest("missing content-length"))
            }
            None => 0,
            Some(v) => v
                .trim()
                .parse::<u64>()
                .map_err(|_| ReadError::BadRequest("unparseable content-length"))?,
        };
        if len > max_body as u64 {
            return Err(ReadError::BadRequest("body exceeds size limit"));
        }
        req.body.clear();
        req.body.resize(len as usize, 0);
        r.read_exact(&mut req.body)?;
        Ok(())
    }

    /// Incremental, resumable parse of one request from the front of `buf`.
    ///
    /// The nonblocking reactor path cannot sit in `read_line`: bytes arrive
    /// whenever the kernel says so, possibly one at a time across many
    /// readiness events. This parser is *pure* over the bytes accumulated so
    /// far — it never blocks and never consumes; on
    /// [`ParseStatus::Complete`] the caller drains `consumed` bytes and
    /// keeps any pipelined remainder. On [`ParseStatus::NeedMore`] the
    /// caller reads more and simply calls again with the grown buffer
    /// (re-parsing the head is cheap next to the socket I/O around it).
    ///
    /// Framing rules match [`read_into`](Request::read_into), plus one
    /// incremental-only bound: a head that exceeds [`MAX_HEAD_BYTES`]
    /// without completing is rejected, so a slow-loris client cannot grow
    /// the connection buffer forever.
    pub fn parse_into(buf: &[u8], req: &mut Request) -> Result<ParseStatus, ReadError> {
        Self::parse_into_capped(buf, req, MAX_BODY_BYTES)
    }

    /// [`parse_into`](Request::parse_into) with an explicit body cap — the
    /// reactor path reads it from the live config snapshot once per
    /// connection step; [`MAX_BODY_BYTES`] remains the default.
    pub fn parse_into_capped(
        buf: &[u8],
        req: &mut Request,
        max_body: usize,
    ) -> Result<ParseStatus, ReadError> {
        let Some(head_end) = find_head_end(buf) else {
            if buf.len() > MAX_HEAD_BYTES {
                return Err(ReadError::BadRequest("request head too large"));
            }
            return Ok(ParseStatus::NeedMore);
        };
        if head_end > MAX_HEAD_BYTES {
            return Err(ReadError::BadRequest("request head too large"));
        }
        let head = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| ReadError::BadRequest("request head is not valid utf-8"))?;
        let mut lines = head.split('\n').map(|l| l.trim_end());
        {
            let mut parts = lines.next().unwrap_or("").split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/") => {
                    req.method.clear();
                    req.method.push_str(m);
                    req.path.clear();
                    req.path.push_str(p);
                }
                _ => return Err(ReadError::BadRequest("malformed request line")),
            }
        }
        req.headers.clear();
        for line in lines {
            if line.is_empty() {
                break;
            }
            if req.headers.len() >= MAX_HEADERS {
                return Err(ReadError::BadRequest("too many headers"));
            }
            if let Some((k, v)) = line.split_once(':') {
                req.headers.insert(k.trim(), v.trim());
            }
        }

        let body_expected = matches!(req.method.as_str(), "POST" | "PUT" | "PATCH");
        let len = match req.headers.get("content-length") {
            None if body_expected => {
                return Err(ReadError::BadRequest("missing content-length"))
            }
            None => 0,
            Some(v) => v
                .trim()
                .parse::<u64>()
                .map_err(|_| ReadError::BadRequest("unparseable content-length"))?,
        };
        if len > max_body as u64 {
            return Err(ReadError::BadRequest("body exceeds size limit"));
        }
        let total = head_end + len as usize;
        if buf.len() < total {
            return Ok(ParseStatus::NeedMore);
        }
        req.body.clear();
        req.body.extend_from_slice(&buf[head_end..total]);
        Ok(ParseStatus::Complete { consumed: total })
    }
}

/// Index one past the head's terminating blank line (the first line that
/// trims to empty), or `None` when the head is still incomplete. Line
/// endings follow the blocking parser's tolerance: `\n`-terminated, with
/// trailing whitespace (including `\r`) ignored.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut line_start = 0;
    for (i, &b) in buf.iter().enumerate() {
        if b == b'\n' {
            if buf[line_start..i].iter().all(|c| c.is_ascii_whitespace()) {
                return Some(i + 1);
            }
            line_start = i + 1;
        }
    }
    None
}

/// An HTTP response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Header map (names matched case-insensitively).
    pub headers: Headers,
    /// Message body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a body and correct framing headers.
    pub fn new(status: Status, body: Vec<u8>) -> Self {
        let mut headers = Headers::new();
        headers.insert("content-length", body.len());
        headers.insert("connection", "close");
        Response {
            status,
            headers,
            body,
        }
    }

    /// `200 OK` with a body.
    pub fn ok(body: Vec<u8>) -> Self {
        Self::new(Status::Ok, body)
    }

    /// An error response with a text body.
    pub fn error(status: Status, msg: &str) -> Self {
        Self::new(status, msg.as_bytes().to_vec())
    }

    /// A `429 Too Many Requests` shed response advertising when the client
    /// should retry. Deliberately does **not** announce close: shedding
    /// protects the handler queue, and tearing down the keep-alive
    /// connection would punish the client twice (and cost an accept on
    /// retry).
    pub fn too_many_requests(retry_after_secs: u32) -> Self {
        let mut resp = Self::new(Status::TooManyRequests, b"shed: retry later".to_vec());
        resp.headers.insert("retry-after", retry_after_secs);
        resp.headers.insert("connection", "keep-alive");
        resp
    }

    /// The `Retry-After` delay in seconds, when present and numeric (the
    /// HTTP-date form is not used by this server).
    pub fn retry_after(&self) -> Option<u64> {
        self.headers
            .get("retry-after")
            .and_then(|v| v.trim().parse().ok())
    }

    /// True when this response announces the connection will close.
    pub fn announces_close(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Serialises only the head (status line, headers, blank line) into
    /// `buf` (cleared first), leaving the body to be sent as its own slice —
    /// the vectored-write path hands `[head, body]` to one `writev` instead
    /// of copying the body into the head buffer first.
    ///
    /// With `connection: Some(tok)` any `connection` header carried by the
    /// response is *replaced* by `connection: tok` — the serving loop, not
    /// the handler, decides connection lifetime under keep-alive.
    pub fn write_head_into(&self, buf: &mut Vec<u8>, connection: Option<&str>) {
        buf.clear();
        let _ = write!(
            ByteWriter(buf),
            "HTTP/1.1 {} {}\r\n",
            self.status.code(),
            self.status.reason()
        );
        for (k, v) in self.headers.iter() {
            if connection.is_some() && k.eq_ignore_ascii_case("connection") {
                continue;
            }
            let _ = write!(ByteWriter(buf), "{k}: {v}\r\n");
        }
        if let Some(tok) = connection {
            let _ = write!(ByteWriter(buf), "connection: {tok}\r\n");
        }
        buf.extend_from_slice(b"\r\n");
    }

    /// Serialises into `buf` (cleared first) as one contiguous message:
    /// [`write_head_into`](Response::write_head_into) plus the body.
    pub fn write_into(&self, buf: &mut Vec<u8>, connection: Option<&str>) {
        self.write_head_into(buf, connection);
        buf.extend_from_slice(&self.body);
    }

    /// Serialises onto a writer (buffers internally; one write + flush).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(128 + self.body.len());
        self.write_into(&mut buf, None);
        w.write_all(&buf)?;
        w.flush()
    }

    /// Parses one response from a buffered reader.
    pub fn read_from(r: &mut BufReader<impl Read>) -> std::io::Result<Response> {
        let mut scratch = ReadScratch::new();
        let mut resp = Response {
            status: Status::InternalServerError,
            headers: Headers::new(),
            body: Vec::new(),
        };
        Response::read_into(r, &mut resp, &mut scratch).map_err(ReadError::into_io)?;
        Ok(resp)
    }

    /// Parses one response into `resp`, reusing its buffers and `scratch`.
    pub fn read_into(
        r: &mut BufReader<impl Read>,
        resp: &mut Response,
        scratch: &mut ReadScratch,
    ) -> Result<(), ReadError> {
        scratch.line.clear();
        if r.read_line(&mut scratch.line)? == 0 {
            return Err(ReadError::Eof);
        }
        let code: u16 = scratch
            .line
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .ok_or(ReadError::BadRequest("malformed status line"))?;
        resp.status = match code {
            200 => Status::Ok,
            400 => Status::BadRequest,
            404 => Status::NotFound,
            429 => Status::TooManyRequests,
            _ => Status::InternalServerError,
        };
        read_header_block(r, &mut resp.headers, &mut scratch.line)?;
        // Responses stay lenient about a missing/odd content-length (treated
        // as an empty body) but share the size cap.
        let len = resp
            .headers
            .get("content-length")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        if len > MAX_BODY_BYTES as u64 {
            return Err(ReadError::BadRequest("body exceeds size limit"));
        }
        resp.body.clear();
        resp.body.resize(len as usize, 0);
        r.read_exact(&mut resp.body)?;
        Ok(())
    }
}

/// Reads header lines until the blank separator into `headers` (cleared
/// first), reusing `line` as scratch.
fn read_header_block(
    r: &mut BufReader<impl Read>,
    headers: &mut Headers,
    line: &mut String,
) -> Result<(), ReadError> {
    headers.clear();
    loop {
        line.clear();
        if r.read_line(line)? == 0 {
            return Err(ReadError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside header block",
            )));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            return Ok(());
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::BadRequest("too many headers"));
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            headers.insert(k.trim(), v.trim());
        }
    }
}

/// `fmt::Write` over a byte buffer, so header serialisation can use `write!`
/// without the `io::Write` error plumbing (writes to a `Vec` cannot fail).
struct ByteWriter<'a>(&'a mut Vec<u8>);

impl std::fmt::Write for ByteWriter<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request::new("POST", "/encrypt", b"secret payload".to_vec());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        let parsed = Request::read_from(&mut reader).unwrap();
        assert_eq!(parsed.method, "POST");
        assert_eq!(parsed.path, "/encrypt");
        assert_eq!(parsed.body, b"secret payload");
        assert_eq!(&parsed.headers["content-length"], "14");
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::ok(vec![1, 2, 3, 4]);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        let parsed = Response::read_from(&mut reader).unwrap();
        assert_eq!(parsed.status, Status::Ok);
        assert_eq!(parsed.body, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_body_is_fine() {
        let req = Request::new("GET", "/", Vec::new());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let parsed = Request::read_from(&mut BufReader::new(&buf[..])).unwrap();
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn malformed_request_line_is_error() {
        let mut reader = BufReader::new(&b"NONSENSE\r\n\r\n"[..]);
        assert!(Request::read_from(&mut reader).is_err());
    }

    #[test]
    fn truncated_body_is_error() {
        let text = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
        let mut reader = BufReader::new(&text[..]);
        assert!(Request::read_from(&mut reader).is_err());
    }

    #[test]
    fn header_lookup_is_case_insensitive_values_trimmed() {
        let text = b"GET /x HTTP/1.1\r\nX-Custom:   hello  \r\n\r\n";
        let parsed = Request::read_from(&mut BufReader::new(&text[..])).unwrap();
        assert_eq!(&parsed.headers["x-custom"], "hello");
        assert_eq!(&parsed.headers["X-CUSTOM"], "hello");
    }

    #[test]
    fn missing_content_length_means_empty_body_for_get() {
        let text = b"GET / HTTP/1.1\r\n\r\n";
        let parsed = Request::read_from(&mut BufReader::new(&text[..])).unwrap();
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn post_without_content_length_is_bad_request() {
        // Regression: this used to be parsed as an empty body, leaving any
        // actual body bytes to poison the next request on the connection
        // (or the reader stalling on them until the I/O timeout).
        let text = b"POST /submit HTTP/1.1\r\n\r\nrogue body";
        let mut req = Request::empty();
        let mut scratch = ReadScratch::new();
        let err = Request::read_into(&mut BufReader::new(&text[..]), &mut req, &mut scratch);
        assert!(matches!(err, Err(ReadError::BadRequest(_))), "{err:?}");
    }

    #[test]
    fn unparseable_content_length_is_bad_request() {
        let text = b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n";
        let mut req = Request::empty();
        let mut scratch = ReadScratch::new();
        let err = Request::read_into(&mut BufReader::new(&text[..]), &mut req, &mut scratch);
        assert!(matches!(err, Err(ReadError::BadRequest(_))), "{err:?}");
    }

    #[test]
    fn oversized_content_length_is_bad_request_not_an_allocation() {
        let text = b"POST / HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n";
        let mut req = Request::empty();
        let mut scratch = ReadScratch::new();
        let err = Request::read_into(&mut BufReader::new(&text[..]), &mut req, &mut scratch);
        assert!(matches!(err, Err(ReadError::BadRequest(_))), "{err:?}");
        assert!(req.body.capacity() <= MAX_BODY_BYTES);
    }

    #[test]
    fn clean_eof_before_request_is_eof_not_bad_request() {
        let mut req = Request::empty();
        let mut scratch = ReadScratch::new();
        let err = Request::read_into(&mut BufReader::new(&b""[..]), &mut req, &mut scratch);
        assert!(matches!(err, Err(ReadError::Eof)), "{err:?}");
    }

    #[test]
    fn read_into_reuses_buffers_across_requests() {
        let mut one = Vec::new();
        Request::new("POST", "/a", vec![9u8; 64]).write_to(&mut one).unwrap();
        let mut two = Vec::new();
        Request::new("POST", "/bb", vec![7u8; 32]).write_to(&mut two).unwrap();
        one.extend_from_slice(&two);

        let mut reader = BufReader::new(&one[..]);
        let mut req = Request::empty();
        let mut scratch = ReadScratch::new();
        Request::read_into(&mut reader, &mut req, &mut scratch).unwrap();
        assert_eq!(req.path, "/a");
        assert_eq!(req.body, vec![9u8; 64]);
        let body_ptr = req.body.as_ptr();
        let cap = req.body.capacity();

        Request::read_into(&mut reader, &mut req, &mut scratch).unwrap();
        assert_eq!(req.path, "/bb");
        assert_eq!(req.body, vec![7u8; 32]);
        assert_eq!(req.body.as_ptr(), body_ptr, "body buffer must be reused");
        assert_eq!(req.body.capacity(), cap);
        assert_eq!(req.headers.len(), 2);
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let mut stream = Vec::new();
        for i in 0..5u8 {
            let mut b = Vec::new();
            Request::new("POST", format!("/r{i}"), vec![i; 8]).write_to(&mut b).unwrap();
            stream.extend_from_slice(&b);
        }
        let mut reader = BufReader::new(&stream[..]);
        let mut req = Request::empty();
        let mut scratch = ReadScratch::new();
        for i in 0..5u8 {
            Request::read_into(&mut reader, &mut req, &mut scratch).unwrap();
            assert_eq!(req.path, format!("/r{i}"));
            assert_eq!(req.body, vec![i; 8]);
        }
        assert!(matches!(
            Request::read_into(&mut reader, &mut req, &mut scratch),
            Err(ReadError::Eof)
        ));
    }

    #[test]
    fn large_binary_body_round_trips() {
        let body: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let req = Request::new("POST", "/bulk", body.clone());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let parsed = Request::read_from(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.body, body);
    }

    #[test]
    fn unknown_status_code_maps_to_500() {
        let text = b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 0\r\n\r\n";
        let parsed = Response::read_from(&mut BufReader::new(&text[..])).unwrap();
        assert_eq!(parsed.status, Status::InternalServerError);
    }

    #[test]
    fn body_bytes_are_not_textually_interpreted() {
        // CRLFs inside a body must not confuse framing.
        let body = b"\r\n\r\nGET / HTTP/1.1\r\n\r\n".to_vec();
        let req = Request::new("POST", "/x", body.clone());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let parsed = Request::read_from(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.body, body);
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::BadRequest.code(), 400);
        assert_eq!(Status::NotFound.code(), 404);
        assert_eq!(Status::TooManyRequests.code(), 429);
        assert_eq!(Status::InternalServerError.code(), 500);
    }

    #[test]
    fn too_many_requests_round_trips_with_retry_after() {
        let resp = Response::too_many_requests(7);
        assert!(!resp.announces_close(), "shed must keep the connection");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let parsed = Response::read_from(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.status, Status::TooManyRequests);
        assert_eq!(parsed.retry_after(), Some(7));
        assert_eq!(Response::ok(Vec::new()).retry_after(), None);
    }

    #[test]
    fn capped_parsers_honor_a_tighter_limit() {
        let mut wire = Vec::new();
        Request::new("POST", "/big", vec![0u8; 4096]).write_to(&mut wire).unwrap();
        let mut req = Request::empty();
        // Default cap: fine.
        assert!(matches!(
            Request::parse_into(&wire, &mut req),
            Ok(ParseStatus::Complete { .. })
        ));
        // Tight cap: rejected before any body copy.
        let err = Request::parse_into_capped(&wire, &mut req, 1024);
        assert!(matches!(err, Err(ReadError::BadRequest(_))), "{err:?}");
        let mut scratch = ReadScratch::new();
        let err = Request::read_into_capped(
            &mut BufReader::new(&wire[..]),
            &mut req,
            &mut scratch,
            1024,
        );
        assert!(matches!(err, Err(ReadError::BadRequest(_))), "{err:?}");
    }

    #[test]
    fn error_response_carries_message() {
        let resp = Response::error(Status::NotFound, "no such route");
        assert_eq!(resp.body, b"no such route");
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn headers_insert_replaces_case_insensitively() {
        let mut h = Headers::new();
        h.insert("Content-Length", 10);
        h.insert("content-length", 20);
        assert_eq!(h.len(), 1);
        assert_eq!(&h["CONTENT-LENGTH"], "20");
    }

    #[test]
    fn headers_clear_keeps_slot_allocations() {
        let mut h = Headers::new();
        h.insert("x-first", "one");
        h.insert("x-second", "two");
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.get("x-first"), None);
        h.insert("x-third", "three");
        assert_eq!(h.len(), 1);
        assert_eq!(&h["x-third"], "three");
    }

    #[test]
    fn headers_equality_is_order_and_case_independent() {
        let mut a = Headers::new();
        a.insert("Alpha", "1");
        a.insert("beta", "2");
        let mut b = Headers::new();
        b.insert("BETA", "2");
        b.insert("alpha", "1");
        assert_eq!(a, b);
        b.insert("gamma", "3");
        assert_ne!(a, b);
    }

    #[test]
    fn too_many_headers_is_bad_request() {
        let mut text = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            text.extend_from_slice(format!("x-h{i}: v\r\n").as_bytes());
        }
        text.extend_from_slice(b"\r\n");
        let mut req = Request::empty();
        let mut scratch = ReadScratch::new();
        let err = Request::read_into(&mut BufReader::new(&text[..]), &mut req, &mut scratch);
        assert!(matches!(err, Err(ReadError::BadRequest(_))), "{err:?}");
    }

    #[test]
    fn response_write_into_overrides_connection_header() {
        let resp = Response::ok(b"hi".to_vec()); // Response::new says close
        let mut buf = Vec::new();
        resp.write_into(&mut buf, Some("keep-alive"));
        let text = String::from_utf8_lossy(&buf).to_lowercase();
        assert!(text.contains("connection: keep-alive"), "{text}");
        assert!(!text.contains("connection: close"), "{text}");
        let parsed = Response::read_from(&mut BufReader::new(&buf[..])).unwrap();
        assert!(!parsed.announces_close());
        assert_eq!(parsed.body, b"hi");
    }

    // --- incremental parser ------------------------------------------------

    #[test]
    fn parse_into_completes_only_with_full_request() {
        let mut wire = Vec::new();
        Request::new("POST", "/inc", b"hello-world".to_vec())
            .write_to(&mut wire)
            .unwrap();
        let mut req = Request::empty();
        // Every strict prefix is NeedMore; the full buffer completes with
        // consumed == len. This is the slow-loris property: byte-at-a-time
        // arrival never errors and never consumes early.
        for cut in 0..wire.len() {
            let status = Request::parse_into(&wire[..cut], &mut req).unwrap();
            assert_eq!(status, ParseStatus::NeedMore, "prefix of {cut} bytes");
        }
        let status = Request::parse_into(&wire, &mut req).unwrap();
        assert_eq!(
            status,
            ParseStatus::Complete {
                consumed: wire.len()
            }
        );
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/inc");
        assert_eq!(req.body, b"hello-world");
    }

    #[test]
    fn parse_into_leaves_pipelined_bytes_unconsumed() {
        let mut wire = Vec::new();
        Request::new("POST", "/a", vec![1u8; 8]).write_to(&mut wire).unwrap();
        let first_len = wire.len();
        Request::new("POST", "/b", vec![2u8; 4]).write_to(&mut wire).unwrap();

        let mut req = Request::empty();
        let status = Request::parse_into(&wire, &mut req).unwrap();
        assert_eq!(status, ParseStatus::Complete { consumed: first_len });
        assert_eq!(req.path, "/a");
        let status = Request::parse_into(&wire[first_len..], &mut req).unwrap();
        assert_eq!(
            status,
            ParseStatus::Complete {
                consumed: wire.len() - first_len
            }
        );
        assert_eq!(req.path, "/b");
        assert_eq!(req.body, vec![2u8; 4]);
    }

    #[test]
    fn parse_into_matches_blocking_parser_rules() {
        let mut req = Request::empty();
        // Malformed request line.
        let err = Request::parse_into(b"NONSENSE\r\n\r\n", &mut req);
        assert!(matches!(err, Err(ReadError::BadRequest(_))), "{err:?}");
        // POST without content-length.
        let err = Request::parse_into(b"POST /x HTTP/1.1\r\n\r\n", &mut req);
        assert!(matches!(err, Err(ReadError::BadRequest(_))), "{err:?}");
        // Unparseable content-length.
        let err =
            Request::parse_into(b"POST / HTTP/1.1\r\ncontent-length: nan\r\n\r\n", &mut req);
        assert!(matches!(err, Err(ReadError::BadRequest(_))), "{err:?}");
        // Oversized content-length is rejected before any body arrives.
        let err = Request::parse_into(
            b"POST / HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n",
            &mut req,
        );
        assert!(matches!(err, Err(ReadError::BadRequest(_))), "{err:?}");
        // GET without content-length is an empty body.
        let status = Request::parse_into(b"GET /ok HTTP/1.1\r\n\r\n", &mut req).unwrap();
        assert_eq!(status, ParseStatus::Complete { consumed: 20 });
        assert_eq!(req.path, "/ok");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parse_into_rejects_unbounded_head() {
        let mut req = Request::empty();
        // Garbage with no terminator: tolerated until the cap, then 400.
        let garbage = vec![b'a'; MAX_HEAD_BYTES + 1];
        let err = Request::parse_into(&garbage, &mut req);
        assert!(matches!(err, Err(ReadError::BadRequest(_))), "{err:?}");
        // Under the cap it is just an incomplete head.
        let status = Request::parse_into(&garbage[..1024], &mut req).unwrap();
        assert_eq!(status, ParseStatus::NeedMore);
    }

    #[test]
    fn parse_into_reuses_request_buffers() {
        let mut wire = Vec::new();
        Request::new("POST", "/r", vec![5u8; 64]).write_to(&mut wire).unwrap();
        let mut req = Request::empty();
        Request::parse_into(&wire, &mut req).unwrap();
        let body_ptr = req.body.as_ptr();
        let cap = req.body.capacity();
        let mut wire2 = Vec::new();
        Request::new("POST", "/r2", vec![6u8; 32]).write_to(&mut wire2).unwrap();
        Request::parse_into(&wire2, &mut req).unwrap();
        assert_eq!(req.path, "/r2");
        assert_eq!(req.body, vec![6u8; 32]);
        assert_eq!(req.body.as_ptr(), body_ptr, "body buffer must be reused");
        assert_eq!(req.body.capacity(), cap);
    }

    #[test]
    fn write_head_into_plus_body_equals_write_into() {
        let resp = Response::ok(b"payload".to_vec());
        let mut whole = Vec::new();
        resp.write_into(&mut whole, Some("keep-alive"));
        let mut head = Vec::new();
        resp.write_head_into(&mut head, Some("keep-alive"));
        let mut joined = head.clone();
        joined.extend_from_slice(&resp.body);
        assert_eq!(whole, joined);
        assert!(head.ends_with(b"\r\n\r\n"));
    }

    #[test]
    fn wants_close_reflects_connection_header() {
        let mut req = Request::new("GET", "/", Vec::new());
        assert!(req.wants_close(), "Request::new defaults to close");
        req.headers.insert("Connection", "Keep-Alive");
        assert!(!req.wants_close());
    }
}
