//! A minimal HTTP/1.1 codec: enough for the encryption-service benchmark.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Response status codes the service uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// 200.
    Ok,
    /// 400.
    BadRequest,
    /// 404.
    NotFound,
    /// 500.
    InternalServerError,
}

impl Status {
    /// Numeric code.
    pub fn code(&self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::InternalServerError => 500,
        }
    }

    /// Reason phrase.
    pub fn reason(&self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::InternalServerError => "Internal Server Error",
        }
    }
}

/// A parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Request target, e.g. `/encrypt`.
    pub path: String,
    /// Header map (names lower-cased).
    pub headers: BTreeMap<String, String>,
    /// Message body.
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a request with a body and a correct `content-length`.
    pub fn new(method: impl Into<String>, path: impl Into<String>, body: Vec<u8>) -> Self {
        let mut headers = BTreeMap::new();
        headers.insert("content-length".to_string(), body.len().to_string());
        headers.insert("connection".to_string(), "close".to_string());
        Request {
            method: method.into(),
            path: path.into(),
            headers,
            body,
        }
    }

    /// Serialises onto a writer.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(w, "{} {} HTTP/1.1\r\n", self.method, self.path)?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Parses one request from a buffered reader.
    pub fn read_from(r: &mut BufReader<impl Read>) -> std::io::Result<Request> {
        let mut line = String::new();
        r.read_line(&mut line)?;
        let mut parts = line.split_whitespace();
        let (method, path) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/") => {
                (m.to_string(), p.to_string())
            }
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed request line: {line:?}"),
                ))
            }
        };
        let headers = read_headers(r)?;
        let body = read_body(r, &headers)?;
        Ok(Request {
            method,
            path,
            headers,
            body,
        })
    }
}

/// An HTTP response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Header map (names lower-cased).
    pub headers: BTreeMap<String, String>,
    /// Message body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a body and correct framing headers.
    pub fn new(status: Status, body: Vec<u8>) -> Self {
        let mut headers = BTreeMap::new();
        headers.insert("content-length".to_string(), body.len().to_string());
        headers.insert("connection".to_string(), "close".to_string());
        Response {
            status,
            headers,
            body,
        }
    }

    /// `200 OK` with a body.
    pub fn ok(body: Vec<u8>) -> Self {
        Self::new(Status::Ok, body)
    }

    /// An error response with a text body.
    pub fn error(status: Status, msg: &str) -> Self {
        Self::new(status, msg.as_bytes().to_vec())
    }

    /// Serialises onto a writer.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status.code(), self.status.reason())?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Parses one response from a buffered reader.
    pub fn read_from(r: &mut BufReader<impl Read>) -> std::io::Result<Response> {
        let mut line = String::new();
        r.read_line(&mut line)?;
        let code: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed status line: {line:?}"),
                )
            })?;
        let status = match code {
            200 => Status::Ok,
            400 => Status::BadRequest,
            404 => Status::NotFound,
            _ => Status::InternalServerError,
        };
        let headers = read_headers(r)?;
        let body = read_body(r, &headers)?;
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}

fn read_headers(r: &mut BufReader<impl Read>) -> std::io::Result<BTreeMap<String, String>> {
    let mut headers = BTreeMap::new();
    loop {
        let mut line = String::new();
        r.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            return Ok(headers);
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }
}

fn read_body(
    r: &mut BufReader<impl Read>,
    headers: &BTreeMap<String, String>,
) -> std::io::Result<Vec<u8>> {
    let len: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request::new("POST", "/encrypt", b"secret payload".to_vec());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        let parsed = Request::read_from(&mut reader).unwrap();
        assert_eq!(parsed.method, "POST");
        assert_eq!(parsed.path, "/encrypt");
        assert_eq!(parsed.body, b"secret payload");
        assert_eq!(parsed.headers["content-length"], "14");
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::ok(vec![1, 2, 3, 4]);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        let parsed = Response::read_from(&mut reader).unwrap();
        assert_eq!(parsed.status, Status::Ok);
        assert_eq!(parsed.body, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_body_is_fine() {
        let req = Request::new("GET", "/", Vec::new());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let parsed = Request::read_from(&mut BufReader::new(&buf[..])).unwrap();
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn malformed_request_line_is_error() {
        let mut reader = BufReader::new(&b"NONSENSE\r\n\r\n"[..]);
        assert!(Request::read_from(&mut reader).is_err());
    }

    #[test]
    fn truncated_body_is_error() {
        let text = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
        let mut reader = BufReader::new(&text[..]);
        assert!(Request::read_from(&mut reader).is_err());
    }

    #[test]
    fn header_names_lowercased_values_trimmed() {
        let text = b"GET /x HTTP/1.1\r\nX-Custom:   hello  \r\n\r\n";
        let parsed = Request::read_from(&mut BufReader::new(&text[..])).unwrap();
        assert_eq!(parsed.headers["x-custom"], "hello");
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let text = b"GET / HTTP/1.1\r\n\r\n";
        let parsed = Request::read_from(&mut BufReader::new(&text[..])).unwrap();
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn large_binary_body_round_trips() {
        let body: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let req = Request::new("POST", "/bulk", body.clone());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let parsed = Request::read_from(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.body, body);
    }

    #[test]
    fn unknown_status_code_maps_to_500() {
        let text = b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 0\r\n\r\n";
        let parsed = Response::read_from(&mut BufReader::new(&text[..])).unwrap();
        assert_eq!(parsed.status, Status::InternalServerError);
    }

    #[test]
    fn body_bytes_are_not_textually_interpreted() {
        // CRLFs inside a body must not confuse framing.
        let body = b"\r\n\r\nGET / HTTP/1.1\r\n\r\n".to_vec();
        let req = Request::new("POST", "/x", body.clone());
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let parsed = Request::read_from(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.body, body);
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::BadRequest.code(), 400);
        assert_eq!(Status::NotFound.code(), 404);
        assert_eq!(Status::InternalServerError.code(), 500);
    }

    #[test]
    fn error_response_carries_message() {
        let resp = Response::error(Status::NotFound, "no such route");
        assert_eq!(resp.body, b"no such route");
        assert_eq!(resp.status, Status::NotFound);
    }
}
