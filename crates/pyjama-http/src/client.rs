//! Blocking HTTP client and the closed-loop load generator.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama_metrics::{LatencyRecorder, ThroughputMeter};

use crate::message::{Request, Response};

/// Sends one request over a fresh connection and reads the response.
pub fn send(addr: SocketAddr, req: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    req.write_to(&mut stream)?;
    let mut reader = BufReader::new(stream);
    Response::read_from(&mut reader)
}

/// Convenience GET.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    send(addr, &Request::new("GET", path, Vec::new()))
}

/// Convenience POST.
pub fn http_post(addr: SocketAddr, path: &str, body: Vec<u8>) -> std::io::Result<Response> {
    send(addr, &Request::new("POST", path, body))
}

/// Results of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed (I/O error or non-200).
    pub failed: u64,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Throughput in responses per second.
    pub throughput: f64,
    /// Mean response time.
    pub mean_response: Duration,
    /// 99th-percentile response time.
    pub p99_response: Duration,
}

/// A closed-loop load generator: `users` virtual users, each sending
/// `requests_per_user` back-to-back requests (§V-B: "100 virtual users,
/// with each user sending a constant number of requests").
pub struct LoadGenerator {
    /// Number of concurrent virtual users.
    pub users: usize,
    /// Requests each user sends.
    pub requests_per_user: usize,
    /// Request body supplied per request index.
    pub body: Vec<u8>,
    /// Request path.
    pub path: String,
}

impl LoadGenerator {
    /// A generator with the paper's default user count.
    pub fn new(users: usize, requests_per_user: usize, path: impl Into<String>, body: Vec<u8>) -> Self {
        LoadGenerator {
            users,
            requests_per_user,
            body,
            path: path.into(),
        }
    }

    /// Runs the load against `addr`, blocking until every user finishes.
    pub fn run(&self, addr: SocketAddr) -> LoadReport {
        let latency = Arc::new(LatencyRecorder::new());
        let meter = Arc::new(ThroughputMeter::new());
        meter.start();
        let failed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let t0 = Instant::now();

        std::thread::scope(|s| {
            for u in 0..self.users {
                let latency = Arc::clone(&latency);
                let meter = Arc::clone(&meter);
                let failed = Arc::clone(&failed);
                let path = self.path.clone();
                let body = self.body.clone();
                std::thread::Builder::new()
                    .name(format!("vuser-{u}"))
                    .spawn_scoped(s, move || {
                        for _ in 0..self.requests_per_user {
                            let start = Instant::now();
                            match http_post(addr, &path, body.clone()) {
                                Ok(resp) if resp.status.code() == 200 => {
                                    latency.record_since(start);
                                    meter.record();
                                }
                                _ => {
                                    failed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                            }
                        }
                    })
                    .expect("failed to spawn virtual user");
            }
        });

        let wall = t0.elapsed();
        LoadReport {
            completed: meter.completed(),
            failed: failed.load(std::sync::atomic::Ordering::Relaxed),
            wall,
            throughput: meter.completed() as f64 / wall.as_secs_f64().max(1e-9),
            mean_response: latency.mean(),
            p99_response: latency.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Status;
    use crate::server::{HttpServer, ServingPolicy};

    #[test]
    fn load_generator_completes_all_requests() {
        let mut server = HttpServer::start(ServingPolicy::JettyPool { threads: 4 }, |req| {
            Response::ok(req.body.clone())
        })
        .unwrap();
        let gen = LoadGenerator::new(8, 5, "/echo", b"payload".to_vec());
        let report = gen.run(server.addr());
        assert_eq!(report.completed, 40);
        assert_eq!(report.failed, 0);
        assert!(report.throughput > 0.0);
        assert!(report.mean_response > Duration::ZERO);
        server.shutdown();
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        // Point at a port with no listener: every request fails.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let gen = LoadGenerator::new(2, 2, "/", vec![]);
        let report = gen.run(addr);
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 4);
    }

    #[test]
    fn non_200_counts_as_failure() {
        let mut server = HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, |_| {
            Response::error(Status::NotFound, "nope")
        })
        .unwrap();
        let gen = LoadGenerator::new(2, 3, "/", vec![]);
        let report = gen.run(server.addr());
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 6);
        server.shutdown();
    }

    #[test]
    fn get_and_post_helpers() {
        let mut server = HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, |req| {
            Response::ok(format!("{} {}", req.method, req.path).into_bytes())
        })
        .unwrap();
        let g = http_get(server.addr(), "/a").unwrap();
        assert_eq!(g.body, b"GET /a");
        let p = http_post(server.addr(), "/b", vec![1]).unwrap();
        assert_eq!(p.body, b"POST /b");
        server.shutdown();
    }
}
