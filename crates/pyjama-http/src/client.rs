//! Blocking HTTP client and the closed-loop load generator.
//!
//! [`ClientConn`] is the persistent-connection client a real load generator
//! would use: it holds one keep-alive connection, serialises requests into a
//! reused buffer, and transparently reconnects once when a reused connection
//! turns out to be stale (the server evicted it between requests — the
//! standard keep-alive race, safe to retry because the stale connection
//! never delivered the request).

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama_metrics::{LatencyRecorder, ThroughputMeter};

use crate::message::{Request, Response};

/// Sends one request over a fresh connection and reads the response.
pub fn send(addr: SocketAddr, req: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    req.write_to(&mut stream)?;
    let mut reader = BufReader::new(stream);
    Response::read_from(&mut reader)
}

/// Convenience GET.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    send(addr, &Request::new("GET", path, Vec::new()))
}

/// Convenience POST.
pub fn http_post(addr: SocketAddr, path: &str, body: Vec<u8>) -> std::io::Result<Response> {
    send(addr, &Request::new("POST", path, body))
}

/// A client holding one persistent connection to a server.
///
/// Connects lazily on first send; drops the connection when the server
/// announces `connection: close` or on any I/O error; retries exactly once
/// over a fresh connection when a *reused* connection fails (idle-evicted
/// or max-requests-closed since the previous response).
pub struct ClientConn {
    addr: SocketAddr,
    read_timeout: Duration,
    stream: Option<(TcpStream, BufReader<TcpStream>)>,
    buf: Vec<u8>,
}

impl ClientConn {
    /// A disconnected client for `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        ClientConn {
            addr,
            read_timeout: Duration::from_secs(30),
            stream: None,
            buf: Vec::new(),
        }
    }

    /// Overrides the response-read timeout (default 30 s).
    pub fn with_read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t;
        self
    }

    /// True when a connection is currently held open.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Drops the held connection (next send reconnects).
    pub fn disconnect(&mut self) {
        self.stream = None;
    }

    /// Sends `req` and reads the response, reusing the held connection.
    pub fn send(&mut self, req: &Request) -> std::io::Result<Response> {
        let reused = self.stream.is_some();
        match self.try_send(req) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.stream = None;
                if reused {
                    // The connection died between requests; the request was
                    // never processed, so a single retry on a fresh
                    // connection is safe.
                    self.try_send(req).map_err(|retry_err| {
                        self.stream = None;
                        retry_err
                    })
                } else {
                    Err(e)
                }
            }
        }
    }

    fn try_send(&mut self, req: &Request) -> std::io::Result<Response> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            self.stream = Some((stream, reader));
        }
        let (write, reader) = self.stream.as_mut().expect("connected above");
        req.write_into(&mut self.buf);
        write.write_all(&self.buf)?;
        let resp = Response::read_from(reader)?;
        if resp.announces_close() {
            self.stream = None;
        }
        Ok(resp)
    }
}

/// Results of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed (I/O error or a non-200, non-429 status).
    pub failed: u64,
    /// Requests the server shed with `429 Too Many Requests` (admission
    /// control working as designed — counted separately from `failed`, and
    /// excluded from the latency percentiles so they describe *admitted*
    /// requests only).
    pub shed: u64,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Throughput in responses per second.
    pub throughput: f64,
    /// Mean response time.
    pub mean_response: Duration,
    /// Median response time.
    pub p50_response: Duration,
    /// 99th-percentile response time.
    pub p99_response: Duration,
    /// 99.9th-percentile response time — the tail that matters at C10K
    /// scale, where one stalled dispatch shows up far past p99.
    pub p999_response: Duration,
}

/// A closed-loop load generator: `users` virtual users, each sending
/// `requests_per_user` back-to-back requests (§V-B: "100 virtual users,
/// with each user sending a constant number of requests"). By default each
/// user holds one keep-alive connection for all its requests, as a real
/// load generator would; with [`keepalive`](Self::keepalive) off every
/// request announces `connection: close` and pays a fresh TCP setup.
#[derive(Clone)]
pub struct LoadGenerator {
    /// Number of concurrent virtual users.
    pub users: usize,
    /// Requests each user sends.
    pub requests_per_user: usize,
    /// Request body supplied per request index.
    pub body: Vec<u8>,
    /// Request path.
    pub path: String,
    /// Reuse each user's connection across its requests.
    pub keepalive: bool,
    /// When `Some(cap)`, a user that is shed (429) honors the response's
    /// `Retry-After` before its next request, sleeping at most `cap`
    /// (admin-advertised retry delays are in whole seconds — far too long
    /// for closed-loop benchmark iterations). `None` retries immediately.
    pub shed_backoff: Option<Duration>,
}

impl LoadGenerator {
    /// A generator with the paper's default user count and keep-alive on.
    pub fn new(users: usize, requests_per_user: usize, path: impl Into<String>, body: Vec<u8>) -> Self {
        LoadGenerator {
            users,
            requests_per_user,
            body,
            path: path.into(),
            keepalive: true,
            shed_backoff: None,
        }
    }

    /// Sets connection reuse on or off.
    pub fn with_keepalive(mut self, keepalive: bool) -> Self {
        self.keepalive = keepalive;
        self
    }

    /// Honors `Retry-After` on shed responses, sleeping at most `cap`.
    pub fn with_shed_backoff(mut self, cap: Duration) -> Self {
        self.shed_backoff = Some(cap);
        self
    }

    /// Runs the load against `addr`, blocking until every user finishes.
    pub fn run(&self, addr: SocketAddr) -> LoadReport {
        let latency = Arc::new(LatencyRecorder::new());
        let meter = Arc::new(ThroughputMeter::new());
        meter.start();
        let failed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let shed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let t0 = Instant::now();

        std::thread::scope(|s| {
            for u in 0..self.users {
                let latency = Arc::clone(&latency);
                let meter = Arc::clone(&meter);
                let failed = Arc::clone(&failed);
                let shed = Arc::clone(&shed);
                std::thread::Builder::new()
                    .name(format!("vuser-{u}"))
                    .spawn_scoped(s, move || {
                        let mut conn = ClientConn::new(addr);
                        // One request shell per user, reused across sends.
                        let mut req = Request::new("POST", &self.path, self.body.clone());
                        if self.keepalive {
                            req.headers.insert("connection", "keep-alive");
                        }
                        for _ in 0..self.requests_per_user {
                            let start = Instant::now();
                            match conn.send(&req) {
                                Ok(resp) if resp.status.code() == 200 => {
                                    latency.record_since(start);
                                    meter.record();
                                }
                                Ok(resp) if resp.status.code() == 429 => {
                                    // Admission-controlled shed: not a
                                    // failure, not a latency sample.
                                    shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    if let Some(cap) = self.shed_backoff {
                                        let advertised = resp
                                            .retry_after()
                                            .map_or(cap, Duration::from_secs);
                                        std::thread::sleep(advertised.min(cap));
                                    }
                                }
                                _ => {
                                    failed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                            }
                        }
                    })
                    .expect("failed to spawn virtual user");
            }
        });

        let wall = t0.elapsed();
        LoadReport {
            completed: meter.completed(),
            failed: failed.load(std::sync::atomic::Ordering::Relaxed),
            shed: shed.load(std::sync::atomic::Ordering::Relaxed),
            wall,
            throughput: meter.completed() as f64 / wall.as_secs_f64().max(1e-9),
            mean_response: latency.mean(),
            p50_response: latency.quantile(0.5),
            p99_response: latency.quantile(0.99),
            p999_response: latency.quantile(0.999),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Status;
    use crate::server::{HttpServer, ServerOptions, ServingPolicy};

    #[test]
    fn load_generator_completes_all_requests() {
        let mut server = HttpServer::start(ServingPolicy::JettyPool { threads: 4 }, |req| {
            Response::ok(req.body.clone())
        })
        .unwrap();
        let gen = LoadGenerator::new(8, 5, "/echo", b"payload".to_vec());
        let report = gen.run(server.addr());
        assert_eq!(report.completed, 40);
        assert_eq!(report.failed, 0);
        assert!(report.throughput > 0.0);
        assert!(report.mean_response > Duration::ZERO);
        assert!(report.p50_response <= report.p99_response);
        server.shutdown();
    }

    #[test]
    fn load_generator_without_keepalive_opens_a_conn_per_request() {
        let mut server = HttpServer::start(ServingPolicy::JettyPool { threads: 4 }, |req| {
            Response::ok(req.body.clone())
        })
        .unwrap();
        let gen = LoadGenerator::new(4, 3, "/echo", b"x".to_vec()).with_keepalive(false);
        let report = gen.run(server.addr());
        assert_eq!(report.completed, 12);
        assert_eq!(report.failed, 0);
        let t0 = Instant::now();
        while server.conn_stats().accepted < 12 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = server.conn_stats();
        assert_eq!(stats.accepted, 12, "every request on its own connection");
        assert_eq!(stats.reused, 0);
        server.shutdown();
    }

    #[test]
    fn load_generator_with_keepalive_reuses_connections() {
        let mut server = HttpServer::start(ServingPolicy::JettyPool { threads: 4 }, |req| {
            Response::ok(req.body.clone())
        })
        .unwrap();
        let gen = LoadGenerator::new(2, 6, "/echo", b"x".to_vec());
        let report = gen.run(server.addr());
        assert_eq!(report.completed, 12);
        assert_eq!(report.failed, 0);
        let t0 = Instant::now();
        while server.conn_stats().reused < 10 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = server.conn_stats();
        assert!(
            stats.accepted <= 4,
            "2 users must not need more than a few connections (got {})",
            stats.accepted
        );
        assert_eq!(stats.reused, 10, "5 reuses per user");
        server.shutdown();
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        // Point at a port with no listener: every request fails.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let gen = LoadGenerator::new(2, 2, "/", vec![]);
        let report = gen.run(addr);
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 4);
    }

    #[test]
    fn shed_429_counts_separately_from_failures() {
        // The handler sheds everything: the report must classify those as
        // `shed`, not `failed`, and record no latency samples.
        let mut server = HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, |_| {
            Response::too_many_requests(1)
        })
        .unwrap();
        let gen = LoadGenerator::new(2, 3, "/", vec![])
            .with_shed_backoff(Duration::from_millis(5));
        let report = gen.run(server.addr());
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.shed, 6);
        assert_eq!(report.p99_response, Duration::ZERO, "no admitted samples");
        server.shutdown();
    }

    #[test]
    fn non_200_counts_as_failure() {
        let mut server = HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, |_| {
            Response::error(Status::NotFound, "nope")
        })
        .unwrap();
        let gen = LoadGenerator::new(2, 3, "/", vec![]);
        let report = gen.run(server.addr());
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 6);
        server.shutdown();
    }

    #[test]
    fn get_and_post_helpers() {
        let mut server = HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, |req| {
            Response::ok(format!("{} {}", req.method, req.path).into_bytes())
        })
        .unwrap();
        let g = http_get(server.addr(), "/a").unwrap();
        assert_eq!(g.body, b"GET /a");
        let p = http_post(server.addr(), "/b", vec![1]).unwrap();
        assert_eq!(p.body, b"POST /b");
        server.shutdown();
    }

    #[test]
    fn client_conn_reconnects_after_server_side_close() {
        // Tiny idle timeout: the server evicts the parked/held connection
        // between two sends; the client's single retry must hide it.
        let opts = ServerOptions {
            idle_timeout: Duration::from_millis(50),
            ..ServerOptions::default()
        };
        let mut server = HttpServer::start_with(
            ServingPolicy::JettyPool { threads: 2 },
            opts,
            |req| Response::ok(req.body.clone()),
        )
        .unwrap();
        let mut conn = ClientConn::new(server.addr());
        let mut req = Request::new("POST", "/echo", b"one".to_vec());
        req.headers.insert("connection", "keep-alive");
        assert_eq!(conn.send(&req).unwrap().body, b"one");
        assert!(conn.is_connected());
        std::thread::sleep(Duration::from_millis(400)); // definitely evicted
        let resp = conn.send(&req).unwrap();
        assert_eq!(resp.body, b"one", "retry over a fresh connection");
        server.shutdown();
    }

    #[test]
    fn client_conn_max_requests_close_is_transparent() {
        let opts = ServerOptions {
            max_requests_per_conn: 2,
            ..ServerOptions::default()
        };
        let mut server = HttpServer::start_with(
            ServingPolicy::JettyPool { threads: 2 },
            opts,
            |req| Response::ok(req.body.clone()),
        )
        .unwrap();
        let mut conn = ClientConn::new(server.addr());
        let mut req = Request::new("POST", "/echo", b"x".to_vec());
        req.headers.insert("connection", "keep-alive");
        for _ in 0..5 {
            assert_eq!(conn.send(&req).unwrap().status.code(), 200);
        }
        let t0 = Instant::now();
        while server.served() < 5 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.served(), 5);
        let stats = server.conn_stats();
        assert!(stats.accepted >= 3, "cap of 2 forces reconnects (got {})", stats.accepted);
        server.shutdown();
    }
}
