//! The readiness reactor behind [`ServingPolicy::Reactor`]: one thread
//! owning every accepted socket, turning kernel readiness into posted
//! target regions.
//!
//! [`ServingPolicy::Reactor`]: crate::server::ServingPolicy::Reactor
//!
//! The thread-pinned policies top out at "one blocked thread (Jetty) or one
//! parked-but-polled socket (Pyjama idle parker) per connection with the
//! *acceptor* still reading first requests synchronously". This module
//! removes the last blocking read from the pipeline: every accepted socket
//! goes non-blocking and is registered with a reactor thread; on Linux that
//! thread sits in `epoll_wait` over all of them, elsewhere it sweeps with
//! non-blocking peeks. When the kernel reports readiness, the reactor
//! *transfers ownership* of the connection to the worker pool (the socket is
//! deregistered before dispatch, so there is never a moment where a worker
//! and the reactor both touch one connection) and a bounded pool serves
//! however many thousand connections are currently readable — C10K on a
//! handful of threads.
//!
//! Registration runs on worker threads; a wake pipe (the same shape as the
//! idle parker's) interrupts `epoll_wait` so new sockets and the stop flag
//! are observed promptly. Deadlines are swept coarsely (~25 ms): a
//! connection idle past its deadline is evicted via `on_timeout`, which
//! distinguishes *idle* evictions (between requests — normal keep-alive
//! lifecycle) from *stalled* ones (mid-request or mid-response — an error).
//!
//! Every readiness notification is accounted against the
//! [`ReactorCounters`] conservation law `readiness_events == dispatched +
//! spurious_ready`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;
use pyjama_control::ConfigHandle;
use pyjama_metrics::ReactorCounters;
use pyjama_trace::TraceId;

use crate::message::{ParseStatus, ReadError, Request, Response};
use crate::server::ServerOptions;

/// Bytes pulled off the socket per `read` attempt.
const READ_CHUNK: usize = 16 * 1024;

/// Default deadline sweep cadence. Evictions are late by at most this much
/// — fine for timeouts measured in hundreds of milliseconds. A control
/// plane overrides it live through `Config::sweep_interval_ms`; this
/// constant is the uncontrolled default and matches `Config::DEFAULT`.
const SWEEP_MS: u64 = 25;

// ---------------------------------------------------------------------------
// Per-connection state
// ---------------------------------------------------------------------------

/// A connection as the reactor sees it: a non-blocking socket plus the
/// buffers that make request parsing and response writing *resumable* — a
/// `WouldBlock` at any byte boundary parks the connection back in the
/// reactor and a later readiness event picks up exactly where it left off.
pub(crate) struct ReactorConn {
    sock: TcpStream,
    /// Accumulated unparsed request bytes (may hold several pipelined
    /// requests; parsed requests are drained off the front).
    pub(crate) inbuf: Vec<u8>,
    /// Parsed-request shell, reused across requests.
    pub(crate) req: Request,
    /// Serialised response head, reused across responses.
    head: Vec<u8>,
    /// Response body being written (owned copy so the region that produced
    /// it can retire while the write waits for `EPOLLOUT`).
    body: Vec<u8>,
    /// Bytes of `head ++ body` already written.
    out_pos: usize,
    /// True while a staged response has unwritten bytes.
    pending: bool,
    /// Close the socket once the staged response is fully written.
    pub(crate) close_after_write: bool,
    /// Requests fully served (response written) on this connection.
    pub(crate) served: u32,
    /// Causal trace id minted at accept.
    pub(crate) trace: TraceId,
    /// Effective per-session options captured at accept (a live
    /// reconfiguration applies to *new* sessions).
    pub(crate) opts: ServerOptions,
}

impl ReactorConn {
    /// Wraps an accepted stream: `TCP_NODELAY` and non-blocking for life.
    pub(crate) fn new(stream: TcpStream) -> std::io::Result<ReactorConn> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(ReactorConn {
            sock: stream,
            inbuf: Vec::new(),
            req: Request::empty(),
            head: Vec::new(),
            body: Vec::new(),
            out_pos: 0,
            pending: false,
            close_after_write: false,
            served: 0,
            trace: TraceId::NONE,
            opts: ServerOptions::default(),
        })
    }

    /// The underlying socket.
    pub(crate) fn socket(&self) -> &TcpStream {
        &self.sock
    }

    /// One non-blocking read into the accumulation buffer. `Ok(0)` is EOF;
    /// `WouldBlock` propagates (the caller re-arms read interest).
    pub(crate) fn read_step(&mut self) -> std::io::Result<usize> {
        let old = self.inbuf.len();
        self.inbuf.resize(old + READ_CHUNK, 0);
        match (&self.sock).read(&mut self.inbuf[old..]) {
            Ok(n) => {
                self.inbuf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.inbuf.truncate(old);
                Err(e)
            }
        }
    }

    /// Tries to parse the next request off the front of `inbuf`; a complete
    /// request is drained from the buffer (pipelined successors stay).
    /// `max_body` is the (possibly config-sourced) body cap.
    pub(crate) fn parse_step(&mut self, max_body: usize) -> Result<ParseStatus, ReadError> {
        let status = Request::parse_into_capped(&self.inbuf, &mut self.req, max_body)?;
        if let ParseStatus::Complete { consumed } = status {
            let len = self.inbuf.len();
            self.inbuf.copy_within(consumed..len, 0);
            self.inbuf.truncate(len - consumed);
        }
        Ok(status)
    }

    /// Stages `resp` for writing (head serialised into the reused buffer,
    /// body copied so the response can outlive the handler's region).
    pub(crate) fn stage_response(&mut self, resp: &Response, close: bool) {
        let tok = if close { "close" } else { "keep-alive" };
        resp.write_head_into(&mut self.head, Some(tok));
        self.body.clear();
        self.body.extend_from_slice(&resp.body);
        self.out_pos = 0;
        self.pending = true;
        self.close_after_write = close;
    }

    /// True while staged response bytes remain unwritten.
    pub(crate) fn has_pending_output(&self) -> bool {
        self.pending
    }

    /// Releases buffer capacity an idle connection no longer needs. With
    /// tens of thousands of parked keep-alive connections, per-connection
    /// buffers (a 16 KiB read chunk, a possibly-large last response body)
    /// dominate the server's memory footprint; an idle connection keeps
    /// only its small reusable head buffer.
    pub(crate) fn release_idle_buffers(&mut self) {
        debug_assert!(self.inbuf.is_empty() && !self.pending);
        self.inbuf = Vec::new();
        if self.body.capacity() > 4096 {
            self.body = Vec::new();
        }
    }

    /// Pushes staged response bytes at the socket until done or the socket
    /// buffer fills. `Ok(())` means fully written; `WouldBlock` propagates
    /// (the caller re-arms write interest and a later `EPOLLOUT` resumes
    /// from `out_pos`).
    pub(crate) fn write_step(&mut self) -> std::io::Result<()> {
        use std::io::IoSlice;
        let total = self.head.len() + self.body.len();
        while self.out_pos < total {
            let written = if self.out_pos < self.head.len() {
                let head_rest = &self.head[self.out_pos..];
                if self.body.is_empty() {
                    (&self.sock).write(head_rest)
                } else {
                    (&self.sock)
                        .write_vectored(&[IoSlice::new(head_rest), IoSlice::new(&self.body)])
                }
            } else {
                (&self.sock).write(&self.body[self.out_pos - self.head.len()..])
            };
            match written {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "failed to write whole response",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.pending = false;
        Ok(())
    }
}

impl std::fmt::Debug for ReactorConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorConn")
            .field("peer", &self.sock.peer_addr().ok())
            .field("served", &self.served)
            .field("buffered", &self.inbuf.len())
            .field("pending_out", &self.pending)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Registration protocol
// ---------------------------------------------------------------------------

/// What the registration waits for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Interest {
    /// Request bytes (or EOF / error).
    Read,
    /// Socket buffer space for a stalled response write.
    Write,
}

/// Why the connection is (re-)entering the reactor — drives the counter
/// taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RegKind {
    /// Fresh from `accept`.
    Initial,
    /// Re-armed for its next request (or the rest of a partial one).
    RearmRead,
    /// Re-armed after a short response write.
    RearmWrite,
}

/// The readiness that dispatched a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Readiness {
    /// Readable (data, EOF or error — the read path disambiguates).
    Readable,
    /// Writable (an `EPOLLOUT` re-arm fired).
    Writable,
}

/// One registration handed to the reactor.
pub(crate) struct Reg {
    pub(crate) conn: ReactorConn,
    pub(crate) interest: Interest,
    /// Evict if no readiness arrives by this instant.
    pub(crate) deadline: Instant,
    /// True when the connection is *between* requests — eviction is then
    /// normal keep-alive lifecycle, not an error.
    pub(crate) idle: bool,
    pub(crate) kind: RegKind,
}

/// State shared between registering worker threads and the reactor thread.
pub(crate) struct ReactorShared {
    pending: Mutex<Vec<Reg>>,
    stop: AtomicBool,
    pub(crate) counters: ReactorCounters,
    wake_tx: std::os::unix::net::UnixStream,
    wake_rx: Mutex<Option<std::os::unix::net::UnixStream>>,
    /// Live config for the sweep cadence; `None` pins the built-in default.
    control: Option<ConfigHandle>,
}

// The wake pipe is a `UnixStream` pair, so this module is unix-only in
// practice; the repo's supported targets all are. (The poll(2) fallback in
// `idle.rs` has the same shape.)

impl ReactorShared {
    /// Fresh reactor state (allocates the wake pipe), uncontrolled.
    #[cfg(test)]
    pub(crate) fn new() -> std::io::Result<Arc<Self>> {
        Self::new_controlled(None)
    }

    /// Reactor state whose sweep cadence follows a live config handle
    /// (one `Acquire` load per event-loop iteration).
    pub(crate) fn new_controlled(control: Option<ConfigHandle>) -> std::io::Result<Arc<Self>> {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Arc::new(ReactorShared {
            pending: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            counters: ReactorCounters::new(),
            wake_tx: tx,
            wake_rx: Mutex::new(Some(rx)),
            control,
        }))
    }

    /// The deadline-sweep interval for this iteration: one `Acquire` load
    /// when controlled, the built-in default otherwise.
    fn sweep_interval_ms(&self) -> u64 {
        self.control
            .as_ref()
            .map_or(SWEEP_MS, |h| h.config().sweep_interval_ms)
    }

    /// Hands a connection to the reactor. After stop the connection is
    /// dropped (socket closed) — the client observes EOF, never a stranded
    /// half-open connection.
    pub(crate) fn register(&self, reg: Reg) {
        if self.stop.load(Ordering::SeqCst) {
            return; // drop closes the socket
        }
        match reg.kind {
            RegKind::Initial => self.counters.record_registered(),
            RegKind::RearmRead => self.counters.record_rearm_read(),
            RegKind::RearmWrite => self.counters.record_rearm_write(),
        }
        self.pending.lock().push(reg);
        self.wake();
    }

    /// Raises the stop flag and wakes the reactor.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake();
    }

    fn wake(&self) {
        // A full pipe means a wake is already pending; any error here is
        // therefore ignorable.
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// The reactor thread plus its shared state. Dropping (or
/// [`shutdown`](Reactor::shutdown)) stops the thread and closes every
/// still-registered connection.
pub(crate) struct Reactor {
    shared: Arc<ReactorShared>,
    thread: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Spawns the reactor over `shared`. `on_ready` receives dispatched
    /// connections (ownership transferred — the reactor has already
    /// deregistered them); `on_timeout` receives deadline-evicted ones with
    /// their `idle` flag. Both run on the reactor thread, so they must be
    /// cheap — the serving policy just posts a target region / bumps a
    /// counter.
    pub(crate) fn spawn(
        shared: Arc<ReactorShared>,
        on_ready: impl Fn(ReactorConn, Readiness) + Send + 'static,
        on_timeout: impl Fn(ReactorConn, bool) + Send + 'static,
    ) -> std::io::Result<Reactor> {
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("http-reactor".into())
                .spawn(move || reactor_loop(shared, on_ready, on_timeout))?
        };
        Ok(Reactor {
            shared,
            thread: Some(thread),
        })
    }

    /// Snapshot of the reactor's counters.
    pub(crate) fn stats(&self) -> pyjama_metrics::ReactorStats {
        self.shared.counters.snapshot()
    }

    /// Stops and joins the reactor; registered connections are closed.
    /// Idempotent.
    pub(crate) fn shutdown(&mut self) {
        self.shared.stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// File-descriptor budget
// ---------------------------------------------------------------------------

/// Ensures `RLIMIT_NOFILE` allows at least `want` open descriptors and
/// returns the resulting soft limit. Raising the *hard* limit needs
/// privilege; without it the soft limit is raised as far as the hard limit
/// allows. C10K needs ~2 fds per loopback connection when client and server
/// share a process, so benchmarks and tests size their connection counts
/// off the returned value.
pub fn nofile_limit_at_least(want: u64) -> u64 {
    #[cfg(target_os = "linux")]
    {
        let mut lim = sys::RLimit { cur: 0, max: 0 };
        if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) } != 0 {
            return want;
        }
        if lim.cur >= want {
            return lim.cur;
        }
        // Privileged path first: raise both limits to `want`.
        let raised = sys::RLimit {
            cur: want,
            max: lim.max.max(want),
        };
        if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &raised) } == 0 {
            return raised.cur;
        }
        // Unprivileged: soft up to the existing hard limit.
        let raised = sys::RLimit {
            cur: want.min(lim.max),
            max: lim.max,
        };
        if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &raised) } == 0 {
            return raised.cur;
        }
        lim.cur
    }
    #[cfg(not(target_os = "linux"))]
    {
        want
    }
}

// ---------------------------------------------------------------------------
// Linux: epoll
// ---------------------------------------------------------------------------

/// Raw epoll + rlimit FFI, declared here to keep the crate std-only (no
/// libc dependency), mirroring `idle.rs`'s `poll(2)` declaration.
#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::c_int;

    pub(super) const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub(super) const EPOLL_CTL_ADD: c_int = 1;
    pub(super) const EPOLL_CTL_DEL: c_int = 2;

    pub(super) const EPOLLIN: u32 = 0x001;
    pub(super) const EPOLLOUT: u32 = 0x004;
    pub(super) const EPOLLERR: u32 = 0x008;
    pub(super) const EPOLLHUP: u32 = 0x010;
    pub(super) const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`. glibc packs it on x86-64 only (the kernel ABI
    /// there has no padding between `events` and `data`); other arches use
    /// natural alignment. Fields must be copied out by value — never
    /// borrowed — because of the packed variant.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub(super) const RLIMIT_NOFILE: c_int = 7;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub(super) struct RLimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        pub(super) fn epoll_create1(flags: c_int) -> c_int;
        pub(super) fn epoll_ctl(
            epfd: c_int,
            op: c_int,
            fd: c_int,
            event: *mut EpollEvent,
        ) -> c_int;
        pub(super) fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub(super) fn close(fd: c_int) -> c_int;
        pub(super) fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        pub(super) fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }
}

/// The epoll event loop. Registered connections live in a slab indexed by
/// `token - 1` (token 0 is the wake pipe); readiness *moves* the entry out
/// of the slab and deregisters the fd before `on_ready` runs, so ownership
/// transfer to the worker pool is unambiguous. Level-triggered with
/// deregister-on-dispatch needs no `EPOLLONESHOT` and can never lose a
/// wakeup: a re-registration re-ADDs the fd, and level triggering re-reports
/// any readiness that arrived in between.
#[cfg(target_os = "linux")]
fn reactor_loop(
    shared: Arc<ReactorShared>,
    on_ready: impl Fn(ReactorConn, Readiness),
    on_timeout: impl Fn(ReactorConn, bool),
) {
    use std::os::unix::io::AsRawFd as _;
    use std::time::Duration;
    use sys::*;

    let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if epfd < 0 {
        // Can't multiplex at all: close everything that arrives until stop.
        while !shared.stop.load(Ordering::SeqCst) {
            shared.pending.lock().clear();
            std::thread::sleep(Duration::from_millis(5));
        }
        shared.pending.lock().clear();
        return;
    }

    let wake_rx = shared
        .wake_rx
        .lock()
        .take()
        .expect("reactor spawned twice over one ReactorShared");
    let mut wake_ev = EpollEvent {
        events: EPOLLIN,
        data: 0,
    };
    let wake_ok =
        unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, wake_rx.as_raw_fd(), &mut wake_ev) } == 0;

    let mut slab: Vec<Option<Reg>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut live: usize = 0;
    let mut events = [EpollEvent { events: 0, data: 0 }; 256];
    let mut next_sweep = Instant::now() + Duration::from_millis(shared.sweep_interval_ms());

    loop {
        // One Acquire load per iteration: a reconfigured sweep interval
        // takes effect on the next tick without restarting the reactor.
        let sweep_ms = shared.sweep_interval_ms();
        // Take in new registrations.
        {
            let mut incoming = shared.pending.lock();
            for reg in incoming.drain(..) {
                let fd = reg.conn.socket().as_raw_fd();
                let idx = match free.pop() {
                    Some(i) => {
                        slab[i] = Some(reg);
                        i
                    }
                    None => {
                        slab.push(Some(reg));
                        slab.len() - 1
                    }
                };
                let mask = match slab[idx].as_ref().map(|r| r.interest) {
                    Some(Interest::Write) => EPOLLOUT | EPOLLERR | EPOLLHUP,
                    _ => EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP,
                };
                let mut ev = EpollEvent {
                    events: mask,
                    data: (idx as u64) + 1,
                };
                if unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) } == 0 {
                    live += 1;
                } else {
                    // ADD can only fail on a dead fd; drop closes it.
                    slab[idx] = None;
                    free.push(idx);
                }
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }

        let now = Instant::now();
        let timeout_ms: i32 = if live == 0 {
            // Nothing registered: sleep until the wake pipe says otherwise
            // (bounded if the pipe failed to register, so stop still works).
            if wake_ok {
                -1
            } else {
                10
            }
        } else {
            (next_sweep
                .saturating_duration_since(now)
                .as_millis()
                .min(sweep_ms as u128) as i32)
                .max(1)
        };
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n < 0 {
            if std::io::Error::last_os_error().kind() != std::io::ErrorKind::Interrupted {
                std::thread::sleep(Duration::from_millis(1));
            }
            continue;
        }

        for ev in &events[..n.max(0) as usize] {
            // Copy by value: `EpollEvent` is packed on x86-64.
            let data = ev.data;
            let bits = ev.events;
            if data == 0 {
                shared.counters.record_wakeup();
                let mut buf = [0u8; 64];
                while matches!((&wake_rx).read(&mut buf), Ok(k) if k > 0) {}
                continue;
            }
            shared.counters.record_readiness_event();
            let idx = (data - 1) as usize;
            match slab.get_mut(idx).and_then(|slot| slot.take()) {
                Some(reg) => {
                    let fd = reg.conn.socket().as_raw_fd();
                    let mut dummy = EpollEvent { events: 0, data: 0 };
                    unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut dummy) };
                    free.push(idx);
                    live -= 1;
                    shared.counters.record_dispatched();
                    let readiness = match reg.interest {
                        Interest::Write if bits & EPOLLOUT != 0 => Readiness::Writable,
                        // Error/hangup on a write registration also goes
                        // down the write path: the next write surfaces it.
                        Interest::Write => Readiness::Writable,
                        Interest::Read => Readiness::Readable,
                    };
                    on_ready(reg.conn, readiness);
                }
                None => shared.counters.record_spurious_ready(),
            }
        }

        // Coarse deadline sweep.
        let now = Instant::now();
        if now >= next_sweep {
            next_sweep = now + Duration::from_millis(sweep_ms);
            for idx in 0..slab.len() {
                let expired = matches!(&slab[idx], Some(reg) if reg.deadline <= now);
                if expired {
                    let reg = slab[idx].take().expect("checked above");
                    let fd = reg.conn.socket().as_raw_fd();
                    let mut dummy = EpollEvent { events: 0, data: 0 };
                    unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut dummy) };
                    free.push(idx);
                    live -= 1;
                    if reg.idle {
                        shared.counters.record_evicted_idle();
                    }
                    on_timeout(reg.conn, reg.idle);
                }
            }
        }
    }

    // Dropping registered connections closes their sockets: clients see EOF.
    slab.clear();
    shared.pending.lock().clear();
    drop(wake_rx);
    unsafe { sys::close(epfd) };
}

// ---------------------------------------------------------------------------
// Portable fallback: non-blocking sweep
// ---------------------------------------------------------------------------

/// Portable reactor: a non-blocking `peek` sweep every couple of
/// milliseconds. Read-interest sockets dispatch when a peek reports bytes,
/// EOF or error; write-interest sockets dispatch every tick (the write path
/// simply hits `WouldBlock` again if the buffer is still full). O(registered)
/// per tick — correct anywhere std's `TcpStream` works, if not C10K-fast.
#[cfg(not(target_os = "linux"))]
fn reactor_loop(
    shared: Arc<ReactorShared>,
    on_ready: impl Fn(ReactorConn, Readiness),
    on_timeout: impl Fn(ReactorConn, bool),
) {
    use std::time::Duration;

    let wake_rx = shared
        .wake_rx
        .lock()
        .take()
        .expect("reactor spawned twice over one ReactorShared");
    let mut regs: Vec<Reg> = Vec::new();
    let mut probe = [0u8; 1];
    loop {
        regs.append(&mut shared.pending.lock());
        {
            // Drain wake bytes so the pipe never fills.
            let mut buf = [0u8; 64];
            if matches!((&wake_rx).read(&mut buf), Ok(k) if k > 0) {
                shared.counters.record_wakeup();
                while matches!((&wake_rx).read(&mut buf), Ok(k) if k > 0) {}
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        for i in (0..regs.len()).rev() {
            let (ready, readiness) = match regs[i].interest {
                Interest::Write => (true, Readiness::Writable),
                Interest::Read => {
                    let r = match regs[i].conn.socket().peek(&mut probe) {
                        Ok(_) => true, // data, or Ok(0) = EOF
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
                        Err(_) => true, // surface the broken socket
                    };
                    (r, Readiness::Readable)
                }
            };
            if ready {
                shared.counters.record_readiness_event();
                shared.counters.record_dispatched();
                on_ready(regs.swap_remove(i).conn, readiness);
            }
        }
        let now = Instant::now();
        for i in (0..regs.len()).rev() {
            if regs[i].deadline <= now {
                let reg = regs.swap_remove(i);
                if reg.idle {
                    shared.counters.record_evicted_idle();
                }
                on_timeout(reg.conn, reg.idle);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    regs.clear();
    shared.pending.lock().clear();
    drop(wake_rx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::sync::mpsc;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        (a, b)
    }

    fn reg(conn: ReactorConn, interest: Interest, deadline: Instant, idle: bool) -> Reg {
        Reg {
            conn,
            interest,
            deadline,
            idle,
            kind: RegKind::Initial,
        }
    }

    #[test]
    fn readable_socket_is_dispatched_with_ownership() {
        let shared = ReactorShared::new().unwrap();
        let (ready_tx, ready_rx) = mpsc::channel();
        let mut reactor = Reactor::spawn(
            Arc::clone(&shared),
            move |c, r| ready_tx.send((c, r)).unwrap(),
            |_, _| panic!("no timeout expected"),
        )
        .unwrap();

        let (mut client, server) = pair();
        shared.register(reg(
            ReactorConn::new(server).unwrap(),
            Interest::Read,
            Instant::now() + Duration::from_secs(30),
            true,
        ));
        std::thread::sleep(Duration::from_millis(20));
        client.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();

        let (mut c, r) = ready_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(r, Readiness::Readable);
        assert!(c.read_step().unwrap() > 0);
        assert!(matches!(
            c.parse_step(crate::message::MAX_BODY_BYTES).unwrap(),
            ParseStatus::Complete { .. }
        ));
        assert_eq!(c.req.path, "/");
        reactor.shutdown();
        let s = shared.counters.snapshot();
        assert_eq!(s.registered, 1);
        assert_eq!(s.dispatched, 1);
        assert!(s.readiness_balanced(), "{s:?}");
    }

    #[test]
    fn idle_deadline_evicts_with_idle_flag() {
        let shared = ReactorShared::new().unwrap();
        let (to_tx, to_rx) = mpsc::channel();
        let mut reactor = Reactor::spawn(
            Arc::clone(&shared),
            |_, _| panic!("no readiness expected"),
            move |c, idle| to_tx.send((c, idle)).unwrap(),
        )
        .unwrap();
        let (client, server) = pair();
        shared.register(reg(
            ReactorConn::new(server).unwrap(),
            Interest::Read,
            Instant::now() + Duration::from_millis(60),
            true,
        ));
        let (evicted, idle) = to_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(idle);
        drop(evicted);
        // The client observes the close as EOF.
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut buf = [0u8; 8];
        use std::io::Read as _;
        assert_eq!((&client).read(&mut buf).unwrap(), 0);
        reactor.shutdown();
        assert_eq!(shared.counters.snapshot().evicted_idle, 1);
    }

    #[test]
    fn write_interest_fires_on_writable_socket() {
        let shared = ReactorShared::new().unwrap();
        let (ready_tx, ready_rx) = mpsc::channel();
        let mut reactor = Reactor::spawn(
            Arc::clone(&shared),
            move |c, r| ready_tx.send((c, r)).unwrap(),
            |_, _| panic!("no timeout expected"),
        )
        .unwrap();
        let (_client, server) = pair();
        let mut conn = ReactorConn::new(server).unwrap();
        conn.stage_response(&Response::ok(b"hi".to_vec()), false);
        shared.register(Reg {
            conn,
            interest: Interest::Write,
            deadline: Instant::now() + Duration::from_secs(30),
            idle: false,
            kind: RegKind::RearmWrite,
        });
        let (mut c, r) = ready_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(r, Readiness::Writable);
        c.write_step().unwrap();
        assert!(!c.has_pending_output());
        reactor.shutdown();
        let s = shared.counters.snapshot();
        assert_eq!(s.rearms_write, 1);
        assert!(s.readiness_balanced(), "{s:?}");
    }

    #[test]
    fn peer_close_counts_as_readiness_not_leak() {
        let shared = ReactorShared::new().unwrap();
        let (ready_tx, ready_rx) = mpsc::channel();
        let mut reactor = Reactor::spawn(
            Arc::clone(&shared),
            move |c, r| ready_tx.send((c, r)).unwrap(),
            |_, _| {},
        )
        .unwrap();
        let (client, server) = pair();
        shared.register(reg(
            ReactorConn::new(server).unwrap(),
            Interest::Read,
            Instant::now() + Duration::from_secs(30),
            true,
        ));
        std::thread::sleep(Duration::from_millis(20));
        drop(client); // EOF must surface as readiness
        let (mut c, _) = ready_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(c.read_step().unwrap(), 0, "EOF");
        reactor.shutdown();
    }

    #[test]
    fn shutdown_closes_registered_conns_and_is_idempotent() {
        let shared = ReactorShared::new().unwrap();
        let mut reactor =
            Reactor::spawn(Arc::clone(&shared), |_, _| {}, |_, _| {}).unwrap();
        let (client, server) = pair();
        shared.register(reg(
            ReactorConn::new(server).unwrap(),
            Interest::Read,
            Instant::now() + Duration::from_secs(30),
            true,
        ));
        std::thread::sleep(Duration::from_millis(20));
        reactor.shutdown();
        reactor.shutdown();
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        use std::io::Read as _;
        let mut buf = [0u8; 8];
        assert_eq!((&client).read(&mut buf).unwrap(), 0, "socket must be closed");
        // Registering after stop silently closes the connection too.
        let (client2, server2) = pair();
        shared.register(reg(
            ReactorConn::new(server2).unwrap(),
            Interest::Read,
            Instant::now() + Duration::from_secs(30),
            true,
        ));
        client2
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!((&client2).read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn many_registered_conns_dispatch_individually() {
        let shared = ReactorShared::new().unwrap();
        let (ready_tx, ready_rx) = mpsc::channel();
        let mut reactor = Reactor::spawn(
            Arc::clone(&shared),
            move |c, _| ready_tx.send(c).unwrap(),
            |_, _| {},
        )
        .unwrap();
        let mut clients = Vec::new();
        for _ in 0..64 {
            let (client, server) = pair();
            shared.register(reg(
                ReactorConn::new(server).unwrap(),
                Interest::Read,
                Instant::now() + Duration::from_secs(30),
                true,
            ));
            clients.push(client);
        }
        std::thread::sleep(Duration::from_millis(30));
        for (i, client) in clients.iter_mut().enumerate() {
            client
                .write_all(format!("GET /c{i} HTTP/1.1\r\n\r\n").as_bytes())
                .unwrap();
        }
        let mut paths: Vec<String> = (0..64)
            .map(|_| {
                let mut c = ready_rx.recv_timeout(Duration::from_secs(2)).unwrap();
                while !matches!(c.parse_step(crate::message::MAX_BODY_BYTES).unwrap(), ParseStatus::Complete { .. }) {
                    assert!(c.read_step().unwrap() > 0);
                }
                c.req.path.clone()
            })
            .collect();
        paths.sort();
        let mut expect: Vec<String> = (0..64).map(|i| format!("/c{i}")).collect();
        expect.sort();
        assert_eq!(paths, expect);
        reactor.shutdown();
        let s = shared.counters.snapshot();
        assert_eq!(s.registered, 64);
        assert_eq!(s.dispatched, 64);
        assert!(s.readiness_balanced(), "{s:?}");
    }

    #[test]
    fn slab_slots_are_reused_across_generations() {
        let shared = ReactorShared::new().unwrap();
        let (ready_tx, ready_rx) = mpsc::channel();
        let mut reactor = Reactor::spawn(
            Arc::clone(&shared),
            move |c, _| ready_tx.send(c).unwrap(),
            |_, _| {},
        )
        .unwrap();
        // Several rounds of register → ready → drop over the same couple of
        // slots: stale-token bugs show up as misdelivered connections.
        for round in 0..8 {
            let (mut client, server) = pair();
            shared.register(reg(
                ReactorConn::new(server).unwrap(),
                Interest::Read,
                Instant::now() + Duration::from_secs(30),
                true,
            ));
            client
                .write_all(format!("GET /r{round} HTTP/1.1\r\n\r\n").as_bytes())
                .unwrap();
            let mut c = ready_rx.recv_timeout(Duration::from_secs(2)).unwrap();
            while !matches!(c.parse_step(crate::message::MAX_BODY_BYTES).unwrap(), ParseStatus::Complete { .. }) {
                assert!(c.read_step().unwrap() > 0);
            }
            assert_eq!(c.req.path, format!("/r{round}"));
        }
        reactor.shutdown();
        let s = shared.counters.snapshot();
        assert_eq!(s.registered, 8);
        assert!(s.readiness_balanced(), "{s:?}");
    }

    #[test]
    fn nofile_limit_reports_a_usable_budget() {
        let n = nofile_limit_at_least(1024);
        assert!(n >= 64, "absurdly low fd budget: {n}");
    }

    #[test]
    fn conn_write_step_resumes_after_would_block() {
        let (client, server) = pair();
        let mut conn = ReactorConn::new(server).unwrap();
        // A body far larger than any socket buffer forces WouldBlock.
        let body = vec![0xA5u8; 16 * 1024 * 1024];
        conn.stage_response(&Response::ok(body.clone()), true);
        let mut stalled = false;
        let reader = std::thread::spawn(move || {
            use std::io::Read as _;
            // Give the writer time to fill the socket buffer first.
            std::thread::sleep(Duration::from_millis(50));
            let mut all = Vec::new();
            (&client).read_to_end(&mut all).unwrap();
            all
        });
        loop {
            match conn.write_step() {
                Ok(()) => break,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    stalled = true;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("{e}"),
            }
        }
        assert!(stalled, "16 MiB must not fit a loopback socket buffer");
        drop(conn); // close so the reader sees EOF
        let all = reader.join().unwrap();
        let body_start = all
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head terminator")
            + 4;
        assert_eq!(&all[body_start..], &body[..], "body must arrive intact");
    }
}
