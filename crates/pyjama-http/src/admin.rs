//! The `/admin` control surface: a tiny HTTP endpoint on its own listener
//! through which a live [`ControlPlane`] is inspected and reconfigured.
//!
//! Routes:
//!
//! * `GET /config` — the current config snapshot plus its generation, as
//!   JSON.
//! * `GET /stats`  — reconfiguration counters (applied/rejected/generation),
//!   admission counters, and the region recycler's allocation gauges
//!   and, when a probe is wired, the data-plane admission counters.
//! * `POST /config` — a flat JSON object of config overrides. The patch is
//!   applied on top of the *current* config and handed to
//!   [`ControlPlane::apply`]: it is validated as a whole, so a bad patch
//!   changes nothing and the old generation keeps serving (the response is
//!   `400` with the validation error).
//!
//! The admin listener is deliberately separate from the data plane: an
//! overloaded server that is shedding requests still answers its operator.
//! Serialization is hand-rolled (the config is a small flat struct); the
//! accepted JSON subset is likewise flat — numbers, `null`, and quoted
//! keys — which covers every tunable knob.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pyjama_control::{Config, ControlPlane};
use pyjama_metrics::AdmissionStats;

use crate::conn::ConnState;
use crate::message::{Request, Response, Status};

/// A callback handing the admin server the data plane's admission counters
/// (see [`HttpServer::admission_probe`](crate::HttpServer::admission_probe)).
pub type AdmissionProbe = Box<dyn Fn() -> AdmissionStats + Send + Sync>;

/// A running admin endpoint bound to an ephemeral loopback port.
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Starts an admin endpoint over `plane` (no admission stats wired).
    pub fn start(plane: ControlPlane) -> std::io::Result<AdminServer> {
        Self::start_with_stats(plane, None)
    }

    /// Starts an admin endpoint over `plane`; `admission` (when given)
    /// supplies the data plane's shed counters for `GET /stats`.
    pub fn start_with_stats(
        plane: ControlPlane,
        admission: Option<AdmissionProbe>,
    ) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("http-admin".into())
                .spawn(move || admin_loop(listener, plane, admission, stop))?
        };
        Ok(AdminServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (`127.0.0.1:<ephemeral>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock a blocked `accept` (same trick as the data-plane server).
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One thread serves all admin traffic: connections are handled to
/// completion in accept order. Admin requests are rare (an operator or a
/// script); a bounded per-I/O timeout keeps one stalled client from
/// wedging the endpoint for more than half a second.
fn admin_loop(
    listener: TcpListener,
    plane: ControlPlane,
    admission: Option<AdmissionProbe>,
    stop: Arc<AtomicBool>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let mut conn = match ConnState::new(stream, Duration::from_millis(500)) {
            Ok(c) => c,
            Err(_) => continue,
        };
        // Keep-alive within the session; any read error (including the
        // client simply going quiet past the I/O timeout) ends it.
        while conn.read_request().is_ok() {
            let resp = route(&plane, &admission, &conn.req);
            let close = conn.req.wants_close() || stop.load(Ordering::SeqCst);
            if conn.write_response(&resp, close).is_err() || close {
                break;
            }
        }
    }
}

fn route(plane: &ControlPlane, admission: &Option<AdmissionProbe>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/config") => {
            let handle = plane.handle();
            let snap = handle.read();
            json_ok(config_json(&snap.config, snap.generation))
        }
        ("GET", "/stats") => {
            let r = plane.stats();
            let a = admission.as_ref().map(|p| p()).unwrap_or_default();
            // Region-recycler gauges: `reused / (allocated + reused)` is the
            // live hit rate of the allocation-free posting path.
            let al = pyjama_runtime::alloc_stats();
            json_ok(format!(
                "{{\"reconfig\":{{\"applied\":{},\"rejected\":{},\
                 \"subscribers_notified\":{},\"generation\":{}}},\
                 \"admission\":{{\"offered\":{},\"admitted\":{},\"shed\":{}}},\
                 \"alloc\":{{\"allocated\":{},\"reused\":{},\"recycled\":{},\
                 \"live\":{},\"dropped\":{},\"poisoned\":{}}}}}",
                r.applied,
                r.rejected,
                r.subscribers_notified,
                r.generation,
                a.offered,
                a.admitted,
                a.shed,
                al.allocated,
                al.reused,
                al.recycled,
                al.live,
                al.dropped,
                al.poisoned,
            ))
        }
        ("POST", "/config") => {
            let body = match std::str::from_utf8(&req.body) {
                Ok(s) => s,
                Err(_) => return json_error(Status::BadRequest, "body is not UTF-8"),
            };
            let patched = match parse_config_patch(body, plane.config()) {
                Ok(cfg) => cfg,
                Err(msg) => return json_error(Status::BadRequest, &msg),
            };
            match plane.apply(patched) {
                Ok(generation) => json_ok(format!("{{\"generation\":{generation}}}")),
                Err(e) => json_error(Status::BadRequest, &e.to_string()),
            }
        }
        _ => json_error(Status::NotFound, "unknown admin route"),
    }
}

fn json_ok(body: String) -> Response {
    let mut resp = Response::ok(body.into_bytes());
    resp.headers.insert("content-type", "application/json");
    resp
}

fn json_error(status: Status, msg: &str) -> Response {
    let mut resp = Response::new(
        status,
        format!("{{\"error\":{}}}", quote_json(msg)).into_bytes(),
    );
    resp.headers.insert("content-type", "application/json");
    resp
}

/// Serialises a config snapshot (plus generation) as JSON.
fn config_json(cfg: &Config, generation: u64) -> String {
    format!(
        "{{\"generation\":{generation},\"config\":{{\
         \"workers\":{},\"virtual_targets\":{},\"max_requests_per_conn\":{},\
         \"idle_timeout_ms\":{},\"io_timeout_ms\":{},\"sweep_interval_ms\":{},\
         \"max_body_bytes\":{},\"spin_budget\":{},\
         \"admission_threshold\":{},\"retry_after_secs\":{}}}}}",
        cfg.workers,
        cfg.virtual_targets,
        cfg.max_requests_per_conn,
        cfg.idle_timeout_ms,
        cfg.io_timeout_ms,
        cfg.sweep_interval_ms,
        cfg.max_body_bytes,
        cfg.spin_budget
            .map_or_else(|| "null".to_string(), |v| v.to_string()),
        cfg.admission_threshold,
        cfg.retry_after_secs,
    )
}

/// Minimal JSON string escaping for error payloads.
fn quote_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Applies a flat JSON object of overrides on top of `cfg`. Accepted values
/// are unsigned integers and (for `spin_budget`) `null`; unknown keys are
/// rejected so a typo'd knob cannot silently no-op.
fn parse_config_patch(body: &str, mut cfg: Config) -> Result<Config, String> {
    let s = body.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| "body must be a JSON object".to_string())?;
    for pair in inner.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| format!("malformed pair {pair:?}"))?;
        let key = k.trim().trim_matches('"');
        let val = v.trim();
        match key {
            "workers" => cfg.workers = parse_num(key, val)?,
            "virtual_targets" => cfg.virtual_targets = parse_num(key, val)?,
            "max_requests_per_conn" => cfg.max_requests_per_conn = parse_num(key, val)?,
            "idle_timeout_ms" => cfg.idle_timeout_ms = parse_num(key, val)?,
            "io_timeout_ms" => cfg.io_timeout_ms = parse_num(key, val)?,
            "sweep_interval_ms" => cfg.sweep_interval_ms = parse_num(key, val)?,
            "max_body_bytes" => cfg.max_body_bytes = parse_num(key, val)?,
            "spin_budget" => {
                cfg.spin_budget = if val == "null" {
                    None
                } else {
                    Some(parse_num(key, val)?)
                }
            }
            "admission_threshold" => cfg.admission_threshold = parse_num(key, val)?,
            "retry_after_secs" => cfg.retry_after_secs = parse_num(key, val)?,
            other => return Err(format!("unknown config key {other:?}")),
        }
    }
    Ok(cfg)
}

fn parse_num<T: std::str::FromStr>(key: &str, val: &str) -> Result<T, String> {
    val.parse()
        .map_err(|_| format!("{key}: expected an unsigned number, got {val:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{http_get, http_post};

    fn body_str(resp: &Response) -> &str {
        std::str::from_utf8(&resp.body).unwrap()
    }

    #[test]
    fn get_config_reports_snapshot_and_generation() {
        let plane = ControlPlane::new();
        let mut admin = AdminServer::start(plane.clone()).unwrap();
        let resp = http_get(admin.addr(), "/config").unwrap();
        assert_eq!(resp.status, Status::Ok);
        let body = body_str(&resp).to_string();
        assert!(body.contains("\"generation\":0"), "{body}");
        assert!(body.contains("\"workers\":4"), "{body}");
        assert!(body.contains("\"spin_budget\":null"), "{body}");

        let mut cfg = plane.config();
        cfg.workers = 2;
        plane.apply(cfg).unwrap();
        let resp = http_get(admin.addr(), "/config").unwrap();
        let body = body_str(&resp).to_string();
        assert!(body.contains("\"generation\":1"), "{body}");
        assert!(body.contains("\"workers\":2"), "{body}");
        admin.shutdown();
    }

    #[test]
    fn post_config_applies_a_patch_atomically() {
        let plane = ControlPlane::new();
        let mut admin = AdminServer::start(plane.clone()).unwrap();
        let resp = http_post(
            admin.addr(),
            "/config",
            br#"{"workers": 3, "admission_threshold": 64}"#.to_vec(),
        )
        .unwrap();
        assert_eq!(resp.status, Status::Ok, "{}", body_str(&resp));
        assert!(body_str(&resp).contains("\"generation\":1"));
        assert_eq!(plane.config().workers, 3);
        assert_eq!(plane.config().admission_threshold, 64);
        // Untouched knobs keep their values.
        assert_eq!(plane.config().retry_after_secs, 1);
        admin.shutdown();
    }

    #[test]
    fn invalid_post_is_rejected_and_old_generation_serves() {
        let plane = ControlPlane::new();
        let mut admin = AdminServer::start(plane.clone()).unwrap();
        for bad in [
            &br#"{"workers": 0}"#[..],
            &br#"{"sweep_interval_ms": 0}"#[..],
            &br#"{"no_such_knob": 1}"#[..],
            &br#"not json at all"#[..],
        ] {
            let resp = http_post(admin.addr(), "/config", bad.to_vec()).unwrap();
            assert_eq!(resp.status, Status::BadRequest, "{}", body_str(&resp));
            assert!(body_str(&resp).contains("\"error\""));
        }
        assert_eq!(plane.generation(), 0, "nothing may have been published");
        assert_eq!(plane.config(), Config::DEFAULT);
        admin.shutdown();
    }

    #[test]
    fn stats_report_reconfig_counters() {
        let plane = ControlPlane::new();
        let mut admin = AdminServer::start_with_stats(
            plane.clone(),
            Some(Box::new(|| AdmissionStats {
                offered: 10,
                admitted: 7,
                shed: 3,
            })),
        )
        .unwrap();
        let mut cfg = plane.config();
        cfg.workers = 2;
        plane.apply(cfg).unwrap();
        let resp = http_get(admin.addr(), "/stats").unwrap();
        let body = body_str(&resp).to_string();
        assert!(body.contains("\"applied\":1"), "{body}");
        assert!(body.contains("\"shed\":3"), "{body}");
        assert!(body.contains("\"alloc\":{\"allocated\":"), "{body}");
        admin.shutdown();
    }

    #[test]
    fn unknown_route_is_404() {
        let mut admin = AdminServer::start(ControlPlane::new()).unwrap();
        let resp = http_get(admin.addr(), "/nope").unwrap();
        assert_eq!(resp.status, Status::NotFound);
        admin.shutdown();
    }

    #[test]
    fn patch_parser_accepts_null_spin_budget_and_rejects_garbage() {
        let base = Config::DEFAULT;
        let cfg = parse_config_patch(r#"{"spin_budget": 77}"#, base).unwrap();
        assert_eq!(cfg.spin_budget, Some(77));
        let cfg = parse_config_patch(r#"{"spin_budget": null}"#, cfg).unwrap();
        assert_eq!(cfg.spin_budget, None);
        assert!(parse_config_patch(r#"{"workers": "four"}"#, base).is_err());
        assert!(parse_config_patch(r#"{"workers" 4}"#, base).is_err());
        assert!(parse_config_patch("", base).is_err());
        // Empty object is a valid no-op patch.
        assert_eq!(parse_config_patch("{}", base).unwrap(), base);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut admin = AdminServer::start(ControlPlane::new()).unwrap();
        admin.shutdown();
        admin.shutdown();
    }
}
