//! The HTTP server with pluggable serving policies and persistent
//! (keep-alive) connections.
//!
//! Connections are accepted by a small shard of acceptor threads and then
//! served according to the [`ServingPolicy`]:
//!
//! * **JettyPool** — a pool thread owns the connection for its lifetime,
//!   looping read → handle → write until the client closes, goes idle past
//!   the timeout, or the per-connection request cap is hit (thread-pinned
//!   sessions, as a thread-per-request pool does keep-alive).
//! * **PyjamaVirtualTarget** — no thread ever owns an idle connection. The
//!   acceptor reads only the *first* request and posts the handler to the
//!   virtual target with `nowait`; each completed handler *re-arms* the
//!   connection by posting a fresh "serve the next request" region (when
//!   the next request is already pipelined) or parking the socket on the
//!   shared idle poller (when it is not). A persistent connection is thus a
//!   chain of `nowait` target regions — the paper's event-handler offload
//!   pattern applied to connection lifetime — and a worker thread only ever
//!   touches a socket with request bytes waiting.
//! * **Reactor** — the fully readiness-driven pipeline. Acceptors only
//!   accept: every socket goes non-blocking into the epoll reactor
//!   ([`crate::reactor`]), and a kernel readiness event posts a serving
//!   region to the virtual target. Request parsing is *resumable* (a
//!   half-received request re-arms read interest and a later region resumes
//!   at the exact byte), response writes re-arm on `EPOLLOUT` when the
//!   socket buffer fills, and no thread anywhere blocks on connection I/O —
//!   tens of thousands of keep-alive connections on a bounded pool.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pyjama_control::{ConfigHandle, ControlPlane};
use pyjama_metrics::{AdmissionCounters, AdmissionStats, ConnCounters, ConnStats, ReactorStats};
use pyjama_runtime::{Runtime, TargetRegion, VirtualTarget, WorkerTarget};
use pyjama_trace::{arg as trace_arg, Stage, TraceId};

use crate::conn::{wait_readable, ConnState, NextRequest};
use crate::idle::{IdleParker, ParkerShared};
use crate::message::{ParseStatus, ReadError, Request, Response, Status};
use crate::reactor::{
    Interest, Reactor, ReactorConn, ReactorShared, Readiness, Reg, RegKind,
};

/// The request handler: pure application logic, shared across policies so
/// the benchmark isolates the *serving strategy*.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// How incoming connections are turned into handler executions.
#[derive(Clone)]
pub enum ServingPolicy {
    /// Jetty-style: a fixed pool of `threads` workers; each connection is
    /// handed to a pool thread which serves it until it closes.
    JettyPool {
        /// Pool size.
        threads: usize,
    },
    /// Pyjama-style: handlers are offloaded to the named virtual target
    /// with `nowait` — `//#omp target virtual(worker) nowait` around the
    /// handler body — and connections re-arm themselves between requests.
    PyjamaVirtualTarget {
        /// The runtime owning the target.
        runtime: Arc<Runtime>,
        /// Virtual-target name (a worker pool).
        target: String,
    },
    /// Readiness-driven: an epoll reactor thread owns every accepted socket
    /// and posts a serving region to the named virtual target whenever the
    /// kernel reports readiness. No blocking connection I/O anywhere; the
    /// connection ceiling is the fd limit, not the thread count.
    Reactor {
        /// The runtime owning the target.
        runtime: Arc<Runtime>,
        /// Virtual-target name (a worker pool).
        target: String,
    },
}

/// Tunables for the serving pipeline. [`Default`] matches the benchmark
/// configuration; [`HttpServer::start`] uses it.
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    /// Number of acceptor threads sharing the listener.
    pub acceptors: usize,
    /// Honor HTTP/1.1 keep-alive. When `false` every response carries
    /// `connection: close` (the pre-keep-alive behaviour, kept as the
    /// baseline the benchmarks compare against).
    pub keep_alive: bool,
    /// Close a connection after this many responses.
    pub max_requests_per_conn: u32,
    /// Evict a keep-alive connection idle for this long.
    pub idle_timeout: Duration,
    /// Per-read/write deadline on client sockets. A client that stalls
    /// mid-request (or never drains a response) fails its own I/O within
    /// this bound instead of pinning a serving thread forever.
    pub io_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            acceptors: 2,
            keep_alive: true,
            max_requests_per_conn: 1000,
            idle_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_millis(500),
        }
    }
}

/// Live-control context attached by [`HttpServer::start_controlled`].
struct ControlCtx {
    /// Lock-free config reads: one `Acquire` load per access.
    handle: ConfigHandle,
    /// Queue-depth probe for admission decisions — pending regions on the
    /// serving pool/target. Wired once the policy's pool exists (it is
    /// built after the shared state that carries this context).
    depth: OnceLock<Arc<dyn Fn() -> usize + Send + Sync>>,
}

struct ServerShared {
    handler: Handler,
    stop: AtomicBool,
    served: AtomicU64,
    errors: AtomicU64,
    conn: ConnCounters,
    /// Pyjama-policy regions posted but not yet finished. The virtual
    /// target belongs to the application's runtime — `shutdown` cannot join
    /// it, so it quiesces on this count instead.
    inflight: AtomicU64,
    opts: ServerOptions,
    /// Admission accounting: `offered == admitted + shed` always holds.
    admission: AdmissionCounters,
    /// `Some` only for [`HttpServer::start_controlled`] servers.
    control: Option<ControlCtx>,
}

impl ServerShared {
    /// Options for a *new* session: the construction-time options overlaid
    /// with the live config snapshot (one `Acquire` load when controlled).
    /// Existing sessions keep the options they were accepted under.
    fn effective_opts(&self) -> ServerOptions {
        match &self.control {
            Some(ctl) => {
                let cfg = ctl.handle.config();
                ServerOptions {
                    acceptors: self.opts.acceptors,
                    keep_alive: self.opts.keep_alive,
                    max_requests_per_conn: cfg.max_requests_per_conn.max(1),
                    idle_timeout: Duration::from_millis(cfg.idle_timeout_ms),
                    io_timeout: Duration::from_millis(cfg.io_timeout_ms),
                }
            }
            None => self.opts,
        }
    }

    /// The live request-body cap (the codec default when uncontrolled).
    fn max_body(&self) -> usize {
        match &self.control {
            Some(ctl) => ctl.handle.config().max_body_bytes,
            None => crate::message::MAX_BODY_BYTES,
        }
    }

    /// Admission decision for one parsed request: `None` admits it; `Some`
    /// carries the `429 Retry-After` the caller writes *instead of* running
    /// the handler. Every offered request lands in exactly one of
    /// `admitted`/`shed`, preserving `offered == admitted + shed`.
    fn admit(&self, trace: TraceId) -> Option<Response> {
        self.admission.record_offered();
        if let Some(ctl) = &self.control {
            let cfg = ctl.handle.config();
            if cfg.admission_threshold > 0 {
                let depth = ctl.depth.get().map_or(0, |probe| probe());
                if depth > cfg.admission_threshold {
                    self.admission.record_shed();
                    pyjama_trace::emit(
                        trace,
                        Stage::AdmissionShed,
                        depth.min(u32::MAX as usize) as u32,
                    );
                    return Some(Response::too_many_requests(cfg.retry_after_secs));
                }
            }
        }
        self.admission.record_admitted();
        None
    }
}

/// A running HTTP server bound to an ephemeral loopback port.
pub struct HttpServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    acceptors: Vec<JoinHandle<()>>,
    pool: Option<Arc<WorkerTarget>>,
    parker: Option<IdleParker>,
    reactor: Option<Reactor>,
}

impl HttpServer {
    /// Starts a server with the given policy, default options and handler.
    pub fn start(
        policy: ServingPolicy,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> std::io::Result<Self> {
        Self::start_with(policy, ServerOptions::default(), handler)
    }

    /// Starts a server with explicit [`ServerOptions`].
    pub fn start_with(
        policy: ServingPolicy,
        opts: ServerOptions,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> std::io::Result<Self> {
        Self::start_inner(policy, opts, None, handler)
    }

    /// Starts a server wired to a live [`ControlPlane`]: connection limits
    /// and deadlines for *new* sessions, the request-body cap, and the
    /// admission threshold all follow the plane's current config snapshot
    /// (each read is one `Acquire` load). When the pending-region depth on
    /// the serving pool exceeds `Config::admission_threshold`, further
    /// requests are shed with `429 Retry-After` instead of queueing.
    pub fn start_controlled(
        policy: ServingPolicy,
        opts: ServerOptions,
        plane: &ControlPlane,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> std::io::Result<Self> {
        Self::start_inner(policy, opts, Some(plane.handle()), handler)
    }

    fn start_inner(
        policy: ServingPolicy,
        mut opts: ServerOptions,
        control: Option<ConfigHandle>,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> std::io::Result<Self> {
        opts.acceptors = opts.acceptors.max(1);
        opts.max_requests_per_conn = opts.max_requests_per_conn.max(1);

        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            handler: Arc::new(handler),
            stop: AtomicBool::new(false),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            conn: ConnCounters::new(),
            inflight: AtomicU64::new(0),
            opts,
            admission: AdmissionCounters::new(),
            control: control.map(|handle| ControlCtx {
                handle,
                depth: OnceLock::new(),
            }),
        });

        let (pool, parker, reactor, sink) = match &policy {
            ServingPolicy::JettyPool { threads } => {
                // The Jetty policy needs its own pool; reuse WorkerTarget
                // (it is a plain fixed pool when used without the runtime's
                // semantics).
                let pool = WorkerTarget::new("jetty-pool", (*threads).max(1));
                let sink = AcceptSink::Jetty {
                    pool: Arc::clone(&pool),
                    label: Arc::from("http-conn"),
                };
                (Some(pool), None, None, sink)
            }
            ServingPolicy::PyjamaVirtualTarget { runtime, target } => {
                let parker_shared = ParkerShared::new()?;
                // Resolve the target once; when it is not registered (yet)
                // fall back to a per-request lookup so each failed dispatch
                // is counted instead of the server refusing to start.
                let dispatch = match runtime.lookup(target) {
                    Ok(t) => Dispatch::Direct(t),
                    Err(_) => Dispatch::Lookup {
                        runtime: Arc::clone(runtime),
                        name: target.clone(),
                    },
                };
                let ctx = Arc::new(PyjamaCtx {
                    post: TargetPost {
                        shared: Arc::clone(&shared),
                        dispatch,
                        label: Arc::from(format!("target virtual({target})").as_str()),
                    },
                    parker: Arc::clone(&parker_shared),
                });
                // A parked connection turning readable re-enters the target
                // as a fresh region; going idle past the deadline evicts it.
                let on_ready = {
                    let ctx = Arc::clone(&ctx);
                    move |conn: ConnState| {
                        pyjama_trace::emit(conn.trace, Stage::ConnReady, trace_arg::READY_READABLE);
                        let ctx2 = Arc::clone(&ctx);
                        let posted = ctx.post.post(conn.trace, move || {
                            let mut conn = conn;
                            match conn.read_request_capped(ctx2.post.shared.max_body()) {
                                Ok(()) => serve_one(conn, &ctx2),
                                Err(e) => fail_read(conn, e, &ctx2.post.shared, false),
                            }
                        });
                        if !posted {
                            ctx.post.shared.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                };
                let on_timeout = {
                    let shared = Arc::clone(&shared);
                    move |conn: ConnState| {
                        pyjama_trace::emit(conn.trace, Stage::ConnReady, trace_arg::READY_TIMEOUT);
                        shared.conn.record_timed_out_idle();
                        drop(conn); // closes the socket
                    }
                };
                let parker = IdleParker::spawn(parker_shared, on_ready, on_timeout)?;
                (None, Some(parker), None, AcceptSink::Pyjama { ctx })
            }
            ServingPolicy::Reactor { runtime, target } => {
                let reactor_shared = ReactorShared::new_controlled(
                    shared.control.as_ref().map(|c| c.handle.clone()),
                )?;
                let dispatch = match runtime.lookup(target) {
                    Ok(t) => Dispatch::Direct(t),
                    Err(_) => Dispatch::Lookup {
                        runtime: Arc::clone(runtime),
                        name: target.clone(),
                    },
                };
                let ctx = Arc::new(ReactorCtx {
                    post: TargetPost {
                        shared: Arc::clone(&shared),
                        dispatch,
                        label: Arc::from(format!("target virtual({target}) reactor").as_str()),
                    },
                    reactor: Arc::clone(&reactor_shared),
                });
                // Kernel readiness → one serving region. Both hooks run on
                // the reactor thread, so they only post and count.
                let on_ready = {
                    let ctx = Arc::clone(&ctx);
                    move |conn: ReactorConn, readiness: Readiness| {
                        let arg = match readiness {
                            Readiness::Readable => trace_arg::READY_READABLE,
                            Readiness::Writable => trace_arg::READY_WRITABLE,
                        };
                        pyjama_trace::emit(conn.trace, Stage::ReactorReady, arg);
                        let ctx2 = Arc::clone(&ctx);
                        let trace = conn.trace;
                        let posted =
                            ctx.post.post(trace, move || drive_reactor_conn(conn, &ctx2));
                        if !posted {
                            ctx.post.shared.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                };
                let on_timeout = {
                    let shared = Arc::clone(&shared);
                    move |conn: ReactorConn, idle: bool| {
                        pyjama_trace::emit(conn.trace, Stage::ReactorReady, trace_arg::READY_TIMEOUT);
                        if idle {
                            // Normal keep-alive lifecycle: the client went
                            // quiet between requests.
                            shared.conn.record_timed_out_idle();
                        } else {
                            // Stalled mid-request or mid-response.
                            shared.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        drop(conn); // closes the socket
                    }
                };
                let reactor = Reactor::spawn(Arc::clone(&reactor_shared), on_ready, on_timeout)?;
                (None, None, Some(reactor), AcceptSink::Reactor { ctx })
            }
        };

        // Wire the admission depth probe now that the serving pool exists:
        // queue depth is the pending-region count on whatever executes the
        // handlers for this policy.
        if let Some(ctl) = &shared.control {
            let probe: Arc<dyn Fn() -> usize + Send + Sync> = match &sink {
                AcceptSink::Jetty { pool, .. } => {
                    let pool = Arc::clone(pool);
                    Arc::new(move || pool.pending())
                }
                AcceptSink::Pyjama { ctx } => {
                    let ctx = Arc::clone(ctx);
                    Arc::new(move || ctx.post.dispatch.pending())
                }
                AcceptSink::Reactor { ctx } => {
                    let ctx = Arc::clone(ctx);
                    Arc::new(move || ctx.post.dispatch.pending())
                }
            };
            let _ = ctl.depth.set(probe);
        }

        let mut acceptors = Vec::with_capacity(opts.acceptors);
        for i in 0..opts.acceptors {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            let sink = sink.clone();
            acceptors.push(
                std::thread::Builder::new()
                    .name(format!("http-acceptor-{i}"))
                    .spawn(move || accept_loop(listener, shared, sink))
                    .expect("failed to spawn acceptor"),
            );
        }

        Ok(HttpServer {
            addr,
            shared,
            acceptors,
            pool,
            parker,
            reactor,
        })
    }

    /// The bound address (`127.0.0.1:<ephemeral>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far (counted after the response write succeeds,
    /// so the value is monotone — it never decrements).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// A detached probe for [`served`](Self::served): a closure another
    /// thread can poll while this handle stays usable (e.g. a monotonicity
    /// sampler racing `shutdown`).
    pub fn served_probe(&self) -> impl Fn() -> u64 + Send + Sync + 'static {
        let shared = Arc::clone(&self.shared);
        move || shared.served.load(Ordering::Relaxed)
    }

    /// Connections/requests that failed mid-flight.
    pub fn errors(&self) -> u64 {
        self.shared.errors.load(Ordering::Relaxed)
    }

    /// Admission-control counters. The conservation law
    /// `offered == admitted + shed` holds on a quiesced server.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.shared.admission.snapshot()
    }

    /// A detached probe for [`admission_stats`](Self::admission_stats),
    /// e.g. for wiring into an [`AdminServer`](crate::admin::AdminServer)
    /// while this handle stays usable.
    pub fn admission_probe(&self) -> impl Fn() -> AdmissionStats + Send + Sync + 'static {
        let shared = Arc::clone(&self.shared);
        move || shared.admission.snapshot()
    }

    /// Connection-lifecycle counters (accepts, reuse, pipelining, idle
    /// evictions).
    pub fn conn_stats(&self) -> ConnStats {
        self.shared.conn.snapshot()
    }

    /// Zeroes the connection-lifecycle counters. Quiesce the server first
    /// for exact figures; increments racing the reset land on either side.
    pub fn reset_conn_stats(&self) {
        self.shared.conn.reset();
    }

    /// The options the server is running with (normalised).
    pub fn options(&self) -> ServerOptions {
        self.shared.opts
    }

    /// Reactor counters (registrations, readiness events, dispatches,
    /// re-arms and their conservation law) — `Some` only under
    /// [`ServingPolicy::Reactor`].
    pub fn reactor_stats(&self) -> Option<ReactorStats> {
        self.reactor.as_ref().map(|r| r.stats())
    }

    /// Stops accepting, unblocks and joins every acceptor, stops the idle
    /// poller (closing parked connections) and shuts the Jetty pool down.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock `accept`: each blocked acceptor consumes exactly one
        // throwaway connection, so make one per acceptor thread.
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        }
        for a in self.acceptors.drain(..) {
            let _ = a.join();
        }
        if let Some(mut parker) = self.parker.take() {
            parker.shutdown();
        }
        // Stop the reactor before quiescing: registered connections close
        // (clients see EOF) and an in-flight region that tries to re-arm
        // afterwards has its connection dropped by `register`'s stop check.
        // (Kept in place, not taken: `reactor_stats` stays readable on the
        // quiesced server, where the conservation law is exact.)
        if let Some(reactor) = self.reactor.as_mut() {
            reactor.shutdown();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        // Quiesce Pyjama regions still running on the application's worker
        // target (which is not ours to join): with `stop` set and the
        // acceptors and poller gone, no region re-arms, so the count only
        // falls. The deadline is a backstop against a target that was shut
        // down underneath us with regions still queued.
        let t0 = Instant::now();
        while self.shared.inflight.load(Ordering::SeqCst) > 0
            && t0.elapsed() < Duration::from_secs(5)
        {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Where an acceptor hands a fresh connection.
#[derive(Clone)]
enum AcceptSink {
    Jetty {
        pool: Arc<WorkerTarget>,
        label: Arc<str>,
    },
    Pyjama {
        ctx: Arc<PyjamaCtx>,
    },
    Reactor {
        ctx: Arc<ReactorCtx>,
    },
}

/// How the Pyjama policy reaches its virtual target.
enum Dispatch {
    /// Resolved once at startup — the hot path posts with no registry
    /// access or name formatting.
    Direct(Arc<dyn VirtualTarget>),
    /// The target was unknown at startup; retry the lookup per request.
    Lookup { runtime: Arc<Runtime>, name: String },
}

impl Dispatch {
    /// Pending (posted, not yet started) regions on the resolved target;
    /// 0 when the target cannot be resolved.
    fn pending(&self) -> usize {
        match self {
            Dispatch::Direct(t) => t.pending(),
            Dispatch::Lookup { runtime, name } => {
                runtime.lookup(name).map(|t| t.pending()).unwrap_or(0)
            }
        }
    }
}

/// An inflight-counted post of a `nowait` region to the virtual target —
/// the dispatch half shared by the Pyjama and Reactor policies.
struct TargetPost {
    shared: Arc<ServerShared>,
    dispatch: Dispatch,
    /// Interned region label: re-posting clones the `Arc` instead of
    /// formatting a fresh string per request.
    label: Arc<str>,
}

/// Everything a Pyjama-policy serving region needs to re-arm a connection.
struct PyjamaCtx {
    post: TargetPost,
    parker: Arc<ParkerShared>,
}

/// Everything a Reactor-policy serving region needs: the target post plus
/// the reactor the connection re-arms through.
struct ReactorCtx {
    post: TargetPost,
    reactor: Arc<ReactorShared>,
}

impl TargetPost {
    /// Posts `body` to the virtual target as a `nowait` region continuing
    /// the connection's trace flow. Returns `false` when the target cannot
    /// be resolved.
    fn post(&self, trace: TraceId, body: impl FnOnce() + Send + 'static) -> bool {
        // Count the region in-flight across its whole run so `shutdown` can
        // quiesce: the decrement runs after `body` — including the counter
        // updates inside it — has finished.
        self.shared.inflight.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&self.shared);
        let region = TargetRegion::with_label_trace(Arc::clone(&self.label), trace, move || {
            body();
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
        });
        let posted = match &self.dispatch {
            Dispatch::Direct(t) => {
                t.post(region);
                true
            }
            Dispatch::Lookup { runtime, name } => match runtime.lookup(name) {
                Ok(t) => {
                    t.post(region);
                    true
                }
                Err(_) => false,
            },
        };
        if !posted {
            self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
        }
        posted
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>, sink: AcceptSink) {
    let mut consecutive_errors: u32 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => {
                consecutive_errors = 0;
                s
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failures (ECONNABORTED, EMFILE, …) used
                // to busy-spin this thread at 100% CPU. Back off
                // exponentially instead, capped at 128ms so recovery from a
                // brief fd exhaustion stays prompt.
                consecutive_errors = consecutive_errors.saturating_add(1);
                std::thread::sleep(Duration::from_millis(1u64 << consecutive_errors.min(7)));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // Capture this session's effective options once, at accept: a live
        // reconfiguration changes sessions accepted after it, never one
        // mid-flight.
        let session_opts = shared.effective_opts();
        if let AcceptSink::Reactor { ctx } = &sink {
            // The reactor policy never blocks on a socket: accept, go
            // non-blocking, hand straight to the reactor with read interest.
            // The first readiness event does what the Pyjama acceptor's
            // blocking first-request read used to.
            let mut conn = match ReactorConn::new(stream) {
                Ok(c) => c,
                Err(_) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            shared.conn.record_accepted();
            conn.trace = TraceId::mint();
            conn.opts = session_opts;
            pyjama_trace::emit(conn.trace, Stage::ConnAccepted, 0);
            ctx.reactor.register(Reg {
                conn,
                interest: Interest::Read,
                deadline: Instant::now() + session_opts.idle_timeout,
                idle: true,
                kind: RegKind::Initial,
            });
            continue;
        }
        let mut conn = match ConnState::new(stream, session_opts.io_timeout) {
            Ok(c) => c,
            Err(_) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        shared.conn.record_accepted();
        conn.trace = TraceId::mint();
        conn.opts = session_opts;
        pyjama_trace::emit(conn.trace, Stage::ConnAccepted, 0);
        match &sink {
            AcceptSink::Jetty { pool, label } => {
                // Hand the connection to a pool thread: it owns the whole
                // keep-alive session.
                let shared = Arc::clone(&shared);
                let trace = conn.trace;
                pool.post(TargetRegion::with_label_trace(
                    Arc::clone(label),
                    trace,
                    move || {
                        serve_session(conn, &shared);
                    },
                ));
            }
            AcceptSink::Pyjama { ctx } => {
                // The acceptor parses only the *first* request (cheap),
                // then offloads the handler — and with it the connection's
                // future — to the virtual target.
                match conn.read_request_capped(shared.max_body()) {
                    Ok(()) => rearm(conn, ctx),
                    Err(e) => fail_read(conn, e, &shared, true),
                }
            }
            AcceptSink::Reactor { .. } => unreachable!("handled before ConnState setup"),
        }
    }
}

/// Should the connection close after the response to `req`? `opts` are the
/// session's effective options captured at accept.
fn decide_close(
    served_before: u32,
    req: &Request,
    shared: &ServerShared,
    opts: &ServerOptions,
) -> bool {
    req.wants_close()
        || !opts.keep_alive
        || served_before + 1 >= opts.max_requests_per_conn
        || shared.stop.load(Ordering::SeqCst)
}

/// Handles one parsed request on `conn`: admission check, then run the
/// handler (or write the shed 429), write the response, bump counters.
/// Returns `false` when the connection must not serve further requests.
fn respond(conn: &mut ConnState, shared: &Arc<ServerShared>) -> bool {
    let resp = match shared.admit(conn.trace) {
        Some(shed) => shed,
        None => run_handler(shared, &conn.req),
    };
    let close = decide_close(conn.served, &conn.req, shared, &conn.opts);
    if conn.write_response(&resp, close).is_err() {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    // Count only after the write succeeded: `served` is monotone and a
    // request is never double-counted across a keep-alive session.
    conn.served += 1;
    shared.served.fetch_add(1, Ordering::Relaxed);
    pyjama_trace::emit(conn.trace, Stage::ResponseWritten, conn.served);
    if conn.served > 1 {
        shared.conn.record_reused();
    }
    !close
}

/// Jetty-style session: the calling pool thread owns `conn` until close.
fn serve_session(mut conn: ConnState, shared: &Arc<ServerShared>) {
    let opts = conn.opts;
    loop {
        if conn.served > 0 {
            // Between requests of an established session: wait for the next
            // request, the idle deadline, or shutdown.
            let deadline = Instant::now() + opts.idle_timeout;
            match wait_readable(&mut conn, deadline, opts.io_timeout, &shared.stop) {
                NextRequest::Ready { pipelined } => {
                    if pipelined {
                        shared.conn.record_pipelined();
                    }
                }
                NextRequest::Eof | NextRequest::Stopped => return,
                NextRequest::IdleTimeout => {
                    shared.conn.record_timed_out_idle();
                    return;
                }
                NextRequest::Err(_) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        let first = conn.served == 0;
        match conn.read_request_capped(shared.max_body()) {
            Ok(()) => {}
            Err(e) => return fail_read(conn, e, shared, first),
        }
        if !respond(&mut conn, shared) {
            return;
        }
    }
}

/// Pyjama-style serving of the request already parsed into `conn.req`,
/// running inside a `nowait` target region. Afterwards the connection
/// re-arms itself: a pipelined request re-posts immediately; a silent
/// connection parks on the idle poller — this region returns without ever
/// blocking on the socket.
fn serve_one(mut conn: ConnState, ctx: &Arc<PyjamaCtx>) {
    let shared = &ctx.post.shared;
    if !respond(&mut conn, shared) {
        return;
    }
    if shared.stop.load(Ordering::SeqCst) {
        return;
    }
    if conn.has_buffered() {
        shared.conn.record_pipelined();
        match conn.read_request_capped(shared.max_body()) {
            Ok(()) => rearm(conn, ctx),
            Err(e) => fail_read(conn, e, shared, false),
        }
    } else {
        let deadline = Instant::now() + conn.opts.idle_timeout;
        pyjama_trace::emit(conn.trace, Stage::ConnIdlePark, conn.served);
        ctx.parker.park(conn, deadline);
    }
}

/// Posts the next link of the connection's region chain.
fn rearm(conn: ConnState, ctx: &Arc<PyjamaCtx>) {
    pyjama_trace::emit(conn.trace, Stage::ConnRearm, conn.served);
    let ctx2 = Arc::clone(ctx);
    let trace = conn.trace;
    let posted = ctx.post.post(trace, move || serve_one(conn, &ctx2));
    if !posted {
        ctx.post.shared.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// How many requests one Reactor-policy serving region may answer before
/// it re-posts itself — keeps one fast pipelining client from monopolising
/// a pool worker.
const REACTOR_REQUEST_BUDGET: u32 = 32;

/// The Reactor-policy serving region: resumes the connection's state
/// machine exactly where the last region (or the accept) left it and runs
/// until it would block. Every `WouldBlock` hands the connection back to
/// the reactor — read interest for a half-received request, write interest
/// for a response the socket buffer would not take — so no worker thread
/// ever blocks on connection I/O.
fn drive_reactor_conn(mut conn: ReactorConn, ctx: &Arc<ReactorCtx>) {
    let shared = &ctx.post.shared;
    let opts = conn.opts;
    // One Acquire load per region: a live body-cap change applies from the
    // next serving region onwards.
    let max_body = shared.max_body();
    let mut budget = REACTOR_REQUEST_BUDGET;
    loop {
        // Phase 1: push staged response bytes.
        if conn.has_pending_output() {
            match conn.write_step() {
                Ok(()) => {
                    conn.served += 1;
                    shared.served.fetch_add(1, Ordering::Relaxed);
                    pyjama_trace::emit(conn.trace, Stage::ResponseWritten, conn.served);
                    if conn.served > 1 {
                        shared.conn.record_reused();
                    }
                    if !conn.inbuf.is_empty() {
                        shared.conn.record_pipelined();
                    }
                    if conn.close_after_write || shared.stop.load(Ordering::SeqCst) {
                        return; // drop closes the socket
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Socket buffer full: wait for EPOLLOUT.
                    pyjama_trace::emit(conn.trace, Stage::ReactorRearm, trace_arg::REARM_WRITE);
                    ctx.reactor.register(Reg {
                        conn,
                        interest: Interest::Write,
                        deadline: Instant::now() + opts.io_timeout,
                        idle: false,
                        kind: RegKind::RearmWrite,
                    });
                    return;
                }
                Err(_) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        // Phase 2: parse the next request out of the accumulated bytes.
        if budget == 0 {
            // Yield the worker and continue in a fresh region. Buffered
            // bytes never re-trigger kernel readiness, so this must re-post
            // directly rather than re-arm through the reactor.
            pyjama_trace::emit(conn.trace, Stage::ConnRearm, conn.served);
            let ctx2 = Arc::clone(ctx);
            let trace = conn.trace;
            if !ctx.post.post(trace, move || drive_reactor_conn(conn, &ctx2)) {
                ctx.post.shared.errors.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        match conn.parse_step(max_body) {
            Ok(ParseStatus::Complete { .. }) => {
                let resp = match shared.admit(conn.trace) {
                    Some(shed) => shed,
                    None => run_handler(shared, &conn.req),
                };
                let close = decide_close(conn.served, &conn.req, shared, &opts);
                conn.stage_response(&resp, close);
                budget -= 1;
            }
            Ok(ParseStatus::NeedMore) => match conn.read_step() {
                Ok(0) => {
                    // EOF. Truncated request bytes — or a connection that
                    // never produced a request — count as errors (mirroring
                    // `fail_read`); a clean close between requests doesn't.
                    if !conn.inbuf.is_empty() || conn.served == 0 {
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let idle = conn.inbuf.is_empty();
                    let deadline =
                        Instant::now() + if idle { opts.idle_timeout } else { opts.io_timeout };
                    if idle {
                        conn.release_idle_buffers();
                    }
                    pyjama_trace::emit(conn.trace, Stage::ReactorRearm, trace_arg::REARM_READ);
                    ctx.reactor.register(Reg {
                        conn,
                        interest: Interest::Read,
                        deadline,
                        idle,
                        kind: RegKind::RearmRead,
                    });
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            },
            Err(ReadError::BadRequest(msg)) => {
                // Answer 400 and close; the staged write goes through the
                // same resumable write path above.
                let resp = Response::error(Status::BadRequest, msg);
                conn.stage_response(&resp, true);
                shared.errors.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Disposes of a connection whose request could not be read. Malformed
/// requests are answered with `400` before closing; a clean EOF only counts
/// as an error when the connection never produced a request (`first`).
fn fail_read(mut conn: ConnState, err: ReadError, shared: &Arc<ServerShared>, first: bool) {
    match err {
        ReadError::Eof => {
            if first {
                shared.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        ReadError::BadRequest(msg) => {
            let resp = Response::error(Status::BadRequest, msg);
            let _ = conn.write_response(&resp, true);
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        ReadError::Io(_) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn run_handler(shared: &Arc<ServerShared>, req: &Request) -> Response {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (shared.handler)(req))) {
        Ok(resp) => resp,
        Err(_) => Response::error(Status::InternalServerError, "handler panicked"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::http_post;
    use std::io::{BufReader, Write as _};

    fn echo_handler(req: &Request) -> Response {
        Response::ok(req.body.clone())
    }

    /// `served` is bumped after the response write, so a client can observe
    /// its response a moment before the counter: spin briefly.
    fn wait_served(server: &HttpServer, n: u64) {
        let t0 = Instant::now();
        while server.served() < n && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.served(), n);
    }

    #[test]
    fn jetty_policy_serves_requests() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 4 }, echo_handler).unwrap();
        let resp = http_post(server.addr(), "/echo", b"hello".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, b"hello");
        wait_served(&server, 1);
        assert_eq!(server.conn_stats().accepted, 1);
        server.shutdown();
    }

    #[test]
    fn pyjama_policy_serves_requests() {
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("worker", 4);
        let mut server = HttpServer::start(
            ServingPolicy::PyjamaVirtualTarget {
                runtime: Arc::clone(&rt),
                target: "worker".into(),
            },
            echo_handler,
        )
        .unwrap();
        let resp = http_post(server.addr(), "/echo", b"pyjama".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, b"pyjama");
        server.shutdown();
    }

    #[test]
    fn reactor_policy_serves_requests() {
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("worker", 4);
        let mut server = HttpServer::start(
            ServingPolicy::Reactor {
                runtime: Arc::clone(&rt),
                target: "worker".into(),
            },
            echo_handler,
        )
        .unwrap();
        let resp = http_post(server.addr(), "/echo", b"reactor".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, b"reactor");
        wait_served(&server, 1);
        let stats = server.reactor_stats().expect("reactor policy");
        assert_eq!(stats.registered, 1);
        assert!(stats.dispatched >= 1);
        assert!(stats.readiness_balanced(), "{stats:?}");
        server.shutdown();
    }

    #[test]
    fn reactor_keep_alive_session_reuses_one_socket() {
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("worker", 2);
        let mut server = HttpServer::start(
            ServingPolicy::Reactor {
                runtime: rt,
                target: "worker".into(),
            },
            echo_handler,
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..3u8 {
            let mut req = Request::new("POST", "/echo", vec![i; 4]);
            req.headers.insert("connection", "keep-alive");
            let mut wire = Vec::new();
            req.write_into(&mut wire);
            stream.write_all(&wire).unwrap();
            let resp = Response::read_from(&mut reader).unwrap();
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.body, vec![i; 4]);
            assert!(!resp.announces_close());
            // Pace the session so the serving region drains the socket and
            // re-arms between requests. (Unpaced, the next request can land
            // before the region hits `WouldBlock`, and one region serves
            // the whole session — the fast path, but not what this test is
            // exercising.)
            std::thread::sleep(Duration::from_millis(40));
        }
        wait_served(&server, 3);
        let stats = server.conn_stats();
        assert_eq!(stats.accepted, 1, "one socket for all three requests");
        assert_eq!(stats.reused, 2);
        let rs = server.reactor_stats().unwrap();
        assert!(rs.rearms() >= 2, "between-request re-arms expected: {rs:?}");
        assert!(rs.dispatched >= 3, "each paced request needs its own dispatch: {rs:?}");
        assert!(rs.readiness_balanced(), "{rs:?}");
        server.shutdown();
    }

    #[test]
    fn reactor_malformed_post_gets_400() {
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("worker", 2);
        let mut server = HttpServer::start(
            ServingPolicy::Reactor {
                runtime: rt,
                target: "worker".into(),
            },
            echo_handler,
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(b"POST /x HTTP/1.1\r\n\r\nrogue").unwrap();
        let resp = Response::read_from(&mut BufReader::new(stream)).unwrap();
        assert_eq!(resp.status, Status::BadRequest);
        let t0 = Instant::now();
        while server.errors() == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(server.errors() >= 1);
        server.shutdown();
    }

    #[test]
    fn reactor_idle_connection_evicted_not_errored() {
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("worker", 2);
        let opts = ServerOptions {
            idle_timeout: Duration::from_millis(100),
            ..ServerOptions::default()
        };
        let mut server = HttpServer::start_with(
            ServingPolicy::Reactor {
                runtime: rt,
                target: "worker".into(),
            },
            opts,
            echo_handler,
        )
        .unwrap();
        // A connection that never sends a request goes idle past the
        // deadline: evicted as keep-alive lifecycle, not an error.
        let silent = TcpStream::connect(server.addr()).unwrap();
        silent
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        use std::io::Read as _;
        let mut buf = [0u8; 8];
        assert_eq!((&silent).read(&mut buf).unwrap(), 0, "server closed it");
        let t0 = Instant::now();
        while server.conn_stats().timed_out_idle == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.conn_stats().timed_out_idle, 1);
        assert_eq!(server.errors(), 0);
        assert_eq!(server.reactor_stats().unwrap().evicted_idle, 1);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_served() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 8 }, echo_handler).unwrap();
        let addr = server.addr();
        let hs: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = format!("client-{i}").into_bytes();
                    let resp = http_post(addr, "/echo", body.clone()).unwrap();
                    assert_eq!(resp.body, body);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        wait_served(&server, 16);
        server.shutdown();
    }

    #[test]
    fn keep_alive_session_serves_multiple_requests_on_one_socket() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, echo_handler).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..3u8 {
            let mut req = Request::new("POST", "/echo", vec![i; 4]);
            req.headers.insert("connection", "keep-alive");
            let mut wire = Vec::new();
            req.write_into(&mut wire);
            stream.write_all(&wire).unwrap();
            let resp = Response::read_from(&mut reader).unwrap();
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.body, vec![i; 4]);
            assert!(!resp.announces_close());
        }
        wait_served(&server, 3);
        let stats = server.conn_stats();
        assert_eq!(stats.accepted, 1, "one socket for all three requests");
        assert_eq!(stats.reused, 2);
        server.shutdown();
    }

    #[test]
    fn keep_alive_disabled_closes_after_each_response() {
        let opts = ServerOptions {
            keep_alive: false,
            ..ServerOptions::default()
        };
        let mut server =
            HttpServer::start_with(ServingPolicy::JettyPool { threads: 2 }, opts, echo_handler)
                .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut req = Request::new("POST", "/echo", b"x".to_vec());
        req.headers.insert("connection", "keep-alive");
        let mut wire = Vec::new();
        req.write_into(&mut wire);
        stream.write_all(&wire).unwrap();
        let mut reader = BufReader::new(stream);
        let resp = Response::read_from(&mut reader).unwrap();
        assert!(resp.announces_close(), "keep_alive=false must force close");
        use std::io::Read as _;
        let mut rest = Vec::new();
        assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0, "server closed");
        assert_eq!(server.conn_stats().reused, 0);
        server.shutdown();
    }

    #[test]
    fn panicking_handler_becomes_500() {
        let mut server = HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, |req| {
            if req.path == "/boom" {
                panic!("handler bug");
            }
            Response::ok(vec![])
        })
        .unwrap();
        let resp = http_post(server.addr(), "/boom", vec![]).unwrap();
        assert_eq!(resp.status, Status::InternalServerError);
        // Server still works afterwards.
        let ok = http_post(server.addr(), "/fine", vec![]).unwrap();
        assert_eq!(ok.status, Status::Ok);
        server.shutdown();
    }

    #[test]
    fn malformed_post_gets_400_immediately() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, echo_handler).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // POST with a body but no content-length: previously this stalled
        // until the I/O timeout; now it must be answered right away.
        let t0 = Instant::now();
        stream
            .write_all(b"POST /x HTTP/1.1\r\n\r\nrogue")
            .unwrap();
        let resp = Response::read_from(&mut BufReader::new(stream)).unwrap();
        assert_eq!(resp.status, Status::BadRequest);
        assert!(
            t0.elapsed() < Duration::from_millis(400),
            "400 must not wait for the I/O timeout (took {:?})",
            t0.elapsed()
        );
        // The error counter lands around the 400 write: spin briefly.
        let t0 = Instant::now();
        while server.errors() == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(server.errors() >= 1);
        server.shutdown();
    }

    #[test]
    fn unknown_target_counts_error() {
        let rt = Arc::new(Runtime::new()); // no targets registered
        let mut server = HttpServer::start(
            ServingPolicy::PyjamaVirtualTarget {
                runtime: rt,
                target: "ghost".into(),
            },
            echo_handler,
        )
        .unwrap();
        // The request cannot be dispatched; the client sees a dropped
        // connection or empty response.
        let _ = http_post(server.addr(), "/echo", b"x".to_vec());
        let t0 = std::time::Instant::now();
        while server.errors() == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.errors() >= 1);
        server.shutdown();
    }

    #[test]
    fn stalled_client_times_out_and_does_not_block_accepts() {
        // A connection that never sends a request used to pin the single
        // pool thread indefinitely; with per-connection I/O timeouts it
        // fails within the I/O timeout and later requests are served.
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 1 }, echo_handler).unwrap();
        let stalled = TcpStream::connect(server.addr()).unwrap(); // sends nothing
        std::thread::sleep(Duration::from_millis(50)); // ensure it is accepted first
        let resp = http_post(server.addr(), "/echo", b"alive".to_vec()).unwrap();
        assert_eq!(resp.body, b"alive");
        let t0 = std::time::Instant::now();
        while server.errors() == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.errors() >= 1, "the stalled connection must be counted");
        drop(stalled);
        server.shutdown();
    }

    #[test]
    fn stalled_client_does_not_block_pyjama_acceptor() {
        // Under the Pyjama policy an acceptor reads the first request; a
        // silent connection must release it within the I/O timeout (and the
        // other acceptor shard keeps serving meanwhile).
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("worker", 2);
        let mut server = HttpServer::start(
            ServingPolicy::PyjamaVirtualTarget {
                runtime: rt,
                target: "worker".into(),
            },
            echo_handler,
        )
        .unwrap();
        let stalled = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let resp = http_post(server.addr(), "/echo", b"alive".to_vec()).unwrap();
        assert_eq!(resp.body, b"alive");
        drop(stalled);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 1 }, echo_handler).unwrap();
        server.shutdown();
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_all_acceptor_shards() {
        for acceptors in [1usize, 2, 4] {
            let opts = ServerOptions {
                acceptors,
                ..ServerOptions::default()
            };
            let mut server = HttpServer::start_with(
                ServingPolicy::JettyPool { threads: 1 },
                opts,
                echo_handler,
            )
            .unwrap();
            assert_eq!(server.options().acceptors, acceptors);
            // Must return promptly with every shard joined, not hang on
            // an acceptor that never got woken.
            let t0 = Instant::now();
            server.shutdown();
            assert!(
                t0.elapsed() < Duration::from_secs(3),
                "shutdown with {acceptors} acceptors took {:?}",
                t0.elapsed()
            );
        }
    }

    #[test]
    fn options_are_normalised() {
        let opts = ServerOptions {
            acceptors: 0,
            max_requests_per_conn: 0,
            ..ServerOptions::default()
        };
        let mut server =
            HttpServer::start_with(ServingPolicy::JettyPool { threads: 1 }, opts, echo_handler)
                .unwrap();
        assert_eq!(server.options().acceptors, 1);
        assert_eq!(server.options().max_requests_per_conn, 1);
        server.shutdown();
    }
}
