//! The HTTP server with pluggable serving policies and persistent
//! (keep-alive) connections.
//!
//! Connections are accepted by a small shard of acceptor threads and then
//! served according to the [`ServingPolicy`]:
//!
//! * **JettyPool** — a pool thread owns the connection for its lifetime,
//!   looping read → handle → write until the client closes, goes idle past
//!   the timeout, or the per-connection request cap is hit (thread-pinned
//!   sessions, as a thread-per-request pool does keep-alive).
//! * **PyjamaVirtualTarget** — no thread ever owns an idle connection. The
//!   acceptor reads only the *first* request and posts the handler to the
//!   virtual target with `nowait`; each completed handler *re-arms* the
//!   connection by posting a fresh "serve the next request" region (when
//!   the next request is already pipelined) or parking the socket on the
//!   shared idle poller (when it is not). A persistent connection is thus a
//!   chain of `nowait` target regions — the paper's event-handler offload
//!   pattern applied to connection lifetime — and a worker thread only ever
//!   touches a socket with request bytes waiting.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pyjama_metrics::{ConnCounters, ConnStats};
use pyjama_runtime::{Runtime, TargetRegion, VirtualTarget, WorkerTarget};
use pyjama_trace::{arg as trace_arg, Stage, TraceId};

use crate::conn::{wait_readable, ConnState, NextRequest};
use crate::idle::{IdleParker, ParkerShared};
use crate::message::{ReadError, Request, Response, Status};

/// The request handler: pure application logic, shared across policies so
/// the benchmark isolates the *serving strategy*.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// How incoming connections are turned into handler executions.
#[derive(Clone)]
pub enum ServingPolicy {
    /// Jetty-style: a fixed pool of `threads` workers; each connection is
    /// handed to a pool thread which serves it until it closes.
    JettyPool {
        /// Pool size.
        threads: usize,
    },
    /// Pyjama-style: handlers are offloaded to the named virtual target
    /// with `nowait` — `//#omp target virtual(worker) nowait` around the
    /// handler body — and connections re-arm themselves between requests.
    PyjamaVirtualTarget {
        /// The runtime owning the target.
        runtime: Arc<Runtime>,
        /// Virtual-target name (a worker pool).
        target: String,
    },
}

/// Tunables for the serving pipeline. [`Default`] matches the benchmark
/// configuration; [`HttpServer::start`] uses it.
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    /// Number of acceptor threads sharing the listener.
    pub acceptors: usize,
    /// Honor HTTP/1.1 keep-alive. When `false` every response carries
    /// `connection: close` (the pre-keep-alive behaviour, kept as the
    /// baseline the benchmarks compare against).
    pub keep_alive: bool,
    /// Close a connection after this many responses.
    pub max_requests_per_conn: u32,
    /// Evict a keep-alive connection idle for this long.
    pub idle_timeout: Duration,
    /// Per-read/write deadline on client sockets. A client that stalls
    /// mid-request (or never drains a response) fails its own I/O within
    /// this bound instead of pinning a serving thread forever.
    pub io_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            acceptors: 2,
            keep_alive: true,
            max_requests_per_conn: 1000,
            idle_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_millis(500),
        }
    }
}

struct ServerShared {
    handler: Handler,
    stop: AtomicBool,
    served: AtomicU64,
    errors: AtomicU64,
    conn: ConnCounters,
    /// Pyjama-policy regions posted but not yet finished. The virtual
    /// target belongs to the application's runtime — `shutdown` cannot join
    /// it, so it quiesces on this count instead.
    inflight: AtomicU64,
    opts: ServerOptions,
}

/// A running HTTP server bound to an ephemeral loopback port.
pub struct HttpServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    acceptors: Vec<JoinHandle<()>>,
    pool: Option<Arc<WorkerTarget>>,
    parker: Option<IdleParker>,
}

impl HttpServer {
    /// Starts a server with the given policy, default options and handler.
    pub fn start(
        policy: ServingPolicy,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> std::io::Result<Self> {
        Self::start_with(policy, ServerOptions::default(), handler)
    }

    /// Starts a server with explicit [`ServerOptions`].
    pub fn start_with(
        policy: ServingPolicy,
        mut opts: ServerOptions,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> std::io::Result<Self> {
        opts.acceptors = opts.acceptors.max(1);
        opts.max_requests_per_conn = opts.max_requests_per_conn.max(1);

        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            handler: Arc::new(handler),
            stop: AtomicBool::new(false),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            conn: ConnCounters::new(),
            inflight: AtomicU64::new(0),
            opts,
        });

        let (pool, parker, sink) = match &policy {
            ServingPolicy::JettyPool { threads } => {
                // The Jetty policy needs its own pool; reuse WorkerTarget
                // (it is a plain fixed pool when used without the runtime's
                // semantics).
                let pool = WorkerTarget::new("jetty-pool", (*threads).max(1));
                let sink = AcceptSink::Jetty {
                    pool: Arc::clone(&pool),
                    label: Arc::from("http-conn"),
                };
                (Some(pool), None, sink)
            }
            ServingPolicy::PyjamaVirtualTarget { runtime, target } => {
                let parker_shared = ParkerShared::new()?;
                // Resolve the target once; when it is not registered (yet)
                // fall back to a per-request lookup so each failed dispatch
                // is counted instead of the server refusing to start.
                let dispatch = match runtime.lookup(target) {
                    Ok(t) => Dispatch::Direct(t),
                    Err(_) => Dispatch::Lookup {
                        runtime: Arc::clone(runtime),
                        name: target.clone(),
                    },
                };
                let ctx = Arc::new(PyjamaCtx {
                    shared: Arc::clone(&shared),
                    dispatch,
                    label: Arc::from(format!("target virtual({target})").as_str()),
                    parker: Arc::clone(&parker_shared),
                });
                // A parked connection turning readable re-enters the target
                // as a fresh region; going idle past the deadline evicts it.
                let on_ready = {
                    let ctx = Arc::clone(&ctx);
                    move |conn: ConnState| {
                        pyjama_trace::emit(conn.trace, Stage::ConnReady, trace_arg::READY_READABLE);
                        let ctx2 = Arc::clone(&ctx);
                        let posted = ctx.post(conn.trace, move || {
                            let mut conn = conn;
                            match conn.read_request() {
                                Ok(()) => serve_one(conn, &ctx2),
                                Err(e) => fail_read(conn, e, &ctx2.shared, false),
                            }
                        });
                        if !posted {
                            ctx.shared.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                };
                let on_timeout = {
                    let shared = Arc::clone(&shared);
                    move |conn: ConnState| {
                        pyjama_trace::emit(conn.trace, Stage::ConnReady, trace_arg::READY_TIMEOUT);
                        shared.conn.record_timed_out_idle();
                        drop(conn); // closes the socket
                    }
                };
                let parker = IdleParker::spawn(parker_shared, on_ready, on_timeout)?;
                (None, Some(parker), AcceptSink::Pyjama { ctx })
            }
        };

        let mut acceptors = Vec::with_capacity(opts.acceptors);
        for i in 0..opts.acceptors {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            let sink = sink.clone();
            acceptors.push(
                std::thread::Builder::new()
                    .name(format!("http-acceptor-{i}"))
                    .spawn(move || accept_loop(listener, shared, sink))
                    .expect("failed to spawn acceptor"),
            );
        }

        Ok(HttpServer {
            addr,
            shared,
            acceptors,
            pool,
            parker,
        })
    }

    /// The bound address (`127.0.0.1:<ephemeral>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far (counted after the response write succeeds,
    /// so the value is monotone — it never decrements).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// A detached probe for [`served`](Self::served): a closure another
    /// thread can poll while this handle stays usable (e.g. a monotonicity
    /// sampler racing `shutdown`).
    pub fn served_probe(&self) -> impl Fn() -> u64 + Send + Sync + 'static {
        let shared = Arc::clone(&self.shared);
        move || shared.served.load(Ordering::Relaxed)
    }

    /// Connections/requests that failed mid-flight.
    pub fn errors(&self) -> u64 {
        self.shared.errors.load(Ordering::Relaxed)
    }

    /// Connection-lifecycle counters (accepts, reuse, pipelining, idle
    /// evictions).
    pub fn conn_stats(&self) -> ConnStats {
        self.shared.conn.snapshot()
    }

    /// Zeroes the connection-lifecycle counters. Quiesce the server first
    /// for exact figures; increments racing the reset land on either side.
    pub fn reset_conn_stats(&self) {
        self.shared.conn.reset();
    }

    /// The options the server is running with (normalised).
    pub fn options(&self) -> ServerOptions {
        self.shared.opts
    }

    /// Stops accepting, unblocks and joins every acceptor, stops the idle
    /// poller (closing parked connections) and shuts the Jetty pool down.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock `accept`: each blocked acceptor consumes exactly one
        // throwaway connection, so make one per acceptor thread.
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        }
        for a in self.acceptors.drain(..) {
            let _ = a.join();
        }
        if let Some(mut parker) = self.parker.take() {
            parker.shutdown();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        // Quiesce Pyjama regions still running on the application's worker
        // target (which is not ours to join): with `stop` set and the
        // acceptors and poller gone, no region re-arms, so the count only
        // falls. The deadline is a backstop against a target that was shut
        // down underneath us with regions still queued.
        let t0 = Instant::now();
        while self.shared.inflight.load(Ordering::SeqCst) > 0
            && t0.elapsed() < Duration::from_secs(5)
        {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Where an acceptor hands a fresh connection.
#[derive(Clone)]
enum AcceptSink {
    Jetty {
        pool: Arc<WorkerTarget>,
        label: Arc<str>,
    },
    Pyjama {
        ctx: Arc<PyjamaCtx>,
    },
}

/// How the Pyjama policy reaches its virtual target.
enum Dispatch {
    /// Resolved once at startup — the hot path posts with no registry
    /// access or name formatting.
    Direct(Arc<dyn VirtualTarget>),
    /// The target was unknown at startup; retry the lookup per request.
    Lookup { runtime: Arc<Runtime>, name: String },
}

/// Everything a Pyjama-policy serving region needs to re-arm a connection.
struct PyjamaCtx {
    shared: Arc<ServerShared>,
    dispatch: Dispatch,
    /// Interned region label: re-posting clones the `Arc` instead of
    /// formatting a fresh string per request.
    label: Arc<str>,
    parker: Arc<ParkerShared>,
}

impl PyjamaCtx {
    /// Posts `body` to the virtual target as a `nowait` region continuing
    /// the connection's trace flow. Returns `false` when the target cannot
    /// be resolved.
    fn post(&self, trace: TraceId, body: impl FnOnce() + Send + 'static) -> bool {
        // Count the region in-flight across its whole run so `shutdown` can
        // quiesce: the decrement runs after `body` — including the counter
        // updates inside it — has finished.
        self.shared.inflight.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&self.shared);
        let region = TargetRegion::with_label_trace(Arc::clone(&self.label), trace, move || {
            body();
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
        });
        let posted = match &self.dispatch {
            Dispatch::Direct(t) => {
                t.post(region);
                true
            }
            Dispatch::Lookup { runtime, name } => match runtime.lookup(name) {
                Ok(t) => {
                    t.post(region);
                    true
                }
                Err(_) => false,
            },
        };
        if !posted {
            self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
        }
        posted
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>, sink: AcceptSink) {
    let mut consecutive_errors: u32 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => {
                consecutive_errors = 0;
                s
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failures (ECONNABORTED, EMFILE, …) used
                // to busy-spin this thread at 100% CPU. Back off
                // exponentially instead, capped at 128ms so recovery from a
                // brief fd exhaustion stays prompt.
                consecutive_errors = consecutive_errors.saturating_add(1);
                std::thread::sleep(Duration::from_millis(1u64 << consecutive_errors.min(7)));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let mut conn = match ConnState::new(stream, shared.opts.io_timeout) {
            Ok(c) => c,
            Err(_) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        shared.conn.record_accepted();
        conn.trace = TraceId::mint();
        pyjama_trace::emit(conn.trace, Stage::ConnAccepted, 0);
        match &sink {
            AcceptSink::Jetty { pool, label } => {
                // Hand the connection to a pool thread: it owns the whole
                // keep-alive session.
                let shared = Arc::clone(&shared);
                let trace = conn.trace;
                pool.post(TargetRegion::with_label_trace(
                    Arc::clone(label),
                    trace,
                    move || {
                        serve_session(conn, &shared);
                    },
                ));
            }
            AcceptSink::Pyjama { ctx } => {
                // The acceptor parses only the *first* request (cheap),
                // then offloads the handler — and with it the connection's
                // future — to the virtual target.
                match conn.read_request() {
                    Ok(()) => rearm(conn, ctx),
                    Err(e) => fail_read(conn, e, &shared, true),
                }
            }
        }
    }
}

/// Should the connection close after the response to `req`?
fn decide_close(served_before: u32, req: &Request, shared: &ServerShared) -> bool {
    req.wants_close()
        || !shared.opts.keep_alive
        || served_before + 1 >= shared.opts.max_requests_per_conn
        || shared.stop.load(Ordering::SeqCst)
}

/// Handles one parsed request on `conn`: run the handler, write the
/// response, bump counters. Returns `false` when the connection must not
/// serve further requests.
fn respond(conn: &mut ConnState, shared: &Arc<ServerShared>) -> bool {
    let resp = run_handler(shared, &conn.req);
    let close = decide_close(conn.served, &conn.req, shared);
    if conn.write_response(&resp, close).is_err() {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    // Count only after the write succeeded: `served` is monotone and a
    // request is never double-counted across a keep-alive session.
    conn.served += 1;
    shared.served.fetch_add(1, Ordering::Relaxed);
    pyjama_trace::emit(conn.trace, Stage::ResponseWritten, conn.served);
    if conn.served > 1 {
        shared.conn.record_reused();
    }
    !close
}

/// Jetty-style session: the calling pool thread owns `conn` until close.
fn serve_session(mut conn: ConnState, shared: &Arc<ServerShared>) {
    let opts = shared.opts;
    loop {
        if conn.served > 0 {
            // Between requests of an established session: wait for the next
            // request, the idle deadline, or shutdown.
            let deadline = Instant::now() + opts.idle_timeout;
            match wait_readable(&mut conn, deadline, opts.io_timeout, &shared.stop) {
                NextRequest::Ready { pipelined } => {
                    if pipelined {
                        shared.conn.record_pipelined();
                    }
                }
                NextRequest::Eof | NextRequest::Stopped => return,
                NextRequest::IdleTimeout => {
                    shared.conn.record_timed_out_idle();
                    return;
                }
                NextRequest::Err(_) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        let first = conn.served == 0;
        match conn.read_request() {
            Ok(()) => {}
            Err(e) => return fail_read(conn, e, shared, first),
        }
        if !respond(&mut conn, shared) {
            return;
        }
    }
}

/// Pyjama-style serving of the request already parsed into `conn.req`,
/// running inside a `nowait` target region. Afterwards the connection
/// re-arms itself: a pipelined request re-posts immediately; a silent
/// connection parks on the idle poller — this region returns without ever
/// blocking on the socket.
fn serve_one(mut conn: ConnState, ctx: &Arc<PyjamaCtx>) {
    let shared = &ctx.shared;
    if !respond(&mut conn, shared) {
        return;
    }
    if shared.stop.load(Ordering::SeqCst) {
        return;
    }
    if conn.has_buffered() {
        shared.conn.record_pipelined();
        match conn.read_request() {
            Ok(()) => rearm(conn, ctx),
            Err(e) => fail_read(conn, e, shared, false),
        }
    } else {
        let deadline = Instant::now() + shared.opts.idle_timeout;
        pyjama_trace::emit(conn.trace, Stage::ConnIdlePark, conn.served);
        ctx.parker.park(conn, deadline);
    }
}

/// Posts the next link of the connection's region chain.
fn rearm(conn: ConnState, ctx: &Arc<PyjamaCtx>) {
    pyjama_trace::emit(conn.trace, Stage::ConnRearm, conn.served);
    let ctx2 = Arc::clone(ctx);
    let trace = conn.trace;
    let posted = ctx.post(trace, move || serve_one(conn, &ctx2));
    if !posted {
        ctx.shared.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disposes of a connection whose request could not be read. Malformed
/// requests are answered with `400` before closing; a clean EOF only counts
/// as an error when the connection never produced a request (`first`).
fn fail_read(mut conn: ConnState, err: ReadError, shared: &Arc<ServerShared>, first: bool) {
    match err {
        ReadError::Eof => {
            if first {
                shared.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        ReadError::BadRequest(msg) => {
            let resp = Response::error(Status::BadRequest, msg);
            let _ = conn.write_response(&resp, true);
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        ReadError::Io(_) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn run_handler(shared: &Arc<ServerShared>, req: &Request) -> Response {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (shared.handler)(req))) {
        Ok(resp) => resp,
        Err(_) => Response::error(Status::InternalServerError, "handler panicked"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::http_post;
    use std::io::{BufReader, Write as _};

    fn echo_handler(req: &Request) -> Response {
        Response::ok(req.body.clone())
    }

    /// `served` is bumped after the response write, so a client can observe
    /// its response a moment before the counter: spin briefly.
    fn wait_served(server: &HttpServer, n: u64) {
        let t0 = Instant::now();
        while server.served() < n && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.served(), n);
    }

    #[test]
    fn jetty_policy_serves_requests() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 4 }, echo_handler).unwrap();
        let resp = http_post(server.addr(), "/echo", b"hello".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, b"hello");
        wait_served(&server, 1);
        assert_eq!(server.conn_stats().accepted, 1);
        server.shutdown();
    }

    #[test]
    fn pyjama_policy_serves_requests() {
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("worker", 4);
        let mut server = HttpServer::start(
            ServingPolicy::PyjamaVirtualTarget {
                runtime: Arc::clone(&rt),
                target: "worker".into(),
            },
            echo_handler,
        )
        .unwrap();
        let resp = http_post(server.addr(), "/echo", b"pyjama".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, b"pyjama");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_served() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 8 }, echo_handler).unwrap();
        let addr = server.addr();
        let hs: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = format!("client-{i}").into_bytes();
                    let resp = http_post(addr, "/echo", body.clone()).unwrap();
                    assert_eq!(resp.body, body);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        wait_served(&server, 16);
        server.shutdown();
    }

    #[test]
    fn keep_alive_session_serves_multiple_requests_on_one_socket() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, echo_handler).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..3u8 {
            let mut req = Request::new("POST", "/echo", vec![i; 4]);
            req.headers.insert("connection", "keep-alive");
            let mut wire = Vec::new();
            req.write_into(&mut wire);
            stream.write_all(&wire).unwrap();
            let resp = Response::read_from(&mut reader).unwrap();
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.body, vec![i; 4]);
            assert!(!resp.announces_close());
        }
        wait_served(&server, 3);
        let stats = server.conn_stats();
        assert_eq!(stats.accepted, 1, "one socket for all three requests");
        assert_eq!(stats.reused, 2);
        server.shutdown();
    }

    #[test]
    fn keep_alive_disabled_closes_after_each_response() {
        let opts = ServerOptions {
            keep_alive: false,
            ..ServerOptions::default()
        };
        let mut server =
            HttpServer::start_with(ServingPolicy::JettyPool { threads: 2 }, opts, echo_handler)
                .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut req = Request::new("POST", "/echo", b"x".to_vec());
        req.headers.insert("connection", "keep-alive");
        let mut wire = Vec::new();
        req.write_into(&mut wire);
        stream.write_all(&wire).unwrap();
        let mut reader = BufReader::new(stream);
        let resp = Response::read_from(&mut reader).unwrap();
        assert!(resp.announces_close(), "keep_alive=false must force close");
        use std::io::Read as _;
        let mut rest = Vec::new();
        assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0, "server closed");
        assert_eq!(server.conn_stats().reused, 0);
        server.shutdown();
    }

    #[test]
    fn panicking_handler_becomes_500() {
        let mut server = HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, |req| {
            if req.path == "/boom" {
                panic!("handler bug");
            }
            Response::ok(vec![])
        })
        .unwrap();
        let resp = http_post(server.addr(), "/boom", vec![]).unwrap();
        assert_eq!(resp.status, Status::InternalServerError);
        // Server still works afterwards.
        let ok = http_post(server.addr(), "/fine", vec![]).unwrap();
        assert_eq!(ok.status, Status::Ok);
        server.shutdown();
    }

    #[test]
    fn malformed_post_gets_400_immediately() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, echo_handler).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // POST with a body but no content-length: previously this stalled
        // until the I/O timeout; now it must be answered right away.
        let t0 = Instant::now();
        stream
            .write_all(b"POST /x HTTP/1.1\r\n\r\nrogue")
            .unwrap();
        let resp = Response::read_from(&mut BufReader::new(stream)).unwrap();
        assert_eq!(resp.status, Status::BadRequest);
        assert!(
            t0.elapsed() < Duration::from_millis(400),
            "400 must not wait for the I/O timeout (took {:?})",
            t0.elapsed()
        );
        // The error counter lands around the 400 write: spin briefly.
        let t0 = Instant::now();
        while server.errors() == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(server.errors() >= 1);
        server.shutdown();
    }

    #[test]
    fn unknown_target_counts_error() {
        let rt = Arc::new(Runtime::new()); // no targets registered
        let mut server = HttpServer::start(
            ServingPolicy::PyjamaVirtualTarget {
                runtime: rt,
                target: "ghost".into(),
            },
            echo_handler,
        )
        .unwrap();
        // The request cannot be dispatched; the client sees a dropped
        // connection or empty response.
        let _ = http_post(server.addr(), "/echo", b"x".to_vec());
        let t0 = std::time::Instant::now();
        while server.errors() == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.errors() >= 1);
        server.shutdown();
    }

    #[test]
    fn stalled_client_times_out_and_does_not_block_accepts() {
        // A connection that never sends a request used to pin the single
        // pool thread indefinitely; with per-connection I/O timeouts it
        // fails within the I/O timeout and later requests are served.
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 1 }, echo_handler).unwrap();
        let stalled = TcpStream::connect(server.addr()).unwrap(); // sends nothing
        std::thread::sleep(Duration::from_millis(50)); // ensure it is accepted first
        let resp = http_post(server.addr(), "/echo", b"alive".to_vec()).unwrap();
        assert_eq!(resp.body, b"alive");
        let t0 = std::time::Instant::now();
        while server.errors() == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.errors() >= 1, "the stalled connection must be counted");
        drop(stalled);
        server.shutdown();
    }

    #[test]
    fn stalled_client_does_not_block_pyjama_acceptor() {
        // Under the Pyjama policy an acceptor reads the first request; a
        // silent connection must release it within the I/O timeout (and the
        // other acceptor shard keeps serving meanwhile).
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("worker", 2);
        let mut server = HttpServer::start(
            ServingPolicy::PyjamaVirtualTarget {
                runtime: rt,
                target: "worker".into(),
            },
            echo_handler,
        )
        .unwrap();
        let stalled = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let resp = http_post(server.addr(), "/echo", b"alive".to_vec()).unwrap();
        assert_eq!(resp.body, b"alive");
        drop(stalled);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 1 }, echo_handler).unwrap();
        server.shutdown();
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_all_acceptor_shards() {
        for acceptors in [1usize, 2, 4] {
            let opts = ServerOptions {
                acceptors,
                ..ServerOptions::default()
            };
            let mut server = HttpServer::start_with(
                ServingPolicy::JettyPool { threads: 1 },
                opts,
                echo_handler,
            )
            .unwrap();
            assert_eq!(server.options().acceptors, acceptors);
            // Must return promptly with every shard joined, not hang on
            // an acceptor that never got woken.
            let t0 = Instant::now();
            server.shutdown();
            assert!(
                t0.elapsed() < Duration::from_secs(3),
                "shutdown with {acceptors} acceptors took {:?}",
                t0.elapsed()
            );
        }
    }

    #[test]
    fn options_are_normalised() {
        let opts = ServerOptions {
            acceptors: 0,
            max_requests_per_conn: 0,
            ..ServerOptions::default()
        };
        let mut server =
            HttpServer::start_with(ServingPolicy::JettyPool { threads: 1 }, opts, echo_handler)
                .unwrap();
        assert_eq!(server.options().acceptors, 1);
        assert_eq!(server.options().max_requests_per_conn, 1);
        server.shutdown();
    }
}
