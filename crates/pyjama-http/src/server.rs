//! The HTTP server with pluggable serving policies.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pyjama_runtime::{Mode, Runtime};

use crate::message::{Request, Response, Status};

/// The request handler: pure application logic, shared across policies so
/// the benchmark isolates the *serving strategy*.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Read/write deadline applied to every accepted connection. A client that
/// stalls mid-request (or never drains the response) fails its own I/O
/// within this bound instead of pinning a serving thread — or, under the
/// Pyjama policy, the acceptor itself — forever.
const CLIENT_IO_TIMEOUT: Duration = Duration::from_millis(500);

/// How incoming connections are turned into handler executions.
#[derive(Clone)]
pub enum ServingPolicy {
    /// Jetty-style: a fixed pool of `threads` workers; each connection is
    /// handed to a pool thread which reads, handles and responds.
    JettyPool {
        /// Pool size.
        threads: usize,
    },
    /// Pyjama-style: the acceptor thread reads the request, then offloads
    /// the handler to the named virtual target with `nowait`, staying free
    /// to accept the next connection — `//#omp target virtual(worker)
    /// nowait` around the handler body.
    PyjamaVirtualTarget {
        /// The runtime owning the target.
        runtime: Arc<Runtime>,
        /// Virtual-target name (a worker pool).
        target: String,
    },
}

struct ServerShared {
    handler: Handler,
    stop: AtomicBool,
    served: AtomicU64,
    errors: AtomicU64,
}

/// A running HTTP server bound to an ephemeral loopback port.
pub struct HttpServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
    pool: Option<Arc<pyjama_runtime::WorkerTarget>>,
}

impl HttpServer {
    /// Starts a server with the given policy and handler.
    pub fn start(
        policy: ServingPolicy,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            handler: Arc::new(handler),
            stop: AtomicBool::new(false),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });

        // The Jetty policy needs its own pool; reuse WorkerTarget (it is a
        // plain fixed pool when used without the runtime's semantics).
        let pool = match &policy {
            ServingPolicy::JettyPool { threads } => Some(pyjama_runtime::WorkerTarget::new(
                "jetty-pool",
                (*threads).max(1),
            )),
            ServingPolicy::PyjamaVirtualTarget { .. } => None,
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            let pool = pool.clone();
            std::thread::Builder::new()
                .name("http-acceptor".into())
                .spawn(move || accept_loop(listener, shared, policy, pool))
                .expect("failed to spawn acceptor")
        };

        Ok(HttpServer {
            addr,
            shared,
            acceptor: Some(acceptor),
            pool,
        })
    }

    /// The bound address (`127.0.0.1:<ephemeral>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Connections that failed mid-flight.
    pub fn errors(&self) -> u64 {
        self.shared.errors.load(Ordering::Relaxed)
    }

    /// Stops accepting, unblocks the acceptor, joins it. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<ServerShared>,
    policy: ServingPolicy,
    pool: Option<Arc<pyjama_runtime::WorkerTarget>>,
) {
    let mut consecutive_errors: u32 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => {
                consecutive_errors = 0;
                s
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failures (ECONNABORTED, EMFILE, …) used
                // to busy-spin this thread at 100% CPU. Back off
                // exponentially instead, capped at 128ms so recovery from a
                // brief fd exhaustion stays prompt.
                consecutive_errors = consecutive_errors.saturating_add(1);
                std::thread::sleep(Duration::from_millis(1u64 << consecutive_errors.min(7)));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        if stream.set_read_timeout(Some(CLIENT_IO_TIMEOUT)).is_err()
            || stream.set_write_timeout(Some(CLIENT_IO_TIMEOUT)).is_err()
        {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        match &policy {
            ServingPolicy::JettyPool { .. } => {
                // Hand the raw connection to a pool thread: read + compute +
                // respond all happen there (thread-per-request on a pool).
                let shared = Arc::clone(&shared);
                let pool = pool.as_ref().expect("jetty policy has a pool");
                use pyjama_runtime::VirtualTarget as _;
                pool.post(pyjama_runtime::TargetRegion::new("http-conn", move || {
                    serve_connection(stream, &shared);
                }));
            }
            ServingPolicy::PyjamaVirtualTarget { runtime, target } => {
                // The acceptor parses the request itself (cheap), then
                // offloads only the time-consuming handler with `nowait`.
                let mut stream = stream;
                let mut reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => {
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                });
                let req = match Request::read_from(&mut reader) {
                    Ok(r) => r,
                    Err(_) => {
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                };
                let shared2 = Arc::clone(&shared);
                let handle = runtime.try_target(target, Mode::NoWait, move || {
                    let resp = run_handler(&shared2, &req);
                    // Count before the final write so a client that has read
                    // the full response always observes the increment.
                    shared2.served.fetch_add(1, Ordering::Relaxed);
                    if resp.write_to(&mut stream).is_err() {
                        shared2.served.fetch_sub(1, Ordering::Relaxed);
                        shared2.errors.fetch_add(1, Ordering::Relaxed);
                    }
                });
                if handle.is_err() {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<ServerShared>) {
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    match Request::read_from(&mut reader) {
        Ok(req) => {
            let resp = run_handler(shared, &req);
            // Count before the final write so a client that has read the
            // full response always observes the increment.
            shared.served.fetch_add(1, Ordering::Relaxed);
            if resp.write_to(&mut write_half).is_err() {
                shared.served.fetch_sub(1, Ordering::Relaxed);
                shared.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(_) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn run_handler(shared: &Arc<ServerShared>, req: &Request) -> Response {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (shared.handler)(req))) {
        Ok(resp) => resp,
        Err(_) => Response::error(Status::InternalServerError, "handler panicked"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::http_post;

    fn echo_handler(req: &Request) -> Response {
        Response::ok(req.body.clone())
    }

    #[test]
    fn jetty_policy_serves_requests() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 4 }, echo_handler).unwrap();
        let resp = http_post(server.addr(), "/echo", b"hello".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, b"hello");
        assert_eq!(server.served(), 1);
        server.shutdown();
    }

    #[test]
    fn pyjama_policy_serves_requests() {
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("worker", 4);
        let mut server = HttpServer::start(
            ServingPolicy::PyjamaVirtualTarget {
                runtime: Arc::clone(&rt),
                target: "worker".into(),
            },
            echo_handler,
        )
        .unwrap();
        let resp = http_post(server.addr(), "/echo", b"pyjama".to_vec()).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, b"pyjama");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_served() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 8 }, echo_handler).unwrap();
        let addr = server.addr();
        let hs: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = format!("client-{i}").into_bytes();
                    let resp = http_post(addr, "/echo", body.clone()).unwrap();
                    assert_eq!(resp.body, body);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(server.served(), 16);
        server.shutdown();
    }

    #[test]
    fn panicking_handler_becomes_500() {
        let mut server = HttpServer::start(ServingPolicy::JettyPool { threads: 2 }, |req| {
            if req.path == "/boom" {
                panic!("handler bug");
            }
            Response::ok(vec![])
        })
        .unwrap();
        let resp = http_post(server.addr(), "/boom", vec![]).unwrap();
        assert_eq!(resp.status, Status::InternalServerError);
        // Server still works afterwards.
        let ok = http_post(server.addr(), "/fine", vec![]).unwrap();
        assert_eq!(ok.status, Status::Ok);
        server.shutdown();
    }

    #[test]
    fn unknown_target_counts_error() {
        let rt = Arc::new(Runtime::new()); // no targets registered
        let mut server = HttpServer::start(
            ServingPolicy::PyjamaVirtualTarget {
                runtime: rt,
                target: "ghost".into(),
            },
            echo_handler,
        )
        .unwrap();
        // The request cannot be dispatched; the client sees a dropped
        // connection or empty response.
        let _ = http_post(server.addr(), "/echo", b"x".to_vec());
        let t0 = std::time::Instant::now();
        while server.errors() == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.errors() >= 1);
        server.shutdown();
    }

    #[test]
    fn stalled_client_times_out_and_does_not_block_accepts() {
        // A connection that never sends a request used to pin the single
        // pool thread indefinitely; with per-connection I/O timeouts it
        // fails within CLIENT_IO_TIMEOUT and later requests are served.
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 1 }, echo_handler).unwrap();
        let stalled = TcpStream::connect(server.addr()).unwrap(); // sends nothing
        std::thread::sleep(Duration::from_millis(50)); // ensure it is accepted first
        let resp = http_post(server.addr(), "/echo", b"alive".to_vec()).unwrap();
        assert_eq!(resp.body, b"alive");
        let t0 = std::time::Instant::now();
        while server.errors() == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.errors() >= 1, "the stalled connection must be counted");
        drop(stalled);
        server.shutdown();
    }

    #[test]
    fn stalled_client_does_not_block_pyjama_acceptor() {
        // Under the Pyjama policy the *acceptor* reads the request; a silent
        // connection must release it within the I/O timeout.
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("worker", 2);
        let mut server = HttpServer::start(
            ServingPolicy::PyjamaVirtualTarget {
                runtime: rt,
                target: "worker".into(),
            },
            echo_handler,
        )
        .unwrap();
        let stalled = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let resp = http_post(server.addr(), "/echo", b"alive".to_vec()).unwrap();
        assert_eq!(resp.body, b"alive");
        drop(stalled);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server =
            HttpServer::start(ServingPolicy::JettyPool { threads: 1 }, echo_handler).unwrap();
        server.shutdown();
        server.shutdown();
    }
}
