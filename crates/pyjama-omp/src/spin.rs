//! Adaptive spin budgets.
//!
//! Spinning before a park is only profitable when the thread being waited
//! for can make progress *while we spin* — i.e. when there is more than one
//! hardware thread. On a single-CPU machine every spin iteration actively
//! delays the thread that would satisfy the wait (the classic
//! spin-on-uniprocessor pathology; libgomp likewise throttles its wait
//! policy when threads are oversubscribed). All spin-then-park sites in
//! this crate route their budget through [`budget`], which collapses it to
//! zero there.

use std::sync::OnceLock;

/// Returns `limit` on multi-core machines, `0` on a single hardware thread.
pub(crate) fn budget(limit: u32) -> u32 {
    static MULTI: OnceLock<bool> = OnceLock::new();
    let multi = *MULTI.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(true)
    });
    if multi {
        limit
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_limit_or_zero() {
        let b = budget(4096);
        assert!(b == 4096 || b == 0);
        // Deterministic per process.
        assert_eq!(b, budget(4096));
    }
}
