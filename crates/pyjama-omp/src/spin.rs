//! Adaptive spin budgets.
//!
//! Spinning before a park is only profitable when the thread being waited
//! for can make progress *while we spin* — i.e. when there is more than one
//! hardware thread. On a single-CPU machine every spin iteration actively
//! delays the thread that would satisfy the wait (the classic
//! spin-on-uniprocessor pathology; libgomp likewise throttles its wait
//! policy when threads are oversubscribed). All spin-then-park sites in
//! this crate route their budget through [`budget`].
//!
//! The policy is overridable — `OMP_WAIT_POLICY`-style control without the
//! full ICV machinery:
//!
//! 1. [`set_spin_budget`] pins every site's budget to a fixed value (tests
//!    use `Some(0)` to force the park paths deterministically; benchmarks
//!    pin a value to take scheduling noise out of A/B runs), and
//! 2. the `PJ_SPIN_BUDGET` environment variable does the same from outside
//!    the process, read once on first use.
//!
//! Without either, the old adaptive default applies: the caller's limit on
//! multi-core machines, zero on a single hardware thread.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// Sentinel for "no override": budgets are real spin counts well below it.
const UNSET: u32 = u32::MAX;

/// Process-wide override; [`UNSET`] when the adaptive default applies.
static OVERRIDE: AtomicU32 = AtomicU32::new(UNSET);

/// Overrides every spin-then-park site's budget: `Some(n)` caps each site
/// at `n` iterations (0 forces immediate parking), `None` restores the
/// adaptive default. Takes effect on the next [`budget`] call — unlike the
/// old `OnceLock` scheme there is no process-global freeze, so tests can
/// flip policies without reordering hacks.
pub fn set_spin_budget(limit: Option<u32>) {
    let v = match limit {
        Some(n) => n.min(UNSET - 1),
        None => UNSET,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// The environment override, parsed once. `PJ_SPIN_BUDGET=0` is the useful
/// extreme: force every wait straight to its park path.
fn env_override() -> Option<u32> {
    static ENV: OnceLock<Option<u32>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PJ_SPIN_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .map(|v| v.min(UNSET - 1))
    })
}

/// True when the machine has more than one hardware thread (cached).
fn multi_core() -> bool {
    static MULTI: OnceLock<bool> = OnceLock::new();
    *MULTI.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(true)
    })
}

/// Resolves the effective spin budget for a site whose default is `limit`:
/// [`set_spin_budget`] wins, then `PJ_SPIN_BUDGET`, then the adaptive
/// default (`limit` on multi-core, `0` on a single hardware thread).
pub fn budget(limit: u32) -> u32 {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o != UNSET {
        return o;
    }
    if let Some(e) = env_override() {
        return e;
    }
    if multi_core() {
        limit
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the override is process-global and the test
    // harness runs tests concurrently.
    #[test]
    fn budget_default_override_and_release() {
        set_spin_budget(None);
        let b = budget(4096);
        assert!(b == 4096 || b == 0);
        // Deterministic per process (same adaptive answer every call).
        assert_eq!(b, budget(4096));

        set_spin_budget(Some(7));
        assert_eq!(budget(4096), 7);
        set_spin_budget(Some(0));
        assert_eq!(budget(4096), 0, "zero must force the park path");
        set_spin_budget(None);
        let after = budget(4096);
        assert_eq!(after, b, "None must restore the adaptive default");
    }
}
