//! A reusable sense-reversing spin-then-park barrier.
//!
//! The team barrier is the hottest synchronisation primitive in a
//! fork-join runtime: with pooled workers, every region pays the join
//! barrier even when its body is sub-microsecond, and every `ctx.barrier()`
//! pays it again. The previous design took a mutex and a condvar
//! round-trip on *every* arrival; for region bodies shorter than a context
//! switch that lock traffic dominated the region.
//!
//! This barrier keeps the classic sense-reversing shape but moves the fast
//! path entirely onto atomics:
//!
//! * Arrival is one `fetch_sub` on the remaining-count. The last arrival
//!   resets the count and bumps the atomic *generation word*, which is the
//!   only thing waiters watch — the sense reversal that makes immediate
//!   reuse safe (a thread can never lap a barrier it has not exited).
//! * Waiters spin a bounded budget ([`SPIN_LIMIT`], calibrated so that
//!   sub-µs region bodies and back-to-back barriers resolve without a
//!   syscall), then park on a condvar with the same permit discipline as
//!   `pyjama-runtime`'s parker: the sleeper count is published *before*
//!   re-checking the generation under the lock, and the opener notifies
//!   under the same lock, so a wake between "spin failed" and "parked"
//!   is never lost.
//! * [`Barrier::quiesce`] lets an owner whose barrier lives on its stack
//!   wait until every other participant has fully stepped out of
//!   [`wait`](Barrier::wait) before the memory is reclaimed — each
//!   waiter's very last touch of the barrier is a `Release` decrement of
//!   the active count, and `quiesce` acquires on it. (Region *join* does
//!   not go through this barrier at all: pooled workers signal completion
//!   into their own `'static` slots — see [`crate::pool`] — so this
//!   barrier only serves explicit `ctx.barrier()` rendezvous.)
//!
//! Spin-vs-park outcomes are counted in the crate's [`TeamStats`]
//! (`pyjama_omp::team_stats()`) so a traced run can show whether its
//! barriers resolve in the spin window.
//!
//! [`TeamStats`]: pyjama_metrics::TeamStats

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

use crate::COUNTERS;

/// Spin budget before a waiter parks, in `spin_loop` iterations. Sized for
/// the "small kernel region" regime: a few microseconds of spinning —
/// enough for every member of an empty or sub-µs region to arrive, far too
/// short to matter when a member is off running a millisecond kernel.
/// Collapses to zero on single-CPU machines (see [`crate::spin::budget`]).
const SPIN_LIMIT: u32 = 4096;

/// A reusable barrier for a fixed-size team.
pub struct Barrier {
    n: usize,
    /// Threads still to arrive in the current generation.
    remaining: AtomicUsize,
    /// Bumps every time the barrier opens. Waiters watch this word (not the
    /// count), which is what makes immediate reuse lap-safe.
    generation: AtomicUsize,
    /// Waiters currently parked on the condvar.
    sleepers: AtomicUsize,
    /// Participants currently inside `wait` (see [`Barrier::quiesce`]).
    active: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl Barrier {
    /// Creates a barrier for `n` participants.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Barrier {
            n,
            remaining: AtomicUsize::new(n),
            generation: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Blocks until all `n` participants have called `wait` in this
    /// generation. Returns `true` on exactly one participant per generation
    /// (the "leader", the last to arrive), `false` on the others.
    pub fn wait(&self) -> bool {
        self.active.fetch_add(1, Ordering::SeqCst);
        let gen = self.generation.load(Ordering::SeqCst);
        let leader = if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last arrival: reset the count for the next generation *before*
            // opening this one — a released waiter may re-enter immediately.
            self.remaining.store(self.n, Ordering::SeqCst);
            self.generation.store(gen.wrapping_add(1), Ordering::SeqCst);
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                // Sleepers publish themselves before re-checking the
                // generation under this lock; holding it across the notify
                // closes the publish/park window.
                let _g = self.lock.lock();
                self.cond.notify_all();
            }
            true
        } else {
            self.wait_slow(gen);
            false
        };
        // Last touch of barrier memory on every path: `quiesce` acquires on
        // this count before the owner may free the barrier.
        self.active.fetch_sub(1, Ordering::Release);
        leader
    }

    /// The non-leader path: bounded spin on the generation word, then park.
    fn wait_slow(&self, gen: usize) {
        let limit = crate::spin::budget(SPIN_LIMIT);
        let mut spins = 0u32;
        while spins < limit {
            if self.generation.load(Ordering::SeqCst) != gen {
                COUNTERS.record_barrier_spin();
                return;
            }
            std::hint::spin_loop();
            spins += 1;
        }
        let mut g = self.lock.lock();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        COUNTERS.record_barrier_park();
        while self.generation.load(Ordering::SeqCst) == gen {
            self.cond.wait(&mut g);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Spins (then yields) until no participant is inside [`wait`]. After
    /// `quiesce` returns, the owner may drop the barrier even though other
    /// participants are pooled threads that outlive it: their final access
    /// was the `Release` decrement this method acquires on.
    ///
    /// Only meaningful after the caller's own `wait` returned — every other
    /// participant has then arrived and is merely stepping out.
    ///
    /// [`wait`]: Barrier::wait
    pub fn quiesce(&self) {
        let limit = crate::spin::budget(SPIN_LIMIT);
        let mut spins = 0u32;
        while self.active.load(Ordering::Acquire) != 0 {
            if spins < limit {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            spins = spins.saturating_add(1);
        }
    }
}

impl std::fmt::Debug for Barrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Barrier").field("participants", &self.n).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = Barrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
        b.quiesce();
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = Barrier::new(0);
    }

    #[test]
    fn all_threads_rendezvous() {
        const N: usize = 8;
        let b = Arc::new(Barrier::new(N));
        let before = Arc::new(AtomicUsize::new(0));
        let after = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..N)
            .map(|_| {
                let b = Arc::clone(&b);
                let before = Arc::clone(&before);
                let after = Arc::clone(&after);
                std::thread::spawn(move || {
                    before.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                    // Everyone must have arrived before anyone proceeds.
                    assert_eq!(before.load(Ordering::SeqCst), N);
                    after.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(after.load(Ordering::SeqCst), N);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const N: usize = 4;
        const GENS: usize = 50;
        let b = Arc::new(Barrier::new(N));
        let leaders = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..N)
            .map(|_| {
                let b = Arc::clone(&b);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..GENS {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), GENS);
    }

    #[test]
    fn immediate_reuse_has_no_lost_wakeups() {
        // Stress rapid consecutive generations; a naive count-based barrier
        // deadlocks here when a fast thread laps a slow one.
        const N: usize = 3;
        const GENS: usize = 500;
        let b = Arc::new(Barrier::new(N));
        let hs: Vec<_> = (0..N)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..GENS {
                        b.wait();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    }

    #[test]
    fn parked_waiter_is_woken() {
        // Force the slow path: one thread waits far longer than the spin
        // budget before the opener arrives, so it must park and be notified.
        let b = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&b);
        let t = std::thread::spawn(move || b2.wait());
        std::thread::sleep(std::time::Duration::from_millis(50));
        b.wait();
        t.join().unwrap();
        b.quiesce();
    }

    #[test]
    fn quiesce_returns_after_all_exits() {
        const N: usize = 4;
        const GENS: usize = 200;
        let b = Arc::new(Barrier::new(N));
        let hs: Vec<_> = (1..N)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..GENS {
                        b.wait();
                    }
                })
            })
            .collect();
        for _ in 0..GENS {
            b.wait();
        }
        // After our last wait every other participant has arrived; quiesce
        // must observe all of them leaving.
        b.quiesce();
        assert_eq!(b.active.load(Ordering::SeqCst), 0);
        for h in hs {
            h.join().unwrap();
        }
    }
}
