//! A reusable sense-reversing barrier.
//!
//! `std::sync::Barrier` would work, but a team barrier is the hottest
//! synchronisation primitive in a fork-join runtime, and the
//! condvar-per-generation design below (a "sense-reversing" barrier in the
//! classic HPC formulation) is both reusable and cheap: one lock round-trip
//! per arrival, one broadcast per generation.

use parking_lot::{Condvar, Mutex};

struct State {
    /// Threads still to arrive in the current generation.
    remaining: usize,
    /// Flips every time the barrier opens; sleeping threads wait for it to
    /// change rather than re-checking counts (avoids the lost-wakeup race on
    /// immediate reuse).
    generation: u64,
}

/// A reusable barrier for a fixed-size team.
pub struct Barrier {
    n: usize,
    state: Mutex<State>,
    cond: Condvar,
}

impl Barrier {
    /// Creates a barrier for `n` participants.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Barrier {
            n,
            state: Mutex::new(State {
                remaining: n,
                generation: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Blocks until all `n` participants have called `wait` in this
    /// generation. Returns `true` on exactly one participant per generation
    /// (the "leader", the last to arrive), `false` on the others.
    pub fn wait(&self) -> bool {
        let mut g = self.state.lock();
        g.remaining -= 1;
        if g.remaining == 0 {
            // Last arrival: open the barrier and reset for reuse.
            g.remaining = self.n;
            g.generation = g.generation.wrapping_add(1);
            drop(g);
            self.cond.notify_all();
            true
        } else {
            let gen = g.generation;
            while g.generation == gen {
                self.cond.wait(&mut g);
            }
            false
        }
    }
}

impl std::fmt::Debug for Barrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Barrier").field("participants", &self.n).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = Barrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = Barrier::new(0);
    }

    #[test]
    fn all_threads_rendezvous() {
        const N: usize = 8;
        let b = Arc::new(Barrier::new(N));
        let before = Arc::new(AtomicUsize::new(0));
        let after = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..N)
            .map(|_| {
                let b = Arc::clone(&b);
                let before = Arc::clone(&before);
                let after = Arc::clone(&after);
                std::thread::spawn(move || {
                    before.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                    // Everyone must have arrived before anyone proceeds.
                    assert_eq!(before.load(Ordering::SeqCst), N);
                    after.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(after.load(Ordering::SeqCst), N);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const N: usize = 4;
        const GENS: usize = 50;
        let b = Arc::new(Barrier::new(N));
        let leaders = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..N)
            .map(|_| {
                let b = Arc::clone(&b);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..GENS {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), GENS);
    }

    #[test]
    fn immediate_reuse_has_no_lost_wakeups() {
        // Stress rapid consecutive generations; a naive count-based barrier
        // deadlocks here when a fast thread laps a slow one.
        const N: usize = 3;
        const GENS: usize = 500;
        let b = Arc::new(Barrier::new(N));
        let hs: Vec<_> = (0..N)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..GENS {
                        b.wait();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    }
}
