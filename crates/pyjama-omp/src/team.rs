//! Parallel regions, teams and worksharing.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;
use pyjama_trace::{arg as trace_arg, Stage, TraceId};

use crate::barrier::Barrier;
use crate::pool::{self, Job};
use crate::registry::ConstructRegistry;
use crate::schedule::{static_block, Schedule};
use crate::sync;
use crate::tasks::TaskQueue;
use crate::COUNTERS;

/// The shared state of one parallel region's thread team.
pub struct Team<'s> {
    num_threads: usize,
    barrier: Barrier,
    registry: ConstructRegistry,
    tasks: TaskQueue<'s>,
    member_panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<'s> Team<'s> {
    fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "a team needs at least one thread");
        Team {
            num_threads,
            barrier: Barrier::new(num_threads),
            registry: ConstructRegistry::new(),
            tasks: TaskQueue::new(),
            member_panic: Mutex::new(None),
        }
    }

    fn run_member<F>(&self, tid: usize, f: &F)
    where
        F: for<'t> Fn(&Ctx<'t, 's>) + Sync,
    {
        let ctx = Ctx {
            team: self,
            tid,
            construct_counter: Cell::new(0),
        };
        // A panicking member must still run to completion (and, on a pool
        // worker, signal done) or the leader's join waits forever; capture
        // and resurface at region end instead.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&ctx)));
        if let Err(p) = r {
            let mut g = self.member_panic.lock();
            if g.is_none() {
                *g = Some(p);
            }
        }
        // The end of a region is a task scheduling point: finish every
        // explicit task before this member reports completion. The join
        // itself is not a team-wide rendezvous — each pooled worker signals
        // its own slot and goes idle; the leader collects all signals.
        self.tasks.drain();
    }
}

/// A team member's view of its parallel region — the receiver for all
/// worksharing and synchronisation constructs.
pub struct Ctx<'t, 's> {
    team: &'t Team<'s>,
    tid: usize,
    /// Per-thread construct encounter counter; pairs construct instances
    /// across threads (SPMD matching).
    construct_counter: Cell<u64>,
}

impl<'t, 's> Ctx<'t, 's> {
    /// `omp_get_thread_num()`.
    pub fn thread_num(&self) -> usize {
        self.tid
    }

    /// `omp_get_num_threads()`.
    pub fn num_threads(&self) -> usize {
        self.team.num_threads
    }

    /// True on the master thread (thread 0) — in an event-driven program,
    /// the thread that encountered `omp parallel` (e.g. the EDT).
    pub fn is_master(&self) -> bool {
        self.tid == 0
    }

    fn next_key(&self) -> u64 {
        let k = self.construct_counter.get();
        self.construct_counter.set(k + 1);
        k
    }

    pub(crate) fn next_construct_key(&self) -> u64 {
        self.next_key()
    }

    pub(crate) fn construct_registry(&self) -> &ConstructRegistry {
        &self.team.registry
    }

    // ---------------------------------------------------------------- sync

    /// `omp barrier`: also a task scheduling point.
    pub fn barrier(&self) {
        self.team.tasks.drain();
        self.team.barrier.wait();
    }

    /// `omp critical(name)`: program-wide named mutual exclusion.
    pub fn critical<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        sync::critical(name, f)
    }

    /// `omp master`: runs `f` on thread 0 only; no implied barrier.
    pub fn master(&self, f: impl FnOnce()) {
        if self.is_master() {
            f();
        }
    }

    /// `omp single`: the first thread to arrive runs `f`; the construct
    /// ends with an implicit barrier. Returns whether *this* thread ran it.
    pub fn single(&self, f: impl FnOnce()) -> bool {
        let ran = self.single_nowait(f);
        self.barrier();
        ran
    }

    /// `omp single nowait`: as [`single`](Self::single) without the barrier.
    pub fn single_nowait(&self, f: impl FnOnce()) -> bool {
        let key = self.next_key();
        let claim = self.team.registry.get_or_create(key, || AtomicBool::new(false));
        let won = !claim.swap(true, Ordering::SeqCst);
        if won {
            f();
        }
        won
    }

    // ---------------------------------------------------------------- loops

    /// `omp for schedule(...)`: workshares `range` across the team, calling
    /// `body(i)` for each index. Implicit barrier at the end.
    pub fn for_range(&self, range: Range<usize>, schedule: Schedule, body: impl Fn(usize) + Sync) {
        self.for_range_nowait(range, schedule, body);
        self.barrier();
    }

    /// `omp for schedule(...) nowait`: as [`for_range`](Self::for_range)
    /// without the closing barrier.
    pub fn for_range_nowait(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        body: impl Fn(usize) + Sync,
    ) {
        schedule.validate().expect("invalid schedule");
        let n = range.end.saturating_sub(range.start);
        let base = range.start;
        let nt = self.team.num_threads;
        let key = self.next_key();

        match schedule {
            Schedule::Static { chunk: None } => {
                for i in static_block(n, nt, self.tid) {
                    body(base + i);
                }
            }
            Schedule::Static { chunk: Some(c) } => {
                // Cyclic distribution of fixed chunks.
                let mut start = self.tid * c;
                while start < n {
                    let end = (start + c).min(n);
                    for i in start..end {
                        body(base + i);
                    }
                    start += nt * c;
                }
            }
            Schedule::Dynamic { chunk } => {
                let next = self.team.registry.get_or_create(key, || AtomicUsize::new(0));
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        body(base + i);
                    }
                }
            }
            Schedule::Guided { min_chunk } => {
                // Lock-free cursor, matching the `Dynamic` path: the chunk
                // size depends on how much is left, so claiming is a CAS on
                // (cursor -> cursor + chunk) rather than a plain fetch_add.
                let next = self.team.registry.get_or_create(key, || AtomicUsize::new(0));
                let mut cur = next.load(Ordering::Relaxed);
                'grab: loop {
                    let (start, end) = loop {
                        if cur >= n {
                            break 'grab;
                        }
                        let remaining = n - cur;
                        let chunk = (remaining / nt).max(min_chunk).min(remaining);
                        match next.compare_exchange_weak(
                            cur,
                            cur + chunk,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break (cur, cur + chunk),
                            Err(seen) => cur = seen,
                        }
                    };
                    for i in start..end {
                        body(base + i);
                    }
                    cur = next.load(Ordering::Relaxed);
                }
            }
        }
    }

    /// `omp for reduction(...)`: workshares `range`, folding each thread's
    /// assigned iterations locally with `fold` and combining thread-local
    /// results with `combine`. All threads return the final value.
    pub fn for_reduce<T>(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        identity: T,
        fold: impl Fn(T, usize) -> T + Sync,
        combine: impl Fn(T, T) -> T + Sync,
    ) -> T
    where
        T: Clone + Send + Sync + 'static,
    {
        struct Slot<T> {
            locals: Mutex<Vec<T>>,
            result: Mutex<Option<T>>,
        }
        let key = self.next_key();
        let slot = self.team.registry.get_or_create(key, || Slot::<T> {
            locals: Mutex::new(Vec::new()),
            result: Mutex::new(None),
        });

        let mut acc = identity;
        // Fold assigned iterations locally (no barrier: we synchronise via
        // the two reduction barriers below).
        let acc_cell = Mutex::new(Some(acc));
        self.for_range_nowait(range, schedule, |i| {
            let mut g = acc_cell.lock();
            let cur = g.take().expect("accumulator present");
            *g = Some(fold(cur, i));
        });
        acc = acc_cell.into_inner().expect("accumulator present");

        slot.locals.lock().push(acc);
        if self.team.barrier.wait() {
            // Leader combines all thread-local partials.
            let mut locals = slot.locals.lock();
            let mut it = locals.drain(..);
            let first = it.next().expect("at least one local per thread");
            let total = it.fold(first, combine);
            *slot.result.lock() = Some(total);
        }
        self.team.barrier.wait();
        let out = slot
            .result
            .lock()
            .clone()
            .expect("reduction result published by leader");
        out
    }

    // ---------------------------------------------------------------- tasks

    /// `omp task`: queues `f` for asynchronous execution by the team. The
    /// task must complete before the region ends.
    pub fn task(&self, f: impl FnOnce() + Send + 's) {
        self.team.tasks.push(f);
    }

    /// `omp taskwait` (simplified to all outstanding tasks): the calling
    /// thread helps execute queued tasks until none remain.
    pub fn taskwait(&self) {
        self.team.tasks.drain();
    }

    /// Number of queued-or-running explicit tasks (diagnostics).
    pub fn tasks_outstanding(&self) -> usize {
        self.team.tasks.outstanding()
    }
}

/// `omp parallel num_threads(n)`: forks a team of `num_threads` (the caller
/// becomes thread 0 and participates), runs `f` on every member, and joins.
///
/// Workers are *leased* from a persistent process-wide pool rather than
/// spawned — the first region of a given size on a caller thread grows the
/// pool, every later one reuses parked threads, and back-to-back regions of
/// the same size skip even the lease (the hot-team fast path; see
/// [`crate::pool`]). Region entry therefore costs a handful of atomic
/// publishes instead of `num_threads - 1` `clone(2)` calls.
///
/// Panics from any member or task are resurfaced on the caller after the
/// whole team has joined.
///
/// # Safety argument (why the scoped `'env` borrow stays sound)
///
/// The pool threads are `'static`, but they only ever touch `f` and the
/// team through a [`Job`] published for this region, and `parallel` does
/// not return — does not even pop this stack frame — until the leader has
/// observed every worker's *done* signal. A worker publishes that signal
/// into its own `'static` slot strictly after its last touch of the job
/// (`Release`/`Acquire` pairing in [`pool::Worker::wait_done`]), so once
/// the join completes no pool thread holds any reference into this frame.
/// That is the same "all users joined before the borrow dies" guarantee
/// `std::thread::scope` provides, established by slot signals instead of
/// `join(2)`.
pub fn parallel<'env, F>(num_threads: usize, f: F)
where
    F: for<'t> Fn(&Ctx<'t, 'env>) + Sync + 'env,
{
    assert!(num_threads > 0, "a team needs at least one thread");
    COUNTERS.record_region_forked();
    let trace = TraceId::mint();
    pyjama_trace::emit(trace, Stage::TeamFork, num_threads as u32);

    let team = Team::new(num_threads);
    let mut hot = false;
    if num_threads == 1 {
        // A one-thread team is just the caller; no pool involvement.
        team.run_member(0, &f);
    } else {
        let member = |tid: usize| team.run_member(tid, &f);
        // Safety: `member` (and everything it borrows) outlives every run —
        // see the join-signal argument in the function docs.
        let job = unsafe { Job::erase(&member) };
        hot = pool::with_workers(num_threads - 1, |workers, hot| {
            for (i, w) in workers.iter().enumerate() {
                w.publish(job, i + 1);
            }
            team.run_member(0, &f);
            // The join: collect every worker's done signal. After this loop
            // no pool thread references `member` or the team.
            for w in workers {
                w.wait_done();
            }
            hot
        });
    }

    pyjama_trace::emit(
        trace,
        Stage::TeamJoin,
        if hot { trace_arg::JOIN_HOT } else { trace_arg::JOIN_COLD },
    );
    if let Some(p) = team.tasks.take_panic() {
        std::panic::resume_unwind(p);
    }
    let member_panic = team.member_panic.lock().take();
    if let Some(p) = member_panic {
        std::panic::resume_unwind(p);
    }
}

/// `omp parallel for`: the ubiquitous combined construct.
pub fn parallel_for<F>(num_threads: usize, range: Range<usize>, schedule: Schedule, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel(num_threads, |ctx| {
        ctx.for_range_nowait(range.clone(), schedule, &body);
    });
}

/// `omp parallel for reduction(...)`: combined parallel loop + reduction,
/// returning the reduced value to the caller.
pub fn parallel_reduce<T, F, C>(
    num_threads: usize,
    range: Range<usize>,
    schedule: Schedule,
    identity: T,
    fold: F,
    combine: C,
) -> T
where
    T: Clone + Send + Sync + 'static,
    F: Fn(T, usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    let out: Mutex<Option<T>> = Mutex::new(None);
    parallel(num_threads, |ctx| {
        let v = ctx.for_reduce(range.clone(), schedule, identity.clone(), &fold, &combine);
        if ctx.is_master() {
            *out.lock() = Some(v);
        }
    });
    out.into_inner().expect("master published the reduction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn team_runs_all_members() {
        let seen = Mutex::new(HashSet::new());
        parallel(4, |ctx| {
            seen.lock().insert(ctx.thread_num());
            assert_eq!(ctx.num_threads(), 4);
        });
        assert_eq!(*seen.lock(), (0..4).collect::<HashSet<_>>());
    }

    #[test]
    fn master_participates_as_thread_zero() {
        let caller = std::thread::current().id();
        let master_is_caller = AtomicBool::new(false);
        parallel(3, |ctx| {
            if ctx.is_master() {
                master_is_caller
                    .store(std::thread::current().id() == caller, Ordering::SeqCst);
            }
        });
        assert!(
            master_is_caller.load(Ordering::SeqCst),
            "the encountering thread must be the team's master (fork-join)"
        );
    }

    #[test]
    fn single_thread_team_works() {
        let n = AtomicU64::new(0);
        parallel(1, |ctx| {
            ctx.barrier();
            ctx.single(|| {
                n.fetch_add(1, Ordering::SeqCst);
            });
            ctx.for_range(0..10, Schedule::default_static(), |_| {
                n.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(n.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn static_loop_covers_every_iteration_once() {
        let hits = (0..1000).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        parallel(4, |ctx| {
            ctx.for_range(0..1000, Schedule::default_static(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn static_chunked_loop_covers_every_iteration_once() {
        let hits = (0..997).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        parallel(3, |ctx| {
            ctx.for_range(0..997, Schedule::Static { chunk: Some(16) }, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dynamic_loop_covers_every_iteration_once() {
        let hits = (0..1003).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        parallel(4, |ctx| {
            ctx.for_range(0..1003, Schedule::Dynamic { chunk: 7 }, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn guided_loop_covers_every_iteration_once() {
        let hits = (0..2048).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        parallel(4, |ctx| {
            ctx.for_range(0..2048, Schedule::Guided { min_chunk: 4 }, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nonzero_range_start_respected() {
        let sum = AtomicU64::new(0);
        parallel(3, |ctx| {
            ctx.for_range(100..200, Schedule::Dynamic { chunk: 9 }, |i| {
                assert!((100..200).contains(&i));
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), (100..200u64).sum());
    }

    #[test]
    fn empty_range_is_fine() {
        parallel(4, |ctx| {
            ctx.for_range(10..10, Schedule::default_static(), |_| {
                panic!("no iterations should run");
            });
            ctx.for_range(10..10, Schedule::Dynamic { chunk: 1 }, |_| {
                panic!("no iterations should run");
            });
        });
    }

    #[test]
    fn consecutive_loops_use_fresh_state() {
        // Two dynamic loops back to back: the second must restart from 0.
        let first = (0..50).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        let second = (0..50).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        parallel(4, |ctx| {
            ctx.for_range(0..50, Schedule::Dynamic { chunk: 3 }, |i| {
                first[i].fetch_add(1, Ordering::Relaxed);
            });
            ctx.for_range(0..50, Schedule::Dynamic { chunk: 3 }, |i| {
                second[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(first.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(second.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_runs_exactly_once() {
        let n = AtomicU64::new(0);
        parallel(8, |ctx| {
            ctx.single(|| {
                n.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn consecutive_singles_each_run_once() {
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        parallel(4, |ctx| {
            ctx.single(|| {
                a.fetch_add(1, Ordering::SeqCst);
            });
            ctx.single(|| {
                b.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(a.load(Ordering::SeqCst), 1);
        assert_eq!(b.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn master_only_thread_zero() {
        let who = Mutex::new(Vec::new());
        parallel(4, |ctx| {
            ctx.master(|| who.lock().push(ctx.thread_num()));
        });
        assert_eq!(*who.lock(), vec![0]);
    }

    #[test]
    fn barrier_synchronises_phases() {
        let phase1 = AtomicU64::new(0);
        parallel(4, |ctx| {
            phase1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            assert_eq!(phase1.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn reduction_sums_correctly() {
        let total = parallel_reduce(
            4,
            0..10_000,
            Schedule::default_static(),
            0u64,
            |acc, i| acc + i as u64,
            |a, b| a + b,
        );
        assert_eq!(total, (0..10_000u64).sum());
    }

    #[test]
    fn reduction_with_dynamic_schedule() {
        let total = parallel_reduce(
            3,
            0..5_000,
            Schedule::Dynamic { chunk: 13 },
            0u64,
            |acc, i| acc + i as u64,
            |a, b| a + b,
        );
        assert_eq!(total, (0..5_000u64).sum());
    }

    #[test]
    fn in_region_reduce_returns_same_value_to_all_threads() {
        let values = Mutex::new(Vec::new());
        parallel(4, |ctx| {
            let v = ctx.for_reduce(
                0..100,
                Schedule::default_static(),
                0u64,
                |acc, i| acc + i as u64,
                |a, b| a + b,
            );
            values.lock().push(v);
        });
        let vs = values.into_inner();
        assert_eq!(vs.len(), 4);
        assert!(vs.iter().all(|&v| v == 4950));
    }

    #[test]
    fn two_reductions_in_one_region() {
        let results = Mutex::new((0u64, 0u64));
        parallel(3, |ctx| {
            let s = ctx.for_reduce(0..100, Schedule::default_static(), 0u64, |a, i| a + i as u64, |a, b| a + b);
            let m = ctx.for_reduce(1..11, Schedule::default_static(), 1u64, |a, i| a * i as u64, |a, b| a * b);
            if ctx.is_master() {
                *results.lock() = (s, m);
            }
        });
        let (s, m) = results.into_inner();
        assert_eq!(s, 4950);
        assert_eq!(m, 3_628_800); // 10!
    }

    #[test]
    fn tasks_run_before_region_ends() {
        let n = AtomicU64::new(0);
        parallel(4, |ctx| {
            if ctx.is_master() {
                for _ in 0..20 {
                    ctx.task(|| {
                        n.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn taskwait_completes_tasks() {
        let n = AtomicU64::new(0);
        parallel(4, |ctx| {
            ctx.single(|| {
                for _ in 0..10 {
                    ctx.task(|| {
                        n.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            ctx.taskwait();
            assert_eq!(n.load(Ordering::SeqCst), 10);
        });
    }

    #[test]
    fn tasks_capture_borrowed_environment() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicU64::new(0);
        parallel(2, |ctx| {
            ctx.single_nowait(|| {
                for chunk in data.chunks(2) {
                    let sum = &sum;
                    ctx.task(move || {
                        sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::SeqCst);
                    });
                }
            });
        });
        assert_eq!(sum.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn member_panic_propagates_without_deadlock() {
        let r = std::panic::catch_unwind(|| {
            parallel(4, |ctx| {
                if ctx.thread_num() == 2 {
                    panic!("member failed");
                }
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn task_panic_propagates_after_join() {
        let r = std::panic::catch_unwind(|| {
            parallel(2, |ctx| {
                ctx.single_nowait(|| ctx.task(|| panic!("task failed")));
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn parallel_for_convenience() {
        let hits = (0..100).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        parallel_for(4, 0..100, Schedule::Dynamic { chunk: 5 }, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        parallel(0, |_| {});
    }

    #[test]
    fn critical_from_ctx() {
        let v = Mutex::new(0u64);
        parallel(8, |ctx| {
            for _ in 0..100 {
                ctx.critical("ctx-crit", || {
                    let cur = *v.lock();
                    *v.lock() = cur + 1;
                });
            }
        });
        assert_eq!(*v.lock(), 800);
    }

    #[test]
    fn nested_parallel_regions() {
        // Inner regions form their own teams (nested parallelism).
        let count = AtomicU64::new(0);
        parallel(2, |_outer| {
            parallel(2, |_inner| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }
}
