//! Explicit tasks, confined to their parallel region.
//!
//! OpenMP `task` blocks execute asynchronously on the team; an orphaned
//! task (outside any region) runs sequentially — the very limitation (§I)
//! that motivates the paper's virtual targets. This queue lives inside a
//! [`crate::Team`]; tasks are run by whichever team thread reaches a
//! scheduling point (`taskwait`, `barrier`, region end) first.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

type Task<'s> = Box<dyn FnOnce() + Send + 's>;

/// Spin rounds (exponentially growing) before a waiting drainer parks.
const DRAIN_SPIN_ROUNDS: u32 = 7;

/// Safety-net bound on one parked sleep. Wakes normally arrive through
/// [`TaskQueue::push`] / task completion notifies; the timeout only turns a
/// hypothetical missed wake into a bounded re-check instead of a hang.
const DRAIN_PARK_TIMEOUT: Duration = Duration::from_millis(5);

/// A region-scoped task queue.
pub struct TaskQueue<'s> {
    queue: Mutex<VecDeque<Task<'s>>>,
    /// Tasks queued or currently running.
    outstanding: AtomicUsize,
    /// First panic payload from any task, re-raised at region end.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Drainers parked waiting for a mid-flight task elsewhere (see
    /// [`TaskQueue::drain`]).
    waiters: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cond: Condvar,
}

impl<'s> TaskQueue<'s> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        TaskQueue {
            queue: Mutex::new(VecDeque::new()),
            outstanding: AtomicUsize::new(0),
            panic: Mutex::new(None),
            waiters: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cond: Condvar::new(),
        }
    }

    /// Enqueues a task.
    pub fn push(&self, f: impl FnOnce() + Send + 's) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.queue.lock().push_back(Box::new(f));
        // A parked drainer can help run the new task.
        self.notify_waiters();
    }

    /// Pops and runs one task on the calling thread. Returns `false` when
    /// the queue was empty. Task panics are captured (first wins) so the
    /// team can finish its barriers before the panic resurfaces.
    pub fn run_one(&self) -> bool {
        let task = self.queue.lock().pop_front();
        match task {
            Some(t) => {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(t));
                if let Err(p) = r {
                    let mut g = self.panic.lock();
                    if g.is_none() {
                        *g = Some(p);
                    }
                }
                if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
                    // Last task done: release drainers waiting for zero.
                    self.notify_waiters();
                }
                true
            }
            None => false,
        }
    }

    /// Runs queued tasks until none are queued *and* none are running
    /// anywhere (the `taskwait` scheduling point, simplified to "all tasks"
    /// rather than "child tasks").
    ///
    /// When the queue is empty but a task is still mid-flight on another
    /// member, the wait is a bounded spin with exponential backoff followed
    /// by a park — a long-running task on one member no longer burns a core
    /// on every other member sitting at the region-end scheduling point.
    pub fn drain(&self) {
        loop {
            while self.run_one() {}
            if self.outstanding.load(Ordering::SeqCst) == 0 {
                return;
            }
            self.wait_for_task_activity();
        }
    }

    /// Blocks until the mid-flight picture may have changed: a task
    /// completed (possibly reaching zero outstanding) or a new task was
    /// pushed for us to help with.
    fn wait_for_task_activity(&self) {
        // Spin phase: 1, 2, 4, … spin-loop iterations between re-checks.
        // Zero rounds on a single CPU (see `crate::spin::budget`).
        let rounds = crate::spin::budget(DRAIN_SPIN_ROUNDS);
        for shift in 0..rounds {
            for _ in 0..(1u32 << shift) {
                std::hint::spin_loop();
            }
            if self.outstanding.load(Ordering::SeqCst) == 0 || !self.queue.lock().is_empty() {
                return;
            }
        }
        // Park phase. The waiter count is published before the re-check and
        // notifiers take `idle_lock` across their notify, so a completion
        // or push between our re-check and the wait cannot be lost.
        let mut g = self.idle_lock.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        if self.outstanding.load(Ordering::SeqCst) != 0 && self.queue.lock().is_empty() {
            let _ = self
                .idle_cond
                .wait_until(&mut g, Instant::now() + DRAIN_PARK_TIMEOUT);
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wakes parked drainers if there are any (cheap atomic check first).
    fn notify_waiters(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _g = self.idle_lock.lock();
            self.idle_cond.notify_all();
        }
    }

    /// Tasks queued or running.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::SeqCst)
    }

    /// Takes the first captured panic payload, if any.
    pub fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().take()
    }
}

impl Default for TaskQueue<'_> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn push_and_run_one() {
        let n = AtomicU64::new(0);
        let q = TaskQueue::new();
        q.push(|| {
            n.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(q.outstanding(), 1);
        assert!(q.run_one());
        assert!(!q.run_one());
        assert_eq!(q.outstanding(), 0);
        drop(q);
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let q = Arc::new(TaskQueue::<'static>::new());
        let n = Arc::new(AtomicU64::new(0));
        let q2 = Arc::clone(&q);
        let n2 = Arc::clone(&n);
        q.push(move || {
            n2.fetch_add(1, Ordering::SeqCst);
            let n3 = Arc::clone(&n2);
            q2.push(move || {
                n3.fetch_add(10, Ordering::SeqCst);
            });
        });
        q.drain();
        assert_eq!(n.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn drain_waits_for_tasks_running_elsewhere() {
        let q = Arc::new(TaskQueue::<'static>::new());
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        q.push(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            n2.fetch_add(1, Ordering::SeqCst);
        });
        // Another thread steals and runs the task...
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            q2.run_one();
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        // ... while drain() on this thread must still wait for it.
        q.drain();
        assert_eq!(n.load(Ordering::SeqCst), 1);
        h.join().unwrap();
    }

    #[test]
    fn panics_are_captured_not_propagated() {
        let q = TaskQueue::new();
        q.push(|| panic!("task a"));
        q.push(|| panic!("task b"));
        q.drain();
        assert!(q.take_panic().is_some(), "first panic retained");
        assert!(q.take_panic().is_none(), "payload taken once");
    }

    #[test]
    fn fifo_order_on_single_thread() {
        let log = Mutex::new(Vec::new());
        let q = TaskQueue::new();
        let lr = &log;
        for i in 0..5 {
            q.push(move || lr.lock().push(i));
        }
        q.drain();
        drop(q);
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }
}
