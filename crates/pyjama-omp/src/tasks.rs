//! Explicit tasks, confined to their parallel region.
//!
//! OpenMP `task` blocks execute asynchronously on the team; an orphaned
//! task (outside any region) runs sequentially — the very limitation (§I)
//! that motivates the paper's virtual targets. This queue lives inside a
//! [`crate::Team`]; tasks are run by whichever team thread reaches a
//! scheduling point (`taskwait`, `barrier`, region end) first.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

type Task<'s> = Box<dyn FnOnce() + Send + 's>;

/// A region-scoped task queue.
pub struct TaskQueue<'s> {
    queue: Mutex<VecDeque<Task<'s>>>,
    /// Tasks queued or currently running.
    outstanding: AtomicUsize,
    /// First panic payload from any task, re-raised at region end.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<'s> TaskQueue<'s> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        TaskQueue {
            queue: Mutex::new(VecDeque::new()),
            outstanding: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }
    }

    /// Enqueues a task.
    pub fn push(&self, f: impl FnOnce() + Send + 's) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.queue.lock().push_back(Box::new(f));
    }

    /// Pops and runs one task on the calling thread. Returns `false` when
    /// the queue was empty. Task panics are captured (first wins) so the
    /// team can finish its barriers before the panic resurfaces.
    pub fn run_one(&self) -> bool {
        let task = self.queue.lock().pop_front();
        match task {
            Some(t) => {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(t));
                if let Err(p) = r {
                    let mut g = self.panic.lock();
                    if g.is_none() {
                        *g = Some(p);
                    }
                }
                self.outstanding.fetch_sub(1, Ordering::SeqCst);
                true
            }
            None => false,
        }
    }

    /// Runs queued tasks until none are queued *and* none are running
    /// anywhere (the `taskwait` scheduling point, simplified to "all tasks"
    /// rather than "child tasks").
    pub fn drain(&self) {
        loop {
            while self.run_one() {}
            if self.outstanding.load(Ordering::SeqCst) == 0 {
                return;
            }
            // A task is mid-flight on another thread; yield until it
            // finishes or enqueues more work for us.
            std::thread::yield_now();
        }
    }

    /// Tasks queued or running.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::SeqCst)
    }

    /// Takes the first captured panic payload, if any.
    pub fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().take()
    }
}

impl Default for TaskQueue<'_> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn push_and_run_one() {
        let n = AtomicU64::new(0);
        let q = TaskQueue::new();
        q.push(|| {
            n.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(q.outstanding(), 1);
        assert!(q.run_one());
        assert!(!q.run_one());
        assert_eq!(q.outstanding(), 0);
        drop(q);
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let q = Arc::new(TaskQueue::<'static>::new());
        let n = Arc::new(AtomicU64::new(0));
        let q2 = Arc::clone(&q);
        let n2 = Arc::clone(&n);
        q.push(move || {
            n2.fetch_add(1, Ordering::SeqCst);
            let n3 = Arc::clone(&n2);
            q2.push(move || {
                n3.fetch_add(10, Ordering::SeqCst);
            });
        });
        q.drain();
        assert_eq!(n.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn drain_waits_for_tasks_running_elsewhere() {
        let q = Arc::new(TaskQueue::<'static>::new());
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        q.push(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            n2.fetch_add(1, Ordering::SeqCst);
        });
        // Another thread steals and runs the task...
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            q2.run_one();
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        // ... while drain() on this thread must still wait for it.
        q.drain();
        assert_eq!(n.load(Ordering::SeqCst), 1);
        h.join().unwrap();
    }

    #[test]
    fn panics_are_captured_not_propagated() {
        let q = TaskQueue::new();
        q.push(|| panic!("task a"));
        q.push(|| panic!("task b"));
        q.drain();
        assert!(q.take_panic().is_some(), "first panic retained");
        assert!(q.take_panic().is_none(), "payload taken once");
    }

    #[test]
    fn fifo_order_on_single_thread() {
        let log = Mutex::new(Vec::new());
        let q = TaskQueue::new();
        let lr = &log;
        for i in 0..5 {
            q.push(move || lr.lock().push(i));
        }
        q.drain();
        drop(q);
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }
}
