//! A classic fork-join OpenMP substrate.
//!
//! The paper's model is *complementary* to traditional OpenMP: virtual
//! targets handle asynchronous offloading while `omp parallel` / `omp for`
//! keep accelerating compute kernels. The evaluation needs both — the
//! "synchronous parallel" baseline runs kernels with the EDT as master
//! thread of a fork-join team, and the "asynchronous parallel" mode nests a
//! parallel region inside an offloaded target block (§V).
//!
//! This crate implements the fork-join subset the paper relies on:
//!
//! * [`parallel`] — a parallel region; the encountering thread becomes the
//!   team's master (thread 0) and **participates**, which is precisely the
//!   property that makes the fork-join model hostile to event-dispatch
//!   threads (§I: "the traditional fork-join model forces the master thread
//!   … to participate in the work-sharing region").
//! * Worksharing loops with `static` / `dynamic` / `guided` schedules
//!   ([`Ctx::for_range`], [`Schedule`]).
//! * Reductions ([`Ctx::for_reduce`], [`parallel_reduce`]).
//! * Synchronisation: [`Ctx::barrier`], [`Ctx::critical`], [`Ctx::single`],
//!   [`Ctx::master`].
//! * Explicit tasks confined to the region ([`Ctx::task`],
//!   [`Ctx::taskwait`]) — "the lifetime of a task is confined inside a
//!   parallel region" (§VI-B).
//!
//! # Persistent hot teams
//!
//! Forking a region does **not** spawn threads. A process-wide pool of
//! parked workers ([`pool`]) is leased per region, and each caller thread
//! keeps its last team composition cached ("hot team", libgomp-style), so
//! back-to-back regions of the same size re-dispatch onto the same parked
//! threads with two atomic handoffs and no lock on the global pool. Fork
//! dispatch, region join, and explicit [`Ctx::barrier`] (a sense-reversing
//! [`Barrier`]) all use the same spin-then-park waiting discipline, with
//! spin budgets that collapse to zero on single-CPU machines.
//! [`team_stats`] exposes counters (regions forked, threads spawned vs
//! reused, barrier spins vs parks) that satisfy the conservation law
//! `threads_spawned + threads_reused == member_activations`.
//!
//! # SPMD discipline
//!
//! As in OpenMP, every thread of a team must encounter the same worksharing
//! and synchronisation constructs in the same order; construct instances
//! are matched across threads by encounter order.
//!
//! ```
//! use pyjama_omp::{parallel, Schedule};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let sum = AtomicU64::new(0);
//! parallel(4, |ctx| {
//!     ctx.for_range(0..1000usize, Schedule::Static { chunk: None }, |i| {
//!         sum.fetch_add(i as u64, Ordering::Relaxed);
//!     });
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 499_500);
//! ```

pub mod barrier;
pub mod pool;
pub mod registry;
pub mod schedule;
pub mod sections;
pub mod spin;
pub mod sync;
pub mod tasks;
pub mod team;

pub use barrier::Barrier;
pub use pyjama_metrics::TeamStats;
pub use schedule::Schedule;
pub use sections::parallel_sections;
pub use team::{parallel, parallel_for, parallel_reduce, Ctx, Team};

/// The crate-wide team/barrier counter block (see [`team_stats`]).
pub(crate) static COUNTERS: pyjama_metrics::TeamCounters = pyjama_metrics::TeamCounters::new();

/// Snapshot of the process-wide fork-join counters.
///
/// Counters are cumulative; diff two snapshots with [`TeamStats::since`] to
/// scope them to a phase. The invariant `threads_spawned + threads_reused
/// == member_activations` holds whenever no region is mid-fork.
pub fn team_stats() -> TeamStats {
    COUNTERS.snapshot()
}

/// Resets the process-wide fork-join counters to zero.
///
/// Prefer diffing [`team_stats`] snapshots in concurrent code — a reset
/// races with regions forked by other threads.
pub fn reset_team_stats() {
    COUNTERS.reset();
}

/// The default team size: the machine's available parallelism.
///
/// Mirrors the `nthreads-var` ICV with its implementation-defined default.
pub fn default_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_num_threads_is_positive() {
        assert!(super::default_num_threads() >= 1);
    }
}
