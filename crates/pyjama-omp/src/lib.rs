//! A classic fork-join OpenMP substrate.
//!
//! The paper's model is *complementary* to traditional OpenMP: virtual
//! targets handle asynchronous offloading while `omp parallel` / `omp for`
//! keep accelerating compute kernels. The evaluation needs both — the
//! "synchronous parallel" baseline runs kernels with the EDT as master
//! thread of a fork-join team, and the "asynchronous parallel" mode nests a
//! parallel region inside an offloaded target block (§V).
//!
//! This crate implements the fork-join subset the paper relies on:
//!
//! * [`parallel`] — a parallel region; the encountering thread becomes the
//!   team's master (thread 0) and **participates**, which is precisely the
//!   property that makes the fork-join model hostile to event-dispatch
//!   threads (§I: "the traditional fork-join model forces the master thread
//!   … to participate in the work-sharing region").
//! * Worksharing loops with `static` / `dynamic` / `guided` schedules
//!   ([`Ctx::for_range`], [`Schedule`]).
//! * Reductions ([`Ctx::for_reduce`], [`parallel_reduce`]).
//! * Synchronisation: [`Ctx::barrier`], [`Ctx::critical`], [`Ctx::single`],
//!   [`Ctx::master`].
//! * Explicit tasks confined to the region ([`Ctx::task`],
//!   [`Ctx::taskwait`]) — "the lifetime of a task is confined inside a
//!   parallel region" (§VI-B).
//!
//! # SPMD discipline
//!
//! As in OpenMP, every thread of a team must encounter the same worksharing
//! and synchronisation constructs in the same order; construct instances
//! are matched across threads by encounter order.
//!
//! ```
//! use pyjama_omp::{parallel, Schedule};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let sum = AtomicU64::new(0);
//! parallel(4, |ctx| {
//!     ctx.for_range(0..1000usize, Schedule::Static { chunk: None }, |i| {
//!         sum.fetch_add(i as u64, Ordering::Relaxed);
//!     });
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 499_500);
//! ```

pub mod barrier;
pub mod registry;
pub mod schedule;
pub mod sections;
pub mod sync;
pub mod tasks;
pub mod team;

pub use barrier::Barrier;
pub use schedule::Schedule;
pub use sections::parallel_sections;
pub use team::{parallel, parallel_for, parallel_reduce, Ctx, Team};

/// The default team size: the machine's available parallelism.
///
/// Mirrors the `nthreads-var` ICV with its implementation-defined default.
pub fn default_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_num_threads_is_positive() {
        assert!(super::default_num_threads() >= 1);
    }
}
