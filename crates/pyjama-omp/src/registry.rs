//! Matching worksharing-construct instances across team threads.
//!
//! OpenMP's SPMD model means every thread executes the same sequence of
//! constructs; a `for` loop's shared counter, a `single`'s claim flag or a
//! reduction's accumulator must be *one object per construct instance*,
//! shared by all threads. Threads match instances by encounter order: the
//! k-th construct a thread meets pairs with the k-th of every other thread.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Lazily created, type-erased per-construct shared state.
pub struct ConstructRegistry {
    slots: Mutex<HashMap<u64, Arc<dyn Any + Send + Sync>>>,
}

impl ConstructRegistry {
    /// Creates an empty registry (one per team).
    pub fn new() -> Self {
        ConstructRegistry {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the shared state for construct instance `key`, creating it
    /// with `make` if this thread is the first to arrive.
    ///
    /// # Panics
    /// Panics if another thread registered a different type under the same
    /// key — that means the team diverged from SPMD (threads executed
    /// different construct sequences), which is a program bug.
    pub fn get_or_create<T: Send + Sync + 'static>(
        &self,
        key: u64,
        make: impl FnOnce() -> T,
    ) -> Arc<T> {
        let mut g = self.slots.lock();
        let slot = g
            .entry(key)
            .or_insert_with(|| Arc::new(make()) as Arc<dyn Any + Send + Sync>);
        Arc::clone(slot)
            .downcast::<T>()
            .expect("construct type mismatch: team threads diverged (non-SPMD execution)")
    }

    /// Drops the state for construct `key` (called by the last thread to
    /// leave, keeping long regions from accumulating dead slots).
    pub fn release(&self, key: u64) {
        self.slots.lock().remove(&key);
    }

    /// Number of live construct slots (diagnostics).
    pub fn live(&self) -> usize {
        self.slots.lock().len()
    }
}

impl Default for ConstructRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn same_key_returns_same_instance() {
        let reg = ConstructRegistry::new();
        let a = reg.get_or_create(1, || AtomicUsize::new(0));
        let b = reg.get_or_create(1, || AtomicUsize::new(99));
        a.store(7, Ordering::SeqCst);
        assert_eq!(b.load(Ordering::SeqCst), 7, "must be the same object");
    }

    #[test]
    fn different_keys_are_independent() {
        let reg = ConstructRegistry::new();
        let a = reg.get_or_create(1, || AtomicUsize::new(1));
        let b = reg.get_or_create(2, || AtomicUsize::new(2));
        assert_eq!(a.load(Ordering::SeqCst), 1);
        assert_eq!(b.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn release_frees_slot() {
        let reg = ConstructRegistry::new();
        reg.get_or_create(1, || 0usize);
        assert_eq!(reg.live(), 1);
        reg.release(1);
        assert_eq!(reg.live(), 0);
    }

    #[test]
    #[should_panic(expected = "construct type mismatch")]
    fn type_mismatch_panics() {
        let reg = ConstructRegistry::new();
        let _ = reg.get_or_create(1, || 0usize);
        let _ = reg.get_or_create(1, || 0u32);
    }

    #[test]
    fn concurrent_first_arrival_creates_once() {
        let reg = Arc::new(ConstructRegistry::new());
        let created = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let created = Arc::clone(&created);
                std::thread::spawn(move || {
                    let slot = reg.get_or_create(42, || {
                        created.fetch_add(1, Ordering::SeqCst);
                        AtomicUsize::new(0)
                    });
                    slot.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(created.load(Ordering::SeqCst), 1);
        let slot = reg.get_or_create(42, || AtomicUsize::new(0));
        assert_eq!(slot.load(Ordering::SeqCst), 8);
    }
}
