//! The `sections` worksharing construct.
//!
//! `omp sections` distributes a fixed set of independent code blocks
//! across the team — the task-parallel counterpart of `omp for`. Each
//! section executes exactly once, on whichever thread claims it first.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::team::Ctx;

impl Ctx<'_, '_> {
    /// `omp sections`: each closure in `sections` runs exactly once,
    /// dynamically claimed by team threads. Ends with an implicit barrier.
    ///
    /// Like all worksharing constructs, every team thread must encounter
    /// the same `sections` call (SPMD matching by encounter order).
    pub fn sections(&self, sections: &[&(dyn Fn() + Sync)]) {
        self.sections_nowait(sections);
        self.barrier();
    }

    /// `omp sections nowait`: as [`sections`](Self::sections) without the
    /// closing barrier.
    pub fn sections_nowait(&self, sections: &[&(dyn Fn() + Sync)]) {
        let key = self.next_construct_key();
        let next = self
            .construct_registry()
            .get_or_create(key, || AtomicUsize::new(0));
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= sections.len() {
                break;
            }
            sections[i]();
        }
    }
}

/// `omp parallel sections`: the combined construct.
pub fn parallel_sections(num_threads: usize, sections: &[&(dyn Fn() + Sync)]) {
    crate::team::parallel(num_threads, |ctx| {
        ctx.sections_nowait(sections);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::parallel;
    use parking_lot::Mutex;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_section_runs_exactly_once() {
        let counts: Vec<AtomicU64> = (0..5).map(|_| AtomicU64::new(0)).collect();
        let fns: Vec<Box<dyn Fn() + Sync>> = (0..5)
            .map(|i| {
                let counts = &counts;
                Box::new(move || {
                    counts[i].fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn Fn() + Sync>
            })
            .collect();
        let refs: Vec<&(dyn Fn() + Sync)> = fns.iter().map(|b| b.as_ref()).collect();
        parallel(3, |ctx| {
            ctx.sections(&refs);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn sections_distribute_across_threads() {
        // With long-enough sections and as many sections as threads, more
        // than one thread participates.
        let who = Mutex::new(HashSet::new());
        let s0 = || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            who.lock().insert(std::thread::current().id());
        };
        let s1 = || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            who.lock().insert(std::thread::current().id());
        };
        let s2 = || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            who.lock().insert(std::thread::current().id());
        };
        parallel(3, |ctx| {
            ctx.sections(&[&s0, &s1, &s2]);
        });
        assert!(who.lock().len() >= 2, "sections should spread across threads");
    }

    #[test]
    fn more_sections_than_threads() {
        let n = AtomicU64::new(0);
        let add = || {
            n.fetch_add(1, Ordering::SeqCst);
        };
        parallel(2, |ctx| {
            ctx.sections(&[&add, &add, &add, &add, &add, &add, &add]);
        });
        assert_eq!(n.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn consecutive_sections_constructs_are_independent() {
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let fa = || {
            a.fetch_add(1, Ordering::SeqCst);
        };
        let fb = || {
            b.fetch_add(1, Ordering::SeqCst);
        };
        parallel(4, |ctx| {
            ctx.sections(&[&fa, &fa]);
            ctx.sections(&[&fb, &fb, &fb]);
        });
        assert_eq!(a.load(Ordering::SeqCst), 2);
        assert_eq!(b.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn parallel_sections_combined() {
        let log = Mutex::new(Vec::new());
        let s0 = || log.lock().push("download");
        let s1 = || log.lock().push("render");
        parallel_sections(2, &[&s0, &s1]);
        let mut got = log.into_inner();
        got.sort();
        assert_eq!(got, vec!["download", "render"]);
    }

    #[test]
    fn empty_sections_is_fine() {
        parallel(2, |ctx| {
            ctx.sections(&[]);
        });
    }
}
