//! Worksharing loop schedules (`schedule(static|dynamic|guided[, chunk])`).

/// How a worksharing loop's iteration space is divided among team threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Iterations are divided up front.
    ///
    /// With `chunk: None`, each thread gets one contiguous block of roughly
    /// `n / num_threads` iterations. With `chunk: Some(c)`, blocks of `c`
    /// are dealt round-robin (cyclic), which balances loops whose cost
    /// varies smoothly with the index.
    Static {
        /// Optional chunk size for cyclic distribution.
        chunk: Option<usize>,
    },
    /// Threads grab chunks of `chunk` iterations from a shared counter as
    /// they become free. Best for irregular iteration costs; highest
    /// scheduling overhead.
    Dynamic {
        /// Chunk size (≥ 1).
        chunk: usize,
    },
    /// Like `Dynamic`, but chunk sizes start large (`remaining / threads`)
    /// and shrink exponentially, never below `min_chunk`. A compromise
    /// between balance and overhead.
    Guided {
        /// Lower bound on the shrinking chunk size (≥ 1).
        min_chunk: usize,
    },
}

impl Schedule {
    /// The default OpenMP schedule: block-static.
    pub fn default_static() -> Self {
        Schedule::Static { chunk: None }
    }

    /// Validates schedule parameters (chunk sizes must be ≥ 1).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Schedule::Static { chunk: Some(0) } => {
                Err("static chunk size must be >= 1".to_string())
            }
            Schedule::Dynamic { chunk: 0 } => Err("dynamic chunk size must be >= 1".to_string()),
            Schedule::Guided { min_chunk: 0 } => {
                Err("guided min_chunk must be >= 1".to_string())
            }
            _ => Ok(()),
        }
    }
}

/// The contiguous block of iterations thread `tid` owns under a block-static
/// schedule of `n` iterations across `num_threads` threads.
///
/// Remainder iterations go one-each to the lowest-numbered threads, so block
/// sizes differ by at most one.
pub fn static_block(n: usize, num_threads: usize, tid: usize) -> std::ops::Range<usize> {
    debug_assert!(tid < num_threads);
    let base = n / num_threads;
    let rem = n % num_threads;
    let start = tid * base + tid.min(rem);
    let len = base + usize::from(tid < rem);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_blocks_partition_exactly() {
        for n in [0usize, 1, 7, 100, 101, 1024] {
            for t in [1usize, 2, 3, 7, 16] {
                let mut covered = vec![false; n];
                for tid in 0..t {
                    for i in static_block(n, t, tid) {
                        assert!(!covered[i], "iteration {i} assigned twice (n={n}, t={t})");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap in coverage (n={n}, t={t})");
            }
        }
    }

    #[test]
    fn static_blocks_balanced_within_one() {
        let n = 103;
        let t = 4;
        let sizes: Vec<usize> = (0..t).map(|tid| static_block(n, t, tid).len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn validation_rejects_zero_chunks() {
        assert!(Schedule::Static { chunk: Some(0) }.validate().is_err());
        assert!(Schedule::Dynamic { chunk: 0 }.validate().is_err());
        assert!(Schedule::Guided { min_chunk: 0 }.validate().is_err());
        assert!(Schedule::default_static().validate().is_ok());
        assert!(Schedule::Dynamic { chunk: 8 }.validate().is_ok());
    }
}
