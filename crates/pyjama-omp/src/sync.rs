//! `critical` sections: global, name-keyed mutual exclusion.
//!
//! OpenMP `critical` regions exclude *across the whole program*, not just a
//! team — two concurrent parallel regions naming the same critical section
//! serialise against each other. Hence a process-global lock registry.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

static CRITICALS: OnceLock<Mutex<HashMap<String, Arc<Mutex<()>>>>> = OnceLock::new();

/// The lock behind `critical(name)`. Unnamed criticals share `""`.
pub fn critical_lock(name: &str) -> Arc<Mutex<()>> {
    let reg = CRITICALS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut g = reg.lock();
    Arc::clone(g.entry(name.to_string()).or_insert_with(|| Arc::new(Mutex::new(()))))
}

/// Runs `f` under the named critical section.
pub fn critical<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let lock = critical_lock(name);
    let _g = lock.lock();
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;

    #[test]
    fn same_name_same_lock() {
        let a = critical_lock("x");
        let b = critical_lock("x");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_names_different_locks() {
        let a = critical_lock("x1");
        let b = critical_lock("x2");
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn critical_excludes_concurrent_writers() {
        // A non-atomic read-modify-write protected only by the critical
        // section must not lose updates.
        let counter = StdArc::new(Mutex::new(0u64));
        let in_section = StdArc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let counter = StdArc::clone(&counter);
                let in_section = StdArc::clone(&in_section);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        critical("counter-test", || {
                            assert_eq!(in_section.fetch_add(1, Ordering::SeqCst), 0);
                            let v = *counter.lock();
                            *counter.lock() = v + 1;
                            in_section.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8 * 500);
    }

    #[test]
    fn critical_returns_value() {
        assert_eq!(critical("ret", || 5), 5);
    }
}
