//! The persistent fork-join worker pool behind [`parallel`].
//!
//! Every `parallel` region used to spawn `num_threads - 1` fresh OS
//! threads and join them at region end — tens of microseconds of kernel
//! work before a single kernel iteration ran, paid on *every* GUI event
//! handler in the paper's evaluation. Real OpenMP runtimes never do this:
//! libgomp-style "hot teams" keep worker threads alive between regions.
//! This module is that mechanism:
//!
//! * A **global, lazily-grown pool** of parked worker threads. A region
//!   *leases* workers for its lifetime; leasing never blocks (the pool
//!   spawns on shortage), so nested and concurrent regions cannot
//!   deadlock against each other.
//! * A **hot-team fast path**: after a region joins, the caller keeps its
//!   leased workers in a thread-local cache. A back-to-back region of the
//!   same size reuses them directly — no pool lock, no lease, no release.
//!   A size change releases the cached team and leases afresh; caller
//!   exit returns the cache to the global pool.
//! * A **lifetime-erased dispatch protocol** ([`Job`]): the region closure
//!   borrows the caller's stack (`'env`), while pool workers are
//!   `'static` threads. [`parallel`] erases the borrow behind a raw
//!   pointer, which is sound because the leader collects a per-worker
//!   *done* signal ([`Worker::wait_done`]) — stored in the worker's own
//!   `'static` slot strictly after its last touch of the job — before
//!   `parallel` returns. The same argument `std::thread::scope` makes
//!   with joins; the public scoped `'env` API is unchanged for all
//!   callers.
//!
//! Workers waiting for a fork use the same spin-then-park discipline as
//! the team barrier: a bounded spin keeps back-to-back regions
//! syscall-free, then the worker parks on its slot's condvar. Activations
//! are counted in [`TeamStats`] (`threads_spawned` vs `threads_reused`;
//! see the conservation law there).
//!
//! Model-checked twin: `pyjama-check/src/models/pool_join.rs` ports the
//! [`Slot`] publish/next_job/signal_done/wait_done protocol and the lease
//! discipline onto instrumented shims; its mutation suite re-introduces
//! the early-done and skipped-notify bugs and asserts the checker catches
//! them. Keep the port in sync with protocol changes here — DESIGN.md §5h
//! also carries the full join soundness argument.
//!
//! [`parallel`]: crate::parallel
//! [`TeamStats`]: pyjama_metrics::TeamStats

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::COUNTERS;

/// Spin budget of an idle worker before parking, in `spin_loop`
/// iterations. Matches the barrier's budget: back-to-back regions re-fork
/// within the window; longer gaps park the worker (zero CPU).
const IDLE_SPIN: u32 = 4096;

/// A lifetime-erased team-member dispatch: calling `run(tid)` runs one
/// member of the forking region.
///
/// # Safety contract
/// The erased closure borrows the leader's stack frame. The leader must
/// not return from that frame until it has collected every published
/// `Job`'s done signal ([`Worker::wait_done`]) — `parallel` upholds this.
#[derive(Clone, Copy)]
pub(crate) struct Job {
    member: *const (dyn Fn(usize) + Sync),
}

// Safety: the pointee is `Sync` (the bound is in the erased type) and the
// leader keeps it alive for the duration of every call (see the struct
// docs), so sending the pointer to a pool worker is safe.
unsafe impl Send for Job {}

impl Job {
    /// Erases `member`'s borrow lifetime.
    ///
    /// # Safety
    /// The caller guarantees the referent outlives every [`run`](Job::run)
    /// invocation (the publish/wait_done protocol).
    // The transmute changes only the trait object's lifetime bound; a
    // plain `as` cast cannot spell that for fat pointers.
    #[allow(clippy::transmute_ptr_to_ptr, clippy::useless_transmute)]
    pub unsafe fn erase<'a>(member: &'a (dyn Fn(usize) + Sync + 'a)) -> Job {
        Job {
            member: std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + 'a),
                *const (dyn Fn(usize) + Sync + 'static),
            >(member),
        }
    }

    /// Runs one team member.
    ///
    /// # Safety
    /// Only callable while the leader's frame is alive (see [`Job::erase`]).
    unsafe fn run(self, tid: usize) {
        (*self.member)(tid)
    }
}

/// The fork/join mailbox of one pool worker. The leaseholder publishes at
/// most one job at a time, the worker consumes it before running and
/// signals `done` after its last touch of the job, and the leaseholder
/// collects that signal ([`Worker::wait_done`]) before publishing the next
/// job — so both directions are clean single-producer/single-consumer
/// handoffs.
struct Slot {
    /// True when `job` holds an unconsumed dispatch.
    full: AtomicBool,
    /// True while the worker is parked on `cond` (publisher skips the lock
    /// entirely when the worker is still spinning).
    parked: AtomicBool,
    /// True when the worker finished its dispatched member. Set *after* the
    /// worker's final access to the job — this flag lives in the worker's
    /// own `'static` allocation, so observing it proves the worker holds no
    /// reference into the leaseholder's stack frame.
    done: AtomicBool,
    /// True while the leaseholder is parked in [`Worker::wait_done`].
    joiner_parked: AtomicBool,
    job: UnsafeCell<Option<(Job, usize)>>,
    lock: Mutex<()>,
    cond: Condvar,
}

// Safety: `job` is only written by the leaseholder while `full` is false
// and only read by the worker after observing `full` (SeqCst pairing), so
// the UnsafeCell is never accessed concurrently.
unsafe impl Sync for Slot {}

/// One pooled worker thread's shared handle.
pub(crate) struct Worker {
    slot: Slot,
    /// True until the first member activation (which "consumes" the spawn
    /// in the [`TeamStats`](pyjama_metrics::TeamStats) conservation law).
    fresh: AtomicBool,
}

impl Worker {
    fn new() -> Self {
        Worker {
            slot: Slot {
                full: AtomicBool::new(false),
                parked: AtomicBool::new(false),
                done: AtomicBool::new(false),
                joiner_parked: AtomicBool::new(false),
                job: UnsafeCell::new(None),
                lock: Mutex::new(()),
                cond: Condvar::new(),
            },
            fresh: AtomicBool::new(true),
        }
    }

    /// Publishes a member dispatch to this worker. Only the current
    /// leaseholder may call this, and every publish must be matched by a
    /// [`Worker::wait_done`] before the next publish or release.
    pub(crate) fn publish(&self, job: Job, tid: usize) {
        debug_assert!(!self.slot.full.load(Ordering::SeqCst), "slot still full");
        debug_assert!(
            !self.slot.done.load(Ordering::SeqCst),
            "previous dispatch was never joined"
        );
        unsafe { *self.slot.job.get() = Some((job, tid)) };
        self.slot.full.store(true, Ordering::SeqCst);
        if self.slot.parked.load(Ordering::SeqCst) {
            // Holding the lock across the notify closes the race with a
            // worker that published `parked` but has not yet slept.
            let _g = self.slot.lock.lock();
            self.slot.cond.notify_one();
        }
    }

    /// Worker side: spin-then-park until a job is published, then consume it.
    fn next_job(&self) -> (Job, usize) {
        let limit = crate::spin::budget(IDLE_SPIN);
        let mut spins = 0u32;
        while !self.slot.full.load(Ordering::SeqCst) {
            if spins < limit {
                std::hint::spin_loop();
                spins += 1;
                continue;
            }
            let mut g = self.slot.lock.lock();
            self.slot.parked.store(true, Ordering::SeqCst);
            if !self.slot.full.load(Ordering::SeqCst) {
                self.slot.cond.wait(&mut g);
            }
            self.slot.parked.store(false, Ordering::SeqCst);
        }
        let job = unsafe { (*self.slot.job.get()).take() }.expect("full slot holds a job");
        self.slot.full.store(false, Ordering::SeqCst);
        job
    }

    /// Worker side: reports the dispatched member finished. Called strictly
    /// after the worker's last touch of the job.
    fn signal_done(&self) {
        self.slot.done.store(true, Ordering::SeqCst);
        if self.slot.joiner_parked.load(Ordering::SeqCst) {
            // Lock across the notify: the joiner publishes `joiner_parked`
            // and re-checks `done` under this lock before sleeping.
            let _g = self.slot.lock.lock();
            self.slot.cond.notify_all();
        }
    }

    /// Leaseholder side: blocks until this worker's published dispatch has
    /// fully finished, then re-arms the slot for the next publish.
    ///
    /// Spin-then-park like the team barrier; outcomes land in the same
    /// barrier spin/park counters (the collected joins *are* this runtime's
    /// join barrier). Once this returns, the worker's `done` store — its
    /// final access ordered after the job ran — has been acquired, so the
    /// job's borrows are dead and the worker is idle, safe to re-lease.
    pub(crate) fn wait_done(&self) {
        let limit = crate::spin::budget(IDLE_SPIN);
        let mut spins = 0u32;
        let mut parked = false;
        while !self.slot.done.load(Ordering::SeqCst) {
            if spins < limit {
                std::hint::spin_loop();
                spins += 1;
                continue;
            }
            let mut g = self.slot.lock.lock();
            self.slot.joiner_parked.store(true, Ordering::SeqCst);
            if !self.slot.done.load(Ordering::SeqCst) {
                if !parked {
                    parked = true;
                    COUNTERS.record_barrier_park();
                }
                self.slot.cond.wait(&mut g);
            }
            self.slot.joiner_parked.store(false, Ordering::SeqCst);
        }
        if !parked {
            COUNTERS.record_barrier_spin();
        }
        self.slot.done.store(false, Ordering::SeqCst);
    }
}

fn worker_loop(me: Arc<Worker>) {
    loop {
        let (job, tid) = me.next_job();
        COUNTERS.record_member_activation();
        if me.fresh.swap(false, Ordering::Relaxed) {
            // This activation consumed the spawn recorded at thread birth.
        } else {
            COUNTERS.record_thread_reused();
        }
        // `Job::run` executes `Team::run_member`, which catches member
        // panics itself; a panic escaping here would mean we could never
        // signal done and the leader's join would hang forever, so fail
        // loudly instead (mirrors libgomp's fatal-error policy).
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            job.run(tid)
        }));
        if r.is_err() {
            eprintln!("pyjama-omp: panic escaped a pooled team member; aborting");
            std::process::abort();
        }
        me.signal_done();
    }
}

/// Idle (unleased) workers.
static POOL: Mutex<Vec<Arc<Worker>>> = Mutex::new(Vec::new());
/// Monotonic worker name counter.
static WORKER_SEQ: AtomicUsize = AtomicUsize::new(0);

fn spawn_worker() -> Arc<Worker> {
    COUNTERS.record_thread_spawned();
    let w = Arc::new(Worker::new());
    let runner = Arc::clone(&w);
    let seq = WORKER_SEQ.fetch_add(1, Ordering::Relaxed);
    std::thread::Builder::new()
        .name(format!("omp-pool-{seq}"))
        .spawn(move || worker_loop(runner))
        .expect("failed to spawn omp pool worker");
    w
}

/// Takes `k` workers: pooled ones first, spawning the shortfall. Never
/// blocks on busy workers, so nested/concurrent regions cannot deadlock.
fn lease(k: usize) -> Vec<Arc<Worker>> {
    let mut out = Vec::with_capacity(k);
    {
        let mut idle = POOL.lock();
        while out.len() < k {
            match idle.pop() {
                Some(w) => out.push(w),
                None => break,
            }
        }
    }
    while out.len() < k {
        out.push(spawn_worker());
    }
    out
}

/// Returns workers to the global idle pool.
fn release(workers: Vec<Arc<Worker>>) {
    if !workers.is_empty() {
        POOL.lock().extend(workers);
    }
}

/// The caller's cached hot team; returned to the global pool when the
/// caller thread exits.
struct HotTeam {
    workers: Vec<Arc<Worker>>,
}

impl Drop for HotTeam {
    fn drop(&mut self) {
        release(std::mem::take(&mut self.workers));
    }
}

thread_local! {
    static HOT: RefCell<HotTeam> = const { RefCell::new(HotTeam { workers: Vec::new() }) };
}

/// Runs `body` with `k` leased workers, serving from the caller's hot team
/// when the size matches. Returns `body`'s result.
///
/// The cached team is *taken out* of the thread-local for the duration of
/// `body`, so a nested `parallel` on the same thread (the caller is a team
/// member too) leases its own workers instead of aliasing the outer lease.
/// On the way out the outer composition wins the cache slot — it is the
/// one that repeats across event handlers — and any team the nested region
/// cached is released to the global pool.
pub(crate) fn with_workers<R>(k: usize, body: impl FnOnce(&[Arc<Worker>], bool) -> R) -> R {
    debug_assert!(k > 0, "zero-worker regions bypass the pool");
    let cached = HOT.with(|h| std::mem::take(&mut h.borrow_mut().workers));
    let (workers, hot) = if cached.len() == k {
        (cached, true)
    } else {
        release(cached);
        (lease(k), false)
    };
    if hot {
        COUNTERS.record_region_hot();
    }
    let r = body(&workers, hot);
    // Only reached when every published job has joined (body ends with the
    // `wait_done` collection loop), so the workers are idle again and safe
    // to re-lease. If body ever unwound mid-protocol the lease would leak —
    // never to the pool — which is the safe failure mode.
    HOT.with(|h| {
        let prev = std::mem::replace(&mut h.borrow_mut().workers, workers);
        release(prev);
    });
    r
}

/// Number of idle (unleased) workers in the global pool. Diagnostics; the
/// value is stale the moment it is read.
pub fn idle_workers() -> usize {
    POOL.lock().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn lease_spawns_then_pool_reuses() {
        // Private leases: take workers, return them, take again — the pool
        // must hand the same workers back rather than spawning.
        let a = lease(2);
        let ptrs: Vec<*const Worker> = a.iter().map(Arc::as_ptr).collect();
        release(a);
        let b = lease(2);
        assert!(
            b.iter().all(|w| ptrs.contains(&Arc::as_ptr(w))),
            "released workers must be re-leased, not respawned"
        );
        release(b);
    }

    #[test]
    fn publish_wakes_a_parked_worker() {
        let workers = lease(1);
        let w = &workers[0];
        // Give the worker time to exhaust its spin budget and park.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let ran = AtomicU64::new(0);
        {
            let member = |tid: usize| {
                ran.fetch_add(tid as u64 + 10, Ordering::SeqCst);
            };
            let job = unsafe { Job::erase(&member) };
            w.publish(job, 3);
            w.wait_done();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 13);
        release(workers);
    }

    #[test]
    fn with_workers_caches_hot_team() {
        // Same size back-to-back: second call must be hot with identical
        // workers. Size change: cold again.
        let first = with_workers(2, |ws, hot| {
            assert!(!hot, "first lease on this thread cannot be hot");
            ws.iter().map(Arc::as_ptr).collect::<Vec<_>>()
        });
        let second = with_workers(2, |ws, hot| {
            assert!(hot, "same-size refork must hit the hot path");
            ws.iter().map(Arc::as_ptr).collect::<Vec<_>>()
        });
        assert_eq!(first, second, "hot team must be the same workers");
        with_workers(3, |ws, hot| {
            assert!(!hot, "size change must re-lease");
            assert_eq!(ws.len(), 3);
        });
    }
}
