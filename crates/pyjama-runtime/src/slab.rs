//! Region recycler: a bounded lock-free slab of terminal [`TargetRegion`]s.
//!
//! Every post used to allocate a fresh `Arc<TargetRegion>` (and inside it a
//! fresh `Arc<Core>`); every completion dropped them. On the steady-state
//! hot path — the reactor re-arming a region per readiness event, the VM
//! posting a region per directive — that is two allocator round trips per
//! task for memory whose shape never changes. This module keeps terminal
//! regions and reissues them:
//!
//! * **release** (executor side): after a region runs, if it is terminal
//!   (`Finished`/`Cancelled`, body consumed) and no other region `Arc`
//!   clone exists, its `Arc` is dissolved into a raw pointer and parked in
//!   a slot. An outstanding [`TaskHandle`](crate::task::TaskHandle) does
//!   not block the park: the poster's handle routinely outlives the
//!   worker's release by nanoseconds, a resting region is never mutated,
//!   and acquire re-checks the pin before resetting anything.
//!   Poisoned (panicked) regions are **never** recycled: a panic can leave
//!   the panic payload consumed or not, and the cheap guarantee that a
//!   reissued region is indistinguishable from a fresh one is worth more
//!   than one salvaged allocation. They retire through the normal drop
//!   path and are attributed in `AllocStats::poisoned`.
//! * **acquire** (constructor side): [`TargetRegion::with_label_trace`]
//!   takes a parked region, resets it in place (state → `Pending`, fresh
//!   label/trace/body, wakers cleared with capacity kept), and returns it.
//!   The caller always supplies the trace id — minted fresh or an explicit
//!   flow continuation — so a recycled region can never leak its previous
//!   incarnation's identity into the trace.
//!
//! ## Shape: slot array, not a Treiber stack
//!
//! The classic lock-free free list is a Treiber stack, but popping one
//! requires a dependent read of the head node's `next` pointer, which is
//! exactly where the ABA problem lives. A fixed array of
//! `AtomicPtr` slots needs no dependent reads: release CASes a null slot to
//! the region pointer, acquire `swap`s a non-null slot back to null. Each
//! pointer is published and claimed atomically in one cell — ABA-free by
//! construction, bounded by design (a full slab just drops the region,
//! which is the pre-recycler behaviour). A one-region thread-local cache
//! sits in front: the common release→acquire sequence on a worker thread
//! (run a region, then its successor is posted from the next body) never
//! touches the shared slots at all.
//!
//! Accounting lives in [`pyjama_metrics::AllocCounters`]; see
//! [`alloc_stats`] and the `allocated == recycled + live + dropped` law.

use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use pyjama_events::inline::InlineFn;
use pyjama_metrics::{AllocCounters, AllocStats};
use pyjama_trace::TraceId;

use crate::task::TargetRegion;

/// Shared slots (on top of the per-thread cache). 64 parked regions bound
/// the slab's resident footprint to a few KiB while covering every pool
/// width this runtime is deployed at.
const SLAB_SLOTS: usize = 64;

#[allow(clippy::declare_interior_mutable_const)]
const NULL_SLOT: AtomicPtr<TargetRegion> = AtomicPtr::new(ptr::null_mut());
static SLOTS: [AtomicPtr<TargetRegion>; SLAB_SLOTS] = [NULL_SLOT; SLAB_SLOTS];

static ALLOC: AllocCounters = AllocCounters::new();

thread_local! {
    /// One-region cache: the release→acquire fast path on a single thread.
    /// No destructor (const-init `Cell`); a thread that exits with a parked
    /// region leaves it accounted as `recycled`, which keeps the
    /// conservation law exact.
    static CACHE: Cell<*mut TargetRegion> = const { Cell::new(ptr::null_mut()) };
}

/// Snapshot of the recycler's conservation-law counters
/// (`allocated == recycled + live + dropped`, exact at quiesce).
pub fn alloc_stats() -> AllocStats {
    ALLOC.snapshot()
}

/// Constructs a fresh region, bypassing the slots (but not the accounting).
pub(crate) fn fresh(label: Arc<str>, trace: TraceId, body: InlineFn) -> Arc<TargetRegion> {
    ALLOC.record_fresh();
    TargetRegion::construct(label, trace, body)
}

/// Acquires a region: recycled when a parked one is available, fresh
/// otherwise. Backs every public `TargetRegion` constructor.
pub(crate) fn acquire(label: Arc<str>, trace: TraceId, body: InlineFn) -> Arc<TargetRegion> {
    let mut raw = CACHE.with(|c| c.replace(ptr::null_mut()));
    if raw.is_null() {
        for slot in &SLOTS {
            // Cheap relaxed probe first; the swap both claims the pointer
            // and (Acquire) synchronises with the releasing thread's
            // writes into the region.
            if !slot.load(Ordering::Relaxed).is_null() {
                let p = slot.swap(ptr::null_mut(), Ordering::AcqRel);
                if !p.is_null() {
                    raw = p;
                    break;
                }
            }
        }
    }
    if !raw.is_null() {
        // SAFETY: the pointer came from `Arc::into_raw` in `release` and
        // was claimed by exactly one thread (cache replace / slot swap).
        let mut region = unsafe { Arc::from_raw(raw as *const TargetRegion) };
        match Arc::get_mut(&mut region) {
            Some(r) if r.recyclable() => {
                ALLOC.record_reuse();
                r.reset(label, trace, body);
                return region;
            }
            // A long-lived handle (e.g. a name_as tag registration) still
            // pins the core: retire this region through the normal drop
            // path and construct fresh. The slab never reissues a pinned
            // core — only the park was optimistic.
            _ => {
                ALLOC.record_unpark();
                drop(region);
                return fresh(label, trace, body);
            }
        }
    }
    fresh(label, trace, body)
}

/// Offers a terminal region back to the slab. Call with the executor's
/// (presumed last) `Arc` after `execute`. Regions pinned by another region
/// `Arc` clone and poisoned regions fall through to a plain drop; a full
/// slab drops too (bounded capacity). An outstanding `TaskHandle` does
/// **not** block the park — the poster's handle routinely outlives the
/// release by nanoseconds, and a resting region is never mutated, so the
/// handle keeps observing the terminal state; `acquire` re-checks the pin
/// before any reset.
pub fn release(region: Arc<TargetRegion>) {
    if region.poisoned() {
        ALLOC.record_poisoned();
        return; // normal drop; attributed above
    }
    if Arc::strong_count(&region) != 1 || !region.slab_eligible() {
        return; // region Arc pinned or not terminal: normal drop
    }
    let mut raw = Arc::into_raw(region) as *mut TargetRegion;
    raw = CACHE.with(|c| {
        if c.get().is_null() {
            c.set(raw);
            ptr::null_mut()
        } else {
            raw
        }
    });
    if raw.is_null() {
        ALLOC.record_recycle();
        return;
    }
    for slot in &SLOTS {
        if slot.load(Ordering::Relaxed).is_null()
            && slot
                .compare_exchange(
                    ptr::null_mut(),
                    raw,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
        {
            ALLOC.record_recycle();
            return;
        }
    }
    // Slab full: retire. SAFETY: `raw` was produced by `Arc::into_raw`
    // above and not parked anywhere.
    drop(unsafe { Arc::from_raw(raw as *const TargetRegion) });
}

/// Hook for [`TargetRegion`]'s `Drop`: live → dropped.
pub(crate) fn note_region_drop() {
    ALLOC.record_drop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskState;
    use std::sync::atomic::AtomicUsize;

    /// Executes and releases a region, returning whether the follow-up
    /// acquisition reused it. Serial, so the TLS cache makes it
    /// deterministic.
    fn roundtrip() -> bool {
        let before = alloc_stats();
        let r = TargetRegion::new("slab-test", || {});
        r.execute();
        release(r);
        let r2 = TargetRegion::new("slab-test", || {});
        let reused = alloc_stats().since(&before).reused >= 1;
        r2.execute();
        drop(r2);
        reused
    }

    #[test]
    fn release_then_acquire_reuses() {
        assert!(roundtrip(), "serial release→acquire must hit the cache");
    }

    /// The law is exact only at quiesce; unit tests in this binary run
    /// concurrently and hold live regions, so poll until balance.
    fn assert_conserved_eventually() {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let s = alloc_stats();
            if s.conserved() {
                return;
            }
            if std::time::Instant::now() > deadline {
                panic!(
                    "allocated {} != recycled {} + live {} + dropped {}",
                    s.allocated, s.recycled, s.live, s.dropped
                );
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    #[test]
    fn conservation_law_holds_at_quiesce() {
        for _ in 0..10 {
            let r = TargetRegion::new("law", || {});
            r.execute();
            release(r);
        }
        assert_conserved_eventually();
    }

    #[test]
    fn panicked_region_is_retired_not_reused() {
        let before = alloc_stats();
        let r = TargetRegion::new("boom", || panic!("x"));
        r.execute();
        assert_eq!(r.handle().state(), TaskState::Panicked);
        release(r);
        let d = alloc_stats().since(&before);
        assert_eq!(d.poisoned, 1, "panic attributed");
        assert_eq!(d.dropped, 1, "poisoned region retired");
        // The next region must be fresh or a reuse of some *other* clean
        // region — never the poisoned one. Its state must be Pending with
        // no payload.
        let r2 = TargetRegion::new("clean", || {});
        assert_eq!(r2.handle().state(), TaskState::Pending);
        r2.execute();
        r2.handle().join(); // no stale panic payload
    }

    #[test]
    fn pinned_region_parks_but_is_never_reissued() {
        // Empty this thread's TLS cache so release/acquire below hit it
        // deterministically (acquire always claims the cache first).
        let flush = TargetRegion::new("flush", || {});
        flush.execute();
        drop(flush); // plain drop: the cache stays empty

        let r = TargetRegion::new("pinned", || {});
        r.execute();
        let h = r.handle(); // outstanding handle pins the core
        let before = alloc_stats();
        release(r); // parks in the TLS cache despite the pin
        assert!(h.is_finished(), "handle still observes the terminal state");

        // Acquire claims the parked region, finds the core still pinned,
        // retires it and falls back to a fresh construction — the pinned
        // core is never reset underneath the live handle.
        let r2 = TargetRegion::new("fresh-fallback", || {});
        assert_eq!(r2.handle().state(), TaskState::Pending);
        let d = alloc_stats().since(&before);
        assert!(d.dropped >= 1, "pinned region retired at acquire: {d:?}");
        assert!(d.allocated >= 1, "fallback constructed fresh: {d:?}");
        assert_eq!(h.state(), TaskState::Finished, "old handle undisturbed");
        r2.execute();
        drop(h);
    }

    #[test]
    fn exhaustion_falls_back_to_plain_drop() {
        // Fill the TLS cache + every shared slot, with margin for slots
        // concurrently drained by sibling tests.
        let mut regions = Vec::new();
        for _ in 0..(SLAB_SLOTS + 8) {
            let r = TargetRegion::new("fill", || {});
            r.execute();
            regions.push(r);
        }
        let before = alloc_stats();
        for r in regions {
            release(r);
        }
        let d = alloc_stats().since(&before);
        assert!(
            d.dropped >= 1,
            "overflow beyond cache + {SLAB_SLOTS} slots must drop"
        );
        assert_conserved_eventually();
        // And acquiring still works fine afterwards.
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let r = TargetRegion::new("after", move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        r.execute();
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn recycled_region_carries_the_new_label_and_trace() {
        let r = TargetRegion::with_label_trace(Arc::from("first"), TraceId::NONE, || {});
        r.execute();
        release(r);
        let r2 = TargetRegion::with_label_trace(Arc::from("second"), TraceId::NONE, || {});
        assert_eq!(r2.handle().label(), "second");
        r2.execute();
    }
}
