//! Asynchronous-I/O integration — the paper's stated future work (§VII:
//! "integrating non-blocking I/O and asynchronous I/O into this model").
//!
//! Two styles are provided, mirroring the paper's discussion of CPS vs
//! directives (§II-B):
//!
//! * [`Runtime::submit_then`] — continuation-passing: run an operation on
//!   one target, deliver its result to a continuation on another target
//!   (the `BeginInvoke`-style pattern of Figure 4, but as one call).
//! * [`TargetFuture::join_pumping`] — the await-style alternative the
//!   paper advocates: block *logically* on a typed result while the
//!   current thread keeps processing its own events/tasks, so sequential
//!   code keeps its shape.

use std::time::Duration;

use crate::registry::{Runtime, RuntimeError};
use crate::task::{TargetFuture, TargetRegion};

impl Runtime {
    /// Runs `op` on target `on`, then delivers its value to `continuation`
    /// executing on target `then_on` — non-blocking for the caller.
    ///
    /// This is the classic asynchronous-I/O shape: `op` is the blocking
    /// read/download (kept off the caller), `then_on` is typically `"edt"`
    /// so the continuation may touch GUI state.
    pub fn submit_then<R: Send + 'static>(
        &self,
        on: &str,
        op: impl FnOnce() -> R + Send + 'static,
        then_on: &str,
        continuation: impl FnOnce(R) + Send + 'static,
    ) -> Result<(), RuntimeError> {
        let io_target = self.lookup(on)?;
        let cont_target = self.lookup(then_on)?;
        let label = format!("submit_then:{on}->{then_on}");
        let region = TargetRegion::new(label.clone(), move || {
            let value = op();
            let cont_region = TargetRegion::new(label, move || continuation(value));
            if cont_target.is_member() {
                cont_region.execute();
            } else {
                cont_target.post(cont_region);
            }
        });
        if io_target.is_member() {
            region.execute();
        } else {
            io_target.post(region);
        }
        Ok(())
    }
}

impl<R: Send + 'static> TargetFuture<R> {
    /// Like [`join`](TargetFuture::join), but while the value is not ready
    /// the calling thread helps its own execution environment (pumps its
    /// event loop or drains its worker queue) — the `await` logical
    /// barrier applied to a typed result.
    pub fn join_pumping(self, rt: &Runtime) -> R {
        rt.await_barrier(self.handle());
        self.join()
    }

    /// Bounded variant: returns `None` if the value is not ready within
    /// `timeout` (still helping meanwhile). Shares the wake-driven barrier
    /// loop with [`Runtime::await_barrier`]: when nothing can be helped the
    /// thread parks until a wake source fires or the deadline passes —
    /// never on a poll quantum.
    pub fn join_pumping_timeout(self, rt: &Runtime, timeout: Duration) -> Option<R> {
        let _ = rt;
        let deadline = std::time::Instant::now() + timeout;
        if crate::parker::await_until(self.handle(), Some(deadline)) {
            Some(self.join())
        } else {
            None
        }
    }
}

/// A convenience for simulated asynchronous reads in examples and tests:
/// sleeps `latency`, then yields `payload`.
pub fn simulated_read(latency: Duration, payload: Vec<u8>) -> impl FnOnce() -> Vec<u8> + Send {
    move || {
        std::thread::sleep(latency);
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use parking_lot::Mutex;
    use pyjama_events::Edt;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn submit_then_runs_continuation_on_requested_target() {
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("io", 2);
        let edt = Edt::spawn("edt");
        rt.virtual_target_register_edt("edt", edt.handle()).unwrap();

        let on_edt = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));
        let o2 = Arc::clone(&on_edt);
        let d2 = Arc::clone(&done);
        let h = edt.handle();
        rt.submit_then(
            "io",
            simulated_read(Duration::from_millis(10), vec![1, 2, 3]),
            "edt",
            move |data| {
                o2.store(h.is_loop_thread(), Ordering::SeqCst);
                assert_eq!(data, vec![1, 2, 3]);
                d2.store(true, Ordering::SeqCst);
            },
        )
        .unwrap();

        let t0 = Instant::now();
        while !done.load(Ordering::SeqCst) {
            assert!(t0.elapsed() < Duration::from_secs(10));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(on_edt.load(Ordering::SeqCst), "continuation must run on the EDT");
    }

    #[test]
    fn submit_then_unknown_targets_error() {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("io", 1);
        assert!(rt.submit_then("ghost", || 1, "io", |_| {}).is_err());
        assert!(rt.submit_then("io", || 1, "ghost", |_| {}).is_err());
    }

    #[test]
    fn join_pumping_on_edt_processes_other_events() {
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("io", 1);
        let edt = Edt::spawn("edt");
        rt.virtual_target_register_edt("edt", edt.handle()).unwrap();

        let pumped = Arc::new(AtomicBool::new(false));
        let result = Arc::new(Mutex::new(None));

        let rt2 = Arc::clone(&rt);
        let p2 = Arc::clone(&pumped);
        let r2 = Arc::clone(&result);
        edt.invoke_later(move || {
            let fut = rt2
                .submit("io", simulated_read(Duration::from_millis(30), b"payload".to_vec()))
                .unwrap();
            let value = fut.join_pumping(&rt2); // EDT pumps while waiting
            *r2.lock() = Some((value, p2.load(Ordering::SeqCst)));
        });
        let p3 = Arc::clone(&pumped);
        edt.invoke_later(move || p3.store(true, Ordering::SeqCst));

        let t0 = Instant::now();
        while result.lock().is_none() {
            assert!(t0.elapsed() < Duration::from_secs(10));
            std::thread::sleep(Duration::from_millis(1));
        }
        let (value, other_event_ran) = result.lock().take().unwrap();
        assert_eq!(value, b"payload");
        assert!(other_event_ran, "the EDT must have pumped the second event");
    }

    #[test]
    fn join_pumping_timeout_expires() {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("io", 1);
        let fut = rt
            .submit("io", simulated_read(Duration::from_millis(200), vec![]))
            .unwrap();
        assert!(fut
            .join_pumping_timeout(&rt, Duration::from_millis(20))
            .is_none());
    }

    #[test]
    fn join_pumping_timeout_returns_value_when_ready() {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("io", 1);
        let fut = rt.submit("io", || 7u32).unwrap();
        assert_eq!(fut.join_pumping_timeout(&rt, Duration::from_secs(10)), Some(7));
    }

    #[test]
    fn chained_async_operations_keep_sequential_shape() {
        // The paper's point: with await-style primitives the code reads
        // top-to-bottom even though every step is asynchronous.
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("io", 2);
        rt.virtual_target_create_worker("cpu", 2);

        let download = rt
            .submit("io", simulated_read(Duration::from_millis(5), vec![3, 1, 2]))
            .unwrap();
        let mut data = download.join_pumping(&rt);
        let compute = rt
            .submit("cpu", move || {
                data.sort();
                data
            })
            .unwrap();
        let sorted = compute.join_pumping(&rt);
        assert_eq!(sorted, vec![1, 2, 3]);

        // And the directive-style equivalent still works around it:
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        rt.target("cpu", Mode::Wait, move || f2.store(true, Ordering::SeqCst));
        assert!(flag.load(Ordering::SeqCst));
    }
}
