//! The extended `target` directive model (paper Figure 5).
//!
//! ```text
//! #pragma omp target [clause[,] clause ...]  structured-block
//! clause:
//!     target-property-clause | scheduling-property-clause
//!   | data-handling-clause   | if-clause
//! target-property-clause:   device(device-number) | virtual(name-tag)
//! scheduling-property-clause: nowait | name_as(name-tag) | await
//! ```
//!
//! This module gives the clause grammar a typed representation plus a small
//! textual parser. The source-to-source compiler reuses the parser; the
//! macro front end and runtime consume the typed form.

use crate::mode::Mode;

/// `target-property-clause`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetProperty {
    /// `device(n)` — a physical accelerator (accepted syntactically;
    /// execution maps it to the host in this reproduction).
    Device(u32),
    /// `virtual(name)` — a software-level executor.
    Virtual(String),
    /// No clause: resolved against the `default-device-var`-style ICV.
    Default,
}

/// A single parsed clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Clause {
    /// `device(n)` / `virtual(name)`.
    Target(TargetProperty),
    /// `nowait` / `name_as(tag)` / `await`.
    Scheduling(Mode),
    /// `wait(tag)` — the synchronisation clause paired with `name_as`.
    WaitTag(String),
    /// `if(expr)` — carried as text; evaluation is the host language's job.
    If(String),
    /// `default(shared)` — the only data-handling clause a virtual target
    /// needs (§III-B: shared memory, no mapping).
    DefaultShared,
}

/// A fully parsed `target` directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TargetDirective {
    /// Where the block runs.
    pub target: TargetProperty,
    /// How the encountering thread schedules around the block.
    pub mode: Mode,
    /// Raw `if` condition text, if present.
    pub if_condition: Option<String>,
    /// `wait(tag)` clauses attached to this directive.
    pub wait_tags: Vec<String>,
}

/// Errors from directive parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirectiveError {
    /// The text did not start with `target`.
    NotATarget(String),
    /// A clause was not recognised.
    UnknownClause(String),
    /// A clause needed `(arg)` but had none, or vice versa.
    BadArgument(String),
    /// Two clauses of the same family conflict (e.g. `nowait await`).
    Conflict(String),
}

impl std::fmt::Display for DirectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectiveError::NotATarget(s) => write!(f, "not a target directive: `{s}`"),
            DirectiveError::UnknownClause(s) => write!(f, "unknown clause `{s}`"),
            DirectiveError::BadArgument(s) => write!(f, "bad clause argument in `{s}`"),
            DirectiveError::Conflict(s) => write!(f, "conflicting clauses: {s}"),
        }
    }
}

impl std::error::Error for DirectiveError {}

impl TargetDirective {
    /// Parses the clause list of a `target` directive, e.g.
    /// `target virtual(worker) nowait` or
    /// `target device(0) name_as(jobs) if(n > 3)`.
    ///
    /// The `//#omp` / `#pragma omp` sentinel must already be stripped.
    pub fn parse(text: &str) -> Result<Self, DirectiveError> {
        let text = text.trim();
        let rest = text
            .strip_prefix("target")
            .ok_or_else(|| DirectiveError::NotATarget(text.to_string()))?;
        if !rest.is_empty() && !rest.starts_with(char::is_whitespace) {
            return Err(DirectiveError::NotATarget(text.to_string()));
        }

        let mut directive = TargetDirective {
            target: TargetProperty::Default,
            mode: Mode::Wait,
            if_condition: None,
            wait_tags: Vec::new(),
        };
        let mut saw_target = false;
        let mut saw_mode = false;

        for clause in split_clauses(rest)? {
            match parse_clause(&clause)? {
                Clause::Target(tp) => {
                    if saw_target {
                        return Err(DirectiveError::Conflict(
                            "multiple target-property clauses".into(),
                        ));
                    }
                    saw_target = true;
                    directive.target = tp;
                }
                Clause::Scheduling(m) => {
                    if saw_mode {
                        return Err(DirectiveError::Conflict(
                            "multiple scheduling-property clauses".into(),
                        ));
                    }
                    saw_mode = true;
                    directive.mode = m;
                }
                Clause::WaitTag(t) => directive.wait_tags.push(t),
                Clause::If(c) => {
                    if directive.if_condition.is_some() {
                        return Err(DirectiveError::Conflict("multiple if clauses".into()));
                    }
                    directive.if_condition = Some(c);
                }
                Clause::DefaultShared => {}
            }
        }
        Ok(directive)
    }

    /// Renders the directive back to clause text (normalised spelling).
    pub fn to_directive_text(&self) -> String {
        let mut s = String::from("target");
        match &self.target {
            TargetProperty::Device(n) => s.push_str(&format!(" device({n})")),
            TargetProperty::Virtual(name) => s.push_str(&format!(" virtual({name})")),
            TargetProperty::Default => {}
        }
        let mode = self.mode.clause_text();
        if !mode.is_empty() {
            s.push(' ');
            s.push_str(&mode);
        }
        for t in &self.wait_tags {
            s.push_str(&format!(" wait({t})"));
        }
        if let Some(c) = &self.if_condition {
            s.push_str(&format!(" if({c})"));
        }
        s
    }
}

/// Splits `rest` into clause strings, keeping parenthesised arguments
/// attached: `virtual(worker) nowait if(a && b)` →
/// `["virtual(worker)", "nowait", "if(a && b)"]`.
fn split_clauses(rest: &str) -> Result<Vec<String>, DirectiveError> {
    let mut clauses = Vec::new();
    let mut cur = String::new();
    let mut depth = 0i32;
    for ch in rest.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth -= 1;
                if depth < 0 {
                    return Err(DirectiveError::BadArgument(rest.trim().to_string()));
                }
                cur.push(ch);
            }
            c if (c.is_whitespace() || c == ',') && depth == 0 => {
                if !cur.is_empty() {
                    clauses.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if depth != 0 {
        return Err(DirectiveError::BadArgument(rest.trim().to_string()));
    }
    if !cur.is_empty() {
        clauses.push(cur);
    }
    Ok(clauses)
}

fn parse_clause(clause: &str) -> Result<Clause, DirectiveError> {
    let (head, arg) = match clause.find('(') {
        Some(i) => {
            if !clause.ends_with(')') {
                return Err(DirectiveError::BadArgument(clause.to_string()));
            }
            (&clause[..i], Some(clause[i + 1..clause.len() - 1].trim()))
        }
        None => (clause, None),
    };
    match (head, arg) {
        ("virtual", Some(a)) if !a.is_empty() => {
            Ok(Clause::Target(TargetProperty::Virtual(a.to_string())))
        }
        ("device", Some(a)) => a
            .parse::<u32>()
            .map(|n| Clause::Target(TargetProperty::Device(n)))
            .map_err(|_| DirectiveError::BadArgument(clause.to_string())),
        ("nowait", None) => Ok(Clause::Scheduling(Mode::NoWait)),
        ("await", None) => Ok(Clause::Scheduling(Mode::Await)),
        ("name_as", Some(a)) if !a.is_empty() => {
            Ok(Clause::Scheduling(Mode::NameAs(a.to_string())))
        }
        ("wait", Some(a)) if !a.is_empty() => Ok(Clause::WaitTag(a.to_string())),
        ("if", Some(a)) if !a.is_empty() => Ok(Clause::If(a.to_string())),
        ("default", Some("shared")) => Ok(Clause::DefaultShared),
        ("virtual" | "device" | "name_as" | "wait" | "if", _) => {
            Err(DirectiveError::BadArgument(clause.to_string()))
        }
        _ => Err(DirectiveError::UnknownClause(clause.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figure6_directives() {
        let d = TargetDirective::parse("target virtual(worker) nowait").unwrap();
        assert_eq!(d.target, TargetProperty::Virtual("worker".into()));
        assert_eq!(d.mode, Mode::NoWait);

        let d = TargetDirective::parse("target virtual(edt)").unwrap();
        assert_eq!(d.target, TargetProperty::Virtual("edt".into()));
        assert_eq!(d.mode, Mode::Wait);
    }

    #[test]
    fn parses_await_and_name_as() {
        let d = TargetDirective::parse("target virtual(worker) await").unwrap();
        assert_eq!(d.mode, Mode::Await);

        let d = TargetDirective::parse("target virtual(worker) name_as(jobs)").unwrap();
        assert_eq!(d.mode, Mode::name_as("jobs"));
    }

    #[test]
    fn parses_device_clause() {
        let d = TargetDirective::parse("target device(2)").unwrap();
        assert_eq!(d.target, TargetProperty::Device(2));
    }

    #[test]
    fn parses_wait_and_if_clauses() {
        let d = TargetDirective::parse("target virtual(w) wait(jobs) if(n > 3)").unwrap();
        assert_eq!(d.wait_tags, vec!["jobs"]);
        assert_eq!(d.if_condition.as_deref(), Some("n > 3"));
    }

    #[test]
    fn if_argument_may_contain_parens_and_spaces() {
        let d = TargetDirective::parse("target virtual(w) if(f(x, y) && g())").unwrap();
        assert_eq!(d.if_condition.as_deref(), Some("f(x, y) && g()"));
    }

    #[test]
    fn comma_separated_clauses() {
        let d = TargetDirective::parse("target virtual(w), nowait").unwrap();
        assert_eq!(d.mode, Mode::NoWait);
    }

    #[test]
    fn default_target_when_no_property_clause() {
        let d = TargetDirective::parse("target nowait").unwrap();
        assert_eq!(d.target, TargetProperty::Default);
    }

    #[test]
    fn default_shared_accepted_and_ignored() {
        let d = TargetDirective::parse("target virtual(w) default(shared)").unwrap();
        assert_eq!(d.target, TargetProperty::Virtual("w".into()));
    }

    #[test]
    fn rejects_non_target() {
        assert!(matches!(
            TargetDirective::parse("parallel for"),
            Err(DirectiveError::NotATarget(_))
        ));
        assert!(matches!(
            TargetDirective::parse("targetx virtual(w)"),
            Err(DirectiveError::NotATarget(_))
        ));
    }

    #[test]
    fn rejects_unknown_clause() {
        assert!(matches!(
            TargetDirective::parse("target virtual(w) fancy"),
            Err(DirectiveError::UnknownClause(_))
        ));
    }

    #[test]
    fn rejects_conflicting_modes() {
        assert!(matches!(
            TargetDirective::parse("target virtual(w) nowait await"),
            Err(DirectiveError::Conflict(_))
        ));
        assert!(matches!(
            TargetDirective::parse("target virtual(a) virtual(b)"),
            Err(DirectiveError::Conflict(_))
        ));
    }

    #[test]
    fn rejects_malformed_arguments() {
        for bad in [
            "target virtual()",
            "target device(abc)",
            "target name_as()",
            "target virtual(w",
            "target virtual(w))",
        ] {
            assert!(
                TargetDirective::parse(bad).is_err(),
                "should reject `{bad}`"
            );
        }
    }

    #[test]
    fn round_trips_directive_text() {
        for text in [
            "target virtual(worker) nowait",
            "target virtual(edt)",
            "target device(1) name_as(jobs) wait(prev)",
            "target virtual(w) await if(x)",
        ] {
            let d = TargetDirective::parse(text).unwrap();
            let rendered = d.to_directive_text();
            let d2 = TargetDirective::parse(&rendered).unwrap();
            assert_eq!(d, d2, "round trip changed `{text}` → `{rendered}`");
        }
    }
}
