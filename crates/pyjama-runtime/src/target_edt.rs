//! EDT virtual targets: a registered event-dispatch thread as an executor.
//!
//! `virtual_target_register_edt(tname)`: "the thread which invokes this
//! function will be registered as a virtual target named tname" (Table II).
//! Here the EDT is represented by its [`EventLoopHandle`]; a target block
//! posted to an EDT target becomes an event on that loop, and the member
//! short-circuit makes `target virtual(edt)` free when already on the EDT —
//! exactly the *thread-context awareness* of §III-B.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use pyjama_events::pump;
use pyjama_events::EventLoopHandle;

use crate::executor::{TargetKind, TargetStats, TargetStatsInner, VirtualTarget};
use crate::task::TargetRegion;

/// A virtual target backed by an event loop's dispatch thread.
pub struct EdtTarget {
    name: String,
    handle: EventLoopHandle,
    stats: TargetStatsInner,
}

impl EdtTarget {
    /// Wraps an event loop as a named virtual target.
    pub fn new(name: impl Into<String>, handle: EventLoopHandle) -> Arc<Self> {
        Arc::new(EdtTarget {
            name: name.into(),
            handle,
            stats: TargetStatsInner::default(),
        })
    }

    /// The underlying loop handle.
    pub fn loop_handle(&self) -> &EventLoopHandle {
        &self.handle
    }
}

impl VirtualTarget for EdtTarget {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> TargetKind {
        TargetKind::Edt
    }

    fn post(&self, region: Arc<TargetRegion>) {
        self.stats.posted.fetch_add(1, Ordering::Relaxed);
        let posted = self.handle.post({
            let region = Arc::clone(&region);
            move || {
                region.execute();
                // Offer the region back to the recycler. Best effort: if
                // the poster's clone is still in flight the region just
                // drops normally.
                crate::slab::release(region);
            }
        });
        if posted.is_none() {
            // The loop has shut down; a block that can never run must not
            // deadlock waiters. Execute inline as a last resort — the data
            // context is shared either way; only thread affinity is lost.
            region.execute();
            crate::slab::release(region);
        } else {
            self.stats.executed.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn is_member(&self) -> bool {
        self.handle.is_loop_thread()
    }

    fn help_one(&self) -> bool {
        if !self.is_member() {
            return false;
        }
        let helped = pump::try_pump_current();
        if helped {
            self.stats.helped.fetch_add(1, Ordering::Relaxed);
        }
        helped
    }

    fn pending(&self) -> usize {
        self.handle.pending()
    }

    fn stats(&self) -> TargetStats {
        self.stats.snapshot()
    }
}

impl std::fmt::Debug for EdtTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdtTarget")
            .field("name", &self.name)
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyjama_events::Edt;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn posts_become_events_on_the_loop() {
        let edt = Edt::spawn("edt");
        let target = EdtTarget::new("edt", edt.handle());
        let ran_on_loop = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran_on_loop);
        let lh = edt.handle();
        let region = TargetRegion::new("t", move || {
            r2.store(lh.is_loop_thread(), Ordering::SeqCst);
        });
        let h = region.handle();
        target.post(region);
        h.wait();
        assert!(ran_on_loop.load(Ordering::SeqCst));
        assert_eq!(target.stats().posted, 1);
    }

    #[test]
    fn member_only_on_the_dispatch_thread() {
        let edt = Edt::spawn("edt");
        let target = EdtTarget::new("edt", edt.handle());
        assert!(!target.is_member());
        let t2 = Arc::clone(&target);
        assert!(edt.invoke_and_wait(move || t2.is_member()));
    }

    #[test]
    fn help_one_pumps_reentrantly() {
        let edt = Edt::spawn("edt");
        let target = EdtTarget::new("edt", edt.handle());
        let observed = Arc::new(AtomicBool::new(false));

        // Handler A (on the EDT) helps; event B queued behind it is pumped
        // from inside A.
        let t2 = Arc::clone(&target);
        let o2 = Arc::clone(&observed);
        let ib = Arc::new(AtomicBool::new(false));
        let ib2 = Arc::clone(&ib);
        edt.invoke_later(move || {
            // Give B time to be queued.
            while !ib2.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            o2.store(t2.help_one(), Ordering::SeqCst);
        });
        edt.invoke_later({
            let ib = Arc::clone(&ib);
            move || {
                let _ = &ib;
            }
        });
        ib.store(true, Ordering::SeqCst);
        edt.invoke_and_wait(|| {});
        assert!(observed.load(Ordering::SeqCst));
        assert_eq!(target.stats().helped, 1);
    }

    #[test]
    fn help_one_from_outside_is_false() {
        let edt = Edt::spawn("edt");
        let target = EdtTarget::new("edt", edt.handle());
        assert!(!target.help_one());
    }

    #[test]
    fn post_after_shutdown_executes_inline() {
        let mut edt = Edt::spawn("edt");
        let target = EdtTarget::new("edt", edt.handle());
        edt.shutdown();
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        let region = TargetRegion::new("t", move || r2.store(true, Ordering::SeqCst));
        let h = region.handle();
        target.post(region);
        h.wait();
        assert!(ran.load(Ordering::SeqCst));
    }
}
