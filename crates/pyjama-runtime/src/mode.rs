//! Scheduling-property clauses (paper §III-A, Table I).

/// The asynchronous-execution mode of a target block — the paper's
/// *scheduling-property-clause* (`nowait`, `name_as(tag)`, `await`, or
/// nothing).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// No clause: "the encountering thread will busy-wait until the target
    /// code block is finished by the specified target … corresponds to the
    /// standard OpenMP behavior of the target directive" (§III-C).
    Wait,
    /// `nowait`: skip the block, continue immediately, no notification —
    /// "the code block can be safely invoked and ignored".
    NoWait,
    /// `name_as(tag)`: skip the block but remember it under `tag`; a later
    /// `wait(tag)` ([`crate::Runtime::wait_tag`]) synchronises with *all*
    /// blocks sharing the tag.
    NameAs(String),
    /// `await`: skip blocking — while the target block runs, the
    /// encountering thread "returns to the event loop in search of another
    /// event to process"; statements after the block run only once it
    /// completes.
    Await,
}

impl Mode {
    /// Convenience constructor for [`Mode::NameAs`].
    pub fn name_as(tag: impl Into<String>) -> Self {
        Mode::NameAs(tag.into())
    }

    /// True for the modes where the encountering thread continues past the
    /// block without waiting at the invocation point (`nowait`, `name_as`).
    pub fn is_fire_and_forget(&self) -> bool {
        matches!(self, Mode::NoWait | Mode::NameAs(_))
    }

    /// True when the encountering thread may not proceed past the block
    /// until it completes (`wait` and `await`).
    pub fn blocks_continuation(&self) -> bool {
        matches!(self, Mode::Wait | Mode::Await)
    }

    /// The clause spelling used in directives, e.g. `name_as(tag)`.
    pub fn clause_text(&self) -> String {
        match self {
            Mode::Wait => String::new(),
            Mode::NoWait => "nowait".to_string(),
            Mode::NameAs(tag) => format!("name_as({tag})"),
            Mode::Await => "await".to_string(),
        }
    }
}

impl Default for Mode {
    /// The default scheduling behaviour is `wait` (§III-C "Default").
    fn default() -> Self {
        Mode::Wait
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Wait => write!(f, "wait"),
            Mode::NoWait => write!(f, "nowait"),
            Mode::NameAs(tag) => write!(f, "name_as({tag})"),
            Mode::Await => write!(f, "await"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_wait() {
        assert_eq!(Mode::default(), Mode::Wait);
    }

    #[test]
    fn classification_matches_table_one() {
        assert!(!Mode::Wait.is_fire_and_forget());
        assert!(Mode::NoWait.is_fire_and_forget());
        assert!(Mode::name_as("t").is_fire_and_forget());
        assert!(!Mode::Await.is_fire_and_forget());

        assert!(Mode::Wait.blocks_continuation());
        assert!(Mode::Await.blocks_continuation());
        assert!(!Mode::NoWait.blocks_continuation());
    }

    #[test]
    fn clause_text_round_trips_spelling() {
        assert_eq!(Mode::Wait.clause_text(), "");
        assert_eq!(Mode::NoWait.clause_text(), "nowait");
        assert_eq!(Mode::name_as("jobs").clause_text(), "name_as(jobs)");
        assert_eq!(Mode::Await.clause_text(), "await");
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Mode::Wait.to_string(), "wait");
        assert_eq!(Mode::name_as("x").to_string(), "name_as(x)");
    }
}
