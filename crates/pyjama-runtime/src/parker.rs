//! The wake-driven parker behind the `await` logical barrier.
//!
//! The barrier used to fall back to a timed poll: park for a 200µs quantum,
//! re-check, repeat. Any work arriving while the encountering thread was
//! parked waited out the remainder of the quantum before being helped, and a
//! plain thread burnt a wakeup per quantum on a condition that can only
//! change once. [`WakeSignal`] replaces that with real wakeups.
//!
//! One signal is created per barrier entry and registered with every source
//! that can either resolve the barrier or produce work for it to help with:
//!
//! 1. the terminal transition of the awaited [`TaskHandle`]
//!    ([`TaskHandle::add_waker`](crate::task)),
//! 2. events posted to the event loop the thread is currently running
//!    (`pyjama-events`' [`QueueWaker`] hook on the loop's queue),
//! 3. regions enqueued on — or shutdown of — the worker pool the thread
//!    belongs to ([`WorkerTarget`] waker registration).
//!
//! ## Why registration is race-free
//!
//! `notify` stores a *permit* that a later `park` consumes without blocking,
//! so a wake arriving between "no work observed" and "thread parked" is
//! never lost. The barrier registers with all sources *before* its first
//! check: work or completion that predates registration is caught by the
//! check, anything later sets the permit. Deregistration is by token through
//! RAII guards; tokens are never reused, so a deregistration racing a
//! concurrent drain (task completion takes the waker list) or a re-entrant
//! barrier on the same thread (which holds its own signal and tokens) cannot
//! remove the wrong entry — the ABA hazard of a slot-based scheme does not
//! exist here.
//!
//! Timers are the one wake that has no post-side hook (nothing "arrives"
//! when a deadline passes), so a parked EDT bounds its sleep by the loop's
//! next timer deadline — an exact event time, not a poll quantum.
//!
//! Model-checked twin: `pyjama-check/src/models/parker.rs` ports
//! [`WakeSignal`] and the `await_until_inner` accounting loop onto
//! instrumented shims and explores the notify-vs-park and wake-vs-deadline
//! races (plus mutations that re-lose the permit and re-introduce the
//! timeout spurious-undercount). Keep the port in sync with protocol
//! changes here — DESIGN.md §5h.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use pyjama_events::{pump, EventLoopHandle, QueueWaker};
use pyjama_metrics::park::ParkCounters;
pub use pyjama_metrics::park::ParkStats;
use pyjama_trace::Stage;

use crate::task::TaskHandle;
use crate::worker::WorkerTarget;

/// Process-wide parker counters (all barriers, all threads).
static COUNTERS: ParkCounters = ParkCounters::new();

/// Snapshot of the process-wide park/wake counters: how often await barriers
/// actually blocked, how often wake sources fired, and how many wakeups
/// delivered no work.
pub fn park_stats() -> ParkStats {
    COUNTERS.snapshot()
}

/// Zeroes the process-wide park/wake counters. Increments racing the reset
/// land on either side of it; quiesce barriers first for exact figures.
pub fn reset_park_stats() {
    COUNTERS.reset();
}

struct SignalState {
    /// A pending wake not yet consumed by `park`.
    permit: bool,
    /// Whether the owner is currently blocked in `park`/`park_until`.
    parked: bool,
}

/// A one-thread parker with permit semantics: `notify` from any thread,
/// `park` from the owning thread. A notify delivered while the owner is not
/// parked is stored and satisfies the next park immediately.
pub struct WakeSignal {
    state: Mutex<SignalState>,
    cond: Condvar,
}

impl WakeSignal {
    /// A fresh signal with no pending permit.
    pub fn new() -> Self {
        WakeSignal {
            state: Mutex::new(SignalState {
                permit: false,
                parked: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Wakes the owning thread: sets the permit and, if the owner is parked,
    /// releases it. Callable from any thread, any number of times; permits
    /// do not accumulate.
    pub fn notify(&self) {
        COUNTERS.record_notify();
        let mut g = self.state.lock();
        g.permit = true;
        let parked = g.parked;
        drop(g);
        if parked {
            self.cond.notify_all();
        }
    }

    /// Blocks until a permit is available, then consumes it. Returns
    /// immediately (without blocking) if a permit is already pending.
    pub fn park(&self) {
        let mut g = self.state.lock();
        if g.permit {
            g.permit = false;
            return;
        }
        g.parked = true;
        COUNTERS.record_park();
        while !g.permit {
            self.cond.wait(&mut g);
        }
        g.permit = false;
        g.parked = false;
        COUNTERS.record_wake();
    }

    /// Like [`park`](Self::park) but gives up at `deadline`. Returns `true`
    /// if a permit was consumed, `false` on timeout.
    pub fn park_until(&self, deadline: Instant) -> bool {
        let mut g = self.state.lock();
        if g.permit {
            g.permit = false;
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        g.parked = true;
        COUNTERS.record_park();
        while !g.permit {
            if self.cond.wait_until(&mut g, deadline).timed_out() {
                break;
            }
        }
        g.parked = false;
        let notified = g.permit;
        g.permit = false;
        if notified {
            COUNTERS.record_wake();
        }
        notified
    }
}

impl Default for WakeSignal {
    fn default() -> Self {
        Self::new()
    }
}

impl QueueWaker for WakeSignal {
    fn wake(&self) {
        self.notify();
    }
}

/// RAII deregistration from the awaited task's waker list.
struct TaskWakerGuard<'a> {
    handle: &'a TaskHandle,
    id: u64,
}

impl Drop for TaskWakerGuard<'_> {
    fn drop(&mut self) {
        self.handle.remove_waker(self.id);
    }
}

/// RAII deregistration from an event loop's queue wakers.
struct LoopWakerGuard {
    handle: EventLoopHandle,
    id: u64,
}

impl Drop for LoopWakerGuard {
    fn drop(&mut self) {
        self.handle.remove_waker(self.id);
    }
}

/// The wake-driven logical barrier loop shared by
/// [`Runtime::await_barrier`](crate::Runtime::await_barrier) and the
/// deadline-bounded pumping joins. Helps (pumps the current event loop,
/// drains the current pool's queue) while work is available; parks on a
/// [`WakeSignal`] otherwise. Returns whether `handle` reached a terminal
/// state (always `true` when `deadline` is `None`).
pub(crate) fn await_until(handle: &TaskHandle, deadline: Option<Instant>) -> bool {
    if handle.is_finished() {
        return true;
    }
    let trace = handle.trace_id();
    pyjama_trace::emit(trace, Stage::BarrierEnter, 0);
    let finished = await_until_inner(handle, deadline, trace);
    pyjama_trace::emit(trace, Stage::BarrierExit, finished as u32);
    finished
}

fn await_until_inner(handle: &TaskHandle, deadline: Option<Instant>, trace: pyjama_trace::TraceId) -> bool {
    let signal = Arc::new(WakeSignal::new());

    // Register with every wake source *before* the first work check. Any
    // post or completion from here on sets the permit; anything earlier is
    // observed by the checks below. The guards deregister on every exit
    // path, including a propagating panic.
    let _task_guard = TaskWakerGuard {
        id: handle.add_waker(Arc::clone(&signal)),
        handle,
    };
    let loop_handle = pump::current_handle();
    let _loop_guard = loop_handle.as_ref().map(|h| LoopWakerGuard {
        id: h.add_waker(Arc::clone(&signal) as Arc<dyn QueueWaker>),
        handle: h.clone(),
    });
    let _pool_guard = WorkerTarget::register_current_waker(&signal);

    let mut woke_with_no_work = false;
    loop {
        if handle.is_finished() {
            return true;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                // The wake that brought us to this exit (if any) delivered
                // no work either — record it before leaving, or deadline
                // exits would silently eat one no-work wakeup.
                if woke_with_no_work {
                    COUNTERS.record_spurious();
                }
                return handle.is_finished();
            }
        }
        if pump::try_pump_current() || WorkerTarget::help_current_thread_pool() {
            woke_with_no_work = false;
            continue;
        }
        if woke_with_no_work {
            COUNTERS.record_spurious();
        }
        // Nothing to help with: park until a wake source fires, bounding the
        // sleep only by real deadlines (the caller's, or the loop's next
        // timer) — never by a poll quantum.
        let timer = loop_handle.as_ref().and_then(|h| h.next_timer_deadline());
        let until = match (deadline, timer) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        pyjama_trace::emit(trace, Stage::BarrierPark, 0);
        let notified = match until {
            Some(d) => signal.park_until(d),
            None => {
                signal.park();
                true
            }
        };
        // A timeout return is still a wakeup: if the next iteration finds
        // no work, it was a no-work wakeup regardless of who caused it.
        // (The old `woke_with_no_work = notified` under-counted: every
        // timeout-then-idle cycle was invisible in the spurious stats.
        // The model checker's parker-timeout-not-spurious mutation keeps
        // this exact bug pinned — see pyjama-check.)
        woke_with_no_work = true;
        pyjama_trace::emit(trace, Stage::BarrierWake, notified as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn notify_before_park_is_not_lost() {
        let s = WakeSignal::new();
        s.notify();
        let t0 = Instant::now();
        s.park(); // must not block
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn permits_do_not_accumulate() {
        let s = WakeSignal::new();
        s.notify();
        s.notify();
        s.park(); // consumes the single stored permit
        assert!(
            !s.park_until(Instant::now() + Duration::from_millis(10)),
            "second park must time out: permits are binary"
        );
    }

    #[test]
    fn park_blocks_until_notify() {
        let s = Arc::new(WakeSignal::new());
        let released = Arc::new(AtomicBool::new(false));
        let (s2, r2) = (Arc::clone(&s), Arc::clone(&released));
        let t = std::thread::spawn(move || {
            s2.park();
            r2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!released.load(Ordering::SeqCst), "park must block");
        s.notify();
        t.join().unwrap();
        assert!(released.load(Ordering::SeqCst));
    }

    #[test]
    fn park_until_times_out_without_notify() {
        let s = WakeSignal::new();
        let t0 = Instant::now();
        assert!(!s.park_until(t0 + Duration::from_millis(20)));
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn park_until_woken_by_notify() {
        let s = Arc::new(WakeSignal::new());
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            s2.notify();
        });
        assert!(s.park_until(Instant::now() + Duration::from_secs(5)));
        t.join().unwrap();
    }

    #[test]
    fn counters_record_park_and_wake() {
        let before = park_stats();
        let s = Arc::new(WakeSignal::new());
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            s2.notify();
        });
        s.park();
        t.join().unwrap();
        let after = park_stats();
        assert!(after.parks > before.parks);
        assert!(after.wakes > before.wakes);
        assert!(after.notifies > before.notifies);
    }

    #[test]
    fn await_until_deadline_expires_on_stuck_task() {
        let region = crate::task::TargetRegion::new("never-runs", || {});
        let handle = region.handle();
        let t0 = Instant::now();
        assert!(!await_until(
            &handle,
            Some(t0 + Duration::from_millis(30))
        ));
        assert!(t0.elapsed() >= Duration::from_millis(30));
        // The barrier's waker guards must have deregistered.
        region.execute(); // no stale waker to notify; nothing panics
    }

    #[test]
    fn await_until_timeout_counts_spurious_wake() {
        // A stuck task with a deadline: the barrier parks, times out, and
        // exits having found no work. That timeout wake must show up in the
        // spurious counter — the pre-PR-6 code cleared `woke_with_no_work`
        // on timeout returns and never recorded timeout-then-idle cycles.
        let before = park_stats();
        let region = crate::task::TargetRegion::new("stuck", || {});
        let handle = region.handle();
        assert!(!await_until(
            &handle,
            Some(Instant::now() + Duration::from_millis(30))
        ));
        let after = park_stats();
        assert!(
            after.spurious_wakes > before.spurious_wakes,
            "timeout-then-idle exit must count as a spurious (no-work) wake"
        );
    }

    #[test]
    fn await_until_wakes_on_completion_not_by_polling() {
        // A plain thread (no loop, no pool): the only wake source is the
        // task's terminal transition. The barrier must return promptly after
        // it and must park at most a couple of times (no poll storm).
        let before = park_stats();
        let region = crate::task::TargetRegion::new("slow", || {
            std::thread::sleep(Duration::from_millis(50));
        });
        let handle = region.handle();
        let runner = {
            let region = std::sync::Arc::clone(&region);
            std::thread::spawn(move || region.execute())
        };
        assert!(await_until(&handle, None));
        runner.join().unwrap();
        let after = park_stats();
        // Old behaviour: 50ms / 200µs ≈ 250 timed parks. Wake-driven: the
        // thread parks once (maybe twice under scheduling noise). Other
        // tests run concurrently, so bound the *delta* loosely.
        assert!(
            after.parks - before.parks < 50,
            "parks jumped by {} — looks like polling",
            after.parks - before.parks
        );
    }
}
