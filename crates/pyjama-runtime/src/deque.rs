//! A Chase–Lev work-stealing deque, implemented in-repo on `std::sync::atomic`.
//!
//! One deque belongs to each worker-pool thread. The *owner* pushes and pops
//! at the bottom (LIFO, cache-warm); *thieves* steal single items from the
//! top (FIFO, oldest first). This is the classic dynamic circular work-
//! stealing deque of Chase & Lev (SPAA 2005); the memory orderings follow
//! the C11 formulation proven correct by Lê, Pop, Cohen & Zappa Nardelli,
//! *Correct and Efficient Work-Stealing for Weak Memory Models* (PPoPP 2013).
//!
//! ## Ownership discipline
//!
//! The type is `pub(crate)` and relies on a structural invariant the worker
//! pool upholds: [`push`](ChaseLev::push) and [`pop`](ChaseLev::pop) are
//! only ever called from the one thread that owns the deque (pool thread
//! `i` for slot `i`), while [`steal`](ChaseLev::steal) and
//! [`len`](ChaseLev::len) may be called from anywhere. Owner calls are
//! never concurrent with each other — re-entrant helping (an await barrier
//! inside a running task) is same-thread and therefore sequential.
//!
//! ## Memory reclamation
//!
//! Growing swaps in a doubled buffer while thieves may still hold a pointer
//! to the old one. Instead of an epoch scheme, retired buffers are parked in
//! a `Mutex<Vec<_>>` owned by the deque and freed when the deque drops.
//! Capacity doubles on each growth, so the retired chain totals less than
//! the final buffer — bounded memory for an unbounded-lifetime pool.
//!
//! Items are stored as raw `Box` pointers so a steal that loses its CAS race
//! can simply abandon the slot without dropping or duplicating the value.
//! A lost race surfaces to the caller as [`Steal::Retry`] (the PPoPP-2013
//! ABORT outcome) so thieves rotate to the next victim instead of spinning
//! on one contended deque.
//!
//! ## Model-checked twin
//!
//! `pyjama-check/src/models/deque.rs` ports push/pop/steal (same operation
//! order, same memory orderings) onto instrumented shims and explores their
//! interleavings under TSO store buffers, including mutation tests that
//! re-weaken the orderings below. **If you change an ordering or reorder
//! operations here, update the model port in the same PR** — DESIGN.md §5h
//! explains the port-sync discipline.

use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

use parking_lot::Mutex;

/// Result of one [`ChaseLev::steal`] probe.
///
/// `Retry` is the PPoPP-2013 ABORT outcome: the thief lost the `top` CAS to
/// the owner or another thief, so the probed item went to someone else (the
/// system made progress). The caller should move on — to its next victim,
/// or to the injector — instead of spinning on one hot deque, and may treat
/// a `Retry` round as "work may still exist" when deciding whether to park.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Steal<T> {
    /// Claimed the oldest item.
    Item(T),
    /// The deque was observed empty.
    Empty,
    /// Lost the claim race; try elsewhere rather than spinning here.
    Retry,
}

/// A growable circular buffer of raw item pointers.
///
/// Slots are `AtomicPtr` solely so concurrent owner-writes and thief-reads
/// of the *same slot* are not a data race in the Rust memory model; the
/// deque protocol (fences + the `top` CAS) provides the actual ordering.
struct Buffer<T> {
    mask: usize,
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer { mask: cap - 1, slots })
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    fn slot(&self, index: isize) -> &AtomicPtr<T> {
        &self.slots[index as usize & self.mask]
    }
}

/// A work-stealing deque of `T` values. See the module docs for the
/// ownership discipline and memory-ordering provenance.
pub(crate) struct ChaseLev<T> {
    /// Next index a thief steals from; only ever incremented (by a
    /// successful CAS in `steal` or the owner's last-item CAS in `pop`).
    top: AtomicIsize,
    /// Next index the owner pushes to; moved only by the owner.
    bottom: AtomicIsize,
    /// The live buffer; replaced (by the owner) on growth.
    buffer: AtomicPtr<Buffer<T>>,
    /// Outgrown buffers, kept alive until drop — see module docs.
    retired: Mutex<Vec<Box<Buffer<T>>>>,
    _marker: PhantomData<T>,
}

// The deque hands `T` values across threads (owner push → thief steal), so
// `T: Send` is required and sufficient; the shared state is all atomics.
unsafe impl<T: Send> Send for ChaseLev<T> {}
unsafe impl<T: Send> Sync for ChaseLev<T> {}

impl<T> ChaseLev<T> {
    /// An empty deque with room for `min_cap` items before the first growth
    /// (rounded up to a power of two, at least 2).
    pub(crate) fn with_capacity(min_cap: usize) -> Self {
        let cap = min_cap.next_power_of_two().max(2);
        ChaseLev {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Buffer::new(cap))),
            retired: Mutex::new(Vec::new()),
            _marker: PhantomData,
        }
    }

    /// An empty deque with the default initial capacity.
    pub(crate) fn new() -> Self {
        Self::with_capacity(64)
    }

    /// Approximate number of queued items. Lock-free; exact when no
    /// operation is in flight, never negative.
    pub(crate) fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Acquire);
        let t = self.top.load(Ordering::Acquire);
        b.saturating_sub(t).max(0) as usize
    }

    /// True when [`len`](Self::len) observes zero items.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: pushes an item at the bottom. Grows the buffer when full.
    pub(crate) fn push(&self, value: T) {
        let item = Box::into_raw(Box::new(value));
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // Only the owner stores `buffer`, so a relaxed load reads its own
        // last store; thieves use Acquire.
        let mut buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t >= buf.cap() as isize {
            self.grow(b, t, buf);
            buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        }
        buf.slot(b).store(item, Ordering::Relaxed);
        // Publish the slot before the new bottom: a thief that Acquire-loads
        // the incremented bottom must see the item pointer.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pops the most recently pushed item (LIFO).
    pub(crate) fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        // Store-load barrier: the bottom decrement must be visible to
        // thieves before we read top, or owner and thief could both take
        // the same last item (Lê et al. §3.1).
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            // Non-empty. The slot read races no one unless b == t.
            let item = buf.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Last item: race thieves for it via the top CAS.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    // A thief got it; the pointer is theirs now.
                    return None;
                }
            }
            Some(unsafe { *Box::from_raw(item) })
        } else {
            // Already empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Probes the top of the deque once, claiming the oldest item (FIFO).
    /// Callable from any thread. A lost CAS race returns [`Steal::Retry`]
    /// instead of looping internally, so a caller rotating over victims
    /// moves on rather than spinning on one contended deque (and so probe
    /// counters count actual probes).
    pub(crate) fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // Load-load barrier ordering the top read before the bottom read,
        // pairing with the owner's SeqCst fence in `pop`.
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Acquire pairs with the owner's buffer-swap store in `grow`.
        let buf = unsafe { &*self.buffer.load(Ordering::Acquire) };
        let item = buf.slot(t).load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Item(unsafe { *Box::from_raw(item) })
        } else {
            // Lost the race for index t: the item went to the owner or
            // another thief.
            Steal::Retry
        }
    }

    /// Owner-only: doubles the buffer, copying the live range `t..b`.
    fn grow(&self, b: isize, t: isize, old: &Buffer<T>) {
        let new = Buffer::new(old.cap() * 2);
        let mut i = t;
        while i < b {
            new.slot(i)
                .store(old.slot(i).load(Ordering::Relaxed), Ordering::Relaxed);
            i += 1;
        }
        let old_ptr = self.buffer.load(Ordering::Relaxed);
        // Release: a thief Acquire-loading the new buffer pointer sees the
        // copied slots.
        self.buffer.store(Box::into_raw(new), Ordering::Release);
        // Keep the old buffer alive: a concurrent thief may still read its
        // slots. Freed when the deque itself drops.
        self.retired.lock().push(unsafe { Box::from_raw(old_ptr) });
    }
}

impl<T> Drop for ChaseLev<T> {
    fn drop(&mut self) {
        // Exclusive access: drain remaining items so their destructors run.
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        let buf = unsafe { Box::from_raw(self.buffer.load(Ordering::Relaxed)) };
        let mut i = t;
        while i < b {
            let item = buf.slot(i).load(Ordering::Relaxed);
            drop(unsafe { Box::from_raw(item) });
            i += 1;
        }
        // `buf` and the retired buffers drop here.
    }
}

impl<T> Default for ChaseLev<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for ChaseLev<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaseLev").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn lifo_for_owner() {
        let d = ChaseLev::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn fifo_for_thief() {
        let d = ChaseLev::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), Steal::Item(1));
        assert_eq!(d.steal(), Steal::Item(2));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let d = ChaseLev::with_capacity(2);
        for i in 0..1000 {
            d.push(i);
        }
        assert_eq!(d.len(), 1000);
        // Oldest at the top, newest at the bottom — across several growths.
        assert_eq!(d.steal(), Steal::Item(0));
        assert_eq!(d.pop(), Some(999));
        for expected in (1..999).rev() {
            assert_eq!(d.pop(), Some(expected));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn len_tracks_pushes_pops_steals() {
        let d = ChaseLev::new();
        assert!(d.is_empty());
        d.push(7);
        d.push(8);
        assert_eq!(d.len(), 2);
        d.steal();
        assert_eq!(d.len(), 1);
        d.pop();
        assert!(d.is_empty());
    }

    #[test]
    fn drop_releases_remaining_items() {
        let live = Arc::new(AtomicUsize::new(0));
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let d = ChaseLev::with_capacity(2);
        for _ in 0..100 {
            live.fetch_add(1, Ordering::SeqCst);
            d.push(Counted(Arc::clone(&live)));
        }
        drop(d);
        assert_eq!(live.load(Ordering::SeqCst), 0, "drop must free queued items");
    }

    /// `steal` is a single probe: when several thieves race for one item,
    /// exactly one gets `Item` and every loser returns immediately with
    /// `Empty` or `Retry` — it never blocks or spins internally.
    #[test]
    fn contended_single_probe_claims_item_exactly_once() {
        for _ in 0..200 {
            let d = Arc::new(ChaseLev::with_capacity(2));
            d.push(42usize);
            let won = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let d = Arc::clone(&d);
                    let won = Arc::clone(&won);
                    s.spawn(move || match d.steal() {
                        Steal::Item(v) => {
                            assert_eq!(v, 42);
                            won.fetch_add(1, Ordering::SeqCst);
                        }
                        Steal::Empty | Steal::Retry => {}
                    });
                }
            });
            // Every thief saw the pre-spawn push, so the CASes all start
            // from the same top index and exactly one can win it.
            assert_eq!(won.load(Ordering::SeqCst), 1);
            assert_eq!(d.pop(), None);
        }
    }

    /// The steal-vs-owner-pop race: one owner pushing and popping, several
    /// thieves stealing, every item claimed exactly once. This is the
    /// single-last-item CAS race at the heart of the algorithm.
    #[test]
    fn steal_vs_owner_pop_race_claims_each_item_once() {
        const ITEMS: usize = 20_000;
        const THIEVES: usize = 3;
        let d = Arc::new(ChaseLev::with_capacity(4));
        let claimed = Arc::new(Mutex::new(HashSet::new()));

        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                let d = Arc::clone(&d);
                let claimed = Arc::clone(&claimed);
                s.spawn(move || {
                    let mut mine = Vec::new();
                    // Keep stealing until the owner is done and the deque
                    // observed empty.
                    loop {
                        match d.steal() {
                            Steal::Item(v) => mine.push(v),
                            // Lost a race: someone else made progress; the
                            // real scheduler would move to its next victim.
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if d.len() == 0 && Arc::strong_count(&d) <= THIEVES + 1 {
                                    // Owner dropped its handle: one more
                                    // probe confirms the deque stayed dry.
                                    match d.steal() {
                                        Steal::Item(v) => mine.push(v),
                                        Steal::Empty => break,
                                        Steal::Retry => {}
                                    }
                                } else {
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                    let mut g = claimed.lock();
                    for v in mine {
                        assert!(g.insert(v), "item {v} claimed twice");
                    }
                });
            }
            {
                let d = Arc::clone(&d);
                let claimed = Arc::clone(&claimed);
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..ITEMS {
                        d.push(i);
                        // Interleave pops so the owner contends on the last
                        // item with thieves constantly.
                        if i % 2 == 0 {
                            if let Some(v) = d.pop() {
                                mine.push(v);
                            }
                        }
                    }
                    while let Some(v) = d.pop() {
                        mine.push(v);
                    }
                    let mut g = claimed.lock();
                    for v in mine {
                        assert!(g.insert(v), "item {v} claimed twice");
                    }
                    drop(d); // signals the thieves via strong_count
                });
            }
        });

        assert_eq!(
            claimed.lock().len(),
            ITEMS,
            "every pushed item must be claimed exactly once"
        );
    }
}
