//! A Chase–Lev work-stealing deque, implemented in-repo on `std::sync::atomic`.
//!
//! One deque belongs to each worker-pool thread. The *owner* pushes and pops
//! at the bottom (LIFO, cache-warm); *thieves* steal single items from the
//! top (FIFO, oldest first). This is the classic dynamic circular work-
//! stealing deque of Chase & Lev (SPAA 2005); the memory orderings follow
//! the C11 formulation proven correct by Lê, Pop, Cohen & Zappa Nardelli,
//! *Correct and Efficient Work-Stealing for Weak Memory Models* (PPoPP 2013).
//!
//! ## Ownership discipline
//!
//! The type is `pub(crate)` and relies on a structural invariant the worker
//! pool upholds: [`push`](ChaseLev::push) and [`pop`](ChaseLev::pop) are
//! only ever called from the one thread that owns the deque (pool thread
//! `i` for slot `i`), while [`steal`](ChaseLev::steal) and
//! [`len`](ChaseLev::len) may be called from anywhere. Owner calls are
//! never concurrent with each other — re-entrant helping (an await barrier
//! inside a running task) is same-thread and therefore sequential.
//!
//! ## Memory reclamation
//!
//! Growing swaps in a doubled buffer while thieves may still hold a pointer
//! to the old one. Instead of an epoch scheme, retired buffers are parked in
//! a `Mutex<Vec<_>>` owned by the deque and freed when the deque drops.
//! Capacity doubles on each growth, so the retired chain totals less than
//! the final buffer — bounded memory for an unbounded-lifetime pool.
//!
//! Items are stored as raw pointers so a steal that loses its CAS race can
//! simply abandon the slot without dropping or duplicating the value. The
//! pointer is the *item's own* allocation ([`PointerItem`]): pushing an
//! `Arc<TargetRegion>` stores the `Arc`'s pointer directly — the deque adds
//! **zero** allocations per item (it used to box every value, one heap
//! round trip per push on the hot path). A lost race surfaces to the caller
//! as [`Steal::Retry`] (the PPoPP-2013 ABORT outcome) so thieves rotate to
//! the next victim instead of spinning on one contended deque.
//!
//! ## Batched stealing
//!
//! [`steal_half`](ChaseLev::steal_half) claims up to half of the victim's
//! observed run, one proven single-item CAS at a time, parking the surplus
//! on the thief's **own** deque (where it is the owner). A single
//! range-CAS of `top` (claim `[t, t+k)` in one step) would be unsound
//! against this owner `pop`: the owner decrements `bottom` *without* a CAS
//! and only races for the last item, so it can take an index strictly
//! inside a thief's claimed range after the thief read `bottom` but before
//! its top-CAS lands — a double-take no fence repairs. The per-item claim
//! loop keeps every claim exactly the PPoPP-2013-verified probe and stops
//! early the moment one is lost.
//!
//! ## Model-checked twin
//!
//! `pyjama-check/src/models/deque.rs` ports push/pop/steal (same operation
//! order, same memory orderings) onto instrumented shims and explores their
//! interleavings under TSO store buffers, including mutation tests that
//! re-weaken the orderings below. **If you change an ordering or reorder
//! operations here, update the model port in the same PR** — DESIGN.md §5h
//! explains the port-sync discipline.

use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// An owned value that round-trips through a single raw pointer, letting
/// the deque store it in an `AtomicPtr` slot without an extra box.
///
/// # Safety
///
/// `into_ptr` must return a non-null pointer that uniquely represents the
/// value (ownership transfers to the pointer), and `from_ptr` must be the
/// exact inverse, called at most once per `into_ptr`.
pub(crate) unsafe trait PointerItem: Send {
    fn into_ptr(self) -> *mut ();
    /// # Safety
    /// `ptr` must come from `into_ptr` of the same type, unconsumed.
    unsafe fn from_ptr(ptr: *mut ()) -> Self;
}

// SAFETY: `Arc::into_raw` / `Arc::from_raw` are exactly this contract.
unsafe impl<T: Send + Sync> PointerItem for Arc<T> {
    fn into_ptr(self) -> *mut () {
        Arc::into_raw(self) as *mut ()
    }
    unsafe fn from_ptr(ptr: *mut ()) -> Self {
        unsafe { Arc::from_raw(ptr as *const T) }
    }
}

// SAFETY: likewise for `Box::into_raw` / `Box::from_raw`.
unsafe impl<T: Send> PointerItem for Box<T> {
    fn into_ptr(self) -> *mut () {
        Box::into_raw(self) as *mut ()
    }
    unsafe fn from_ptr(ptr: *mut ()) -> Self {
        unsafe { Box::from_raw(ptr as *mut T) }
    }
}

/// Result of one [`ChaseLev::steal`] probe.
///
/// `Retry` is the PPoPP-2013 ABORT outcome: the thief lost the `top` CAS to
/// the owner or another thief, so the probed item went to someone else (the
/// system made progress). The caller should move on — to its next victim,
/// or to the injector — instead of spinning on one hot deque, and may treat
/// a `Retry` round as "work may still exist" when deciding whether to park.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Steal<T> {
    /// Claimed the oldest item.
    Item(T),
    /// The deque was observed empty.
    Empty,
    /// Lost the claim race; try elsewhere rather than spinning here.
    Retry,
}

/// A growable circular buffer of raw item pointers (untyped; the deque's
/// `PhantomData<T>` carries the item type).
///
/// Slots are `AtomicPtr` solely so concurrent owner-writes and thief-reads
/// of the *same slot* are not a data race in the Rust memory model; the
/// deque protocol (fences + the `top` CAS) provides the actual ordering.
struct Buffer {
    mask: usize,
    slots: Box<[AtomicPtr<()>]>,
}

impl Buffer {
    fn new(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer { mask: cap - 1, slots })
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    fn slot(&self, index: isize) -> &AtomicPtr<()> {
        &self.slots[index as usize & self.mask]
    }
}

/// A work-stealing deque of `T` values. See the module docs for the
/// ownership discipline and memory-ordering provenance.
pub(crate) struct ChaseLev<T: PointerItem> {
    /// Next index a thief steals from; only ever incremented (by a
    /// successful CAS in `steal` or the owner's last-item CAS in `pop`).
    top: AtomicIsize,
    /// Next index the owner pushes to; moved only by the owner.
    bottom: AtomicIsize,
    /// The live buffer; replaced (by the owner) on growth.
    buffer: AtomicPtr<Buffer>,
    /// Outgrown buffers, kept alive until drop — see module docs.
    retired: Mutex<Vec<Box<Buffer>>>,
    _marker: PhantomData<T>,
}

// The deque hands `T` values across threads (owner push → thief steal), so
// `T: Send` is required (implied by `PointerItem`) and sufficient; the
// shared state is all atomics.
unsafe impl<T: PointerItem> Send for ChaseLev<T> {}
unsafe impl<T: PointerItem> Sync for ChaseLev<T> {}

impl<T: PointerItem> ChaseLev<T> {
    /// An empty deque with room for `min_cap` items before the first growth
    /// (rounded up to a power of two, at least 2).
    pub(crate) fn with_capacity(min_cap: usize) -> Self {
        let cap = min_cap.next_power_of_two().max(2);
        ChaseLev {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Buffer::new(cap))),
            retired: Mutex::new(Vec::new()),
            _marker: PhantomData,
        }
    }

    /// An empty deque with the default initial capacity.
    pub(crate) fn new() -> Self {
        Self::with_capacity(64)
    }

    /// Approximate number of queued items. Lock-free; exact when no
    /// operation is in flight, never negative.
    pub(crate) fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Acquire);
        let t = self.top.load(Ordering::Acquire);
        b.saturating_sub(t).max(0) as usize
    }

    /// True when [`len`](Self::len) observes zero items.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: pushes an item at the bottom. Grows the buffer when full.
    /// Allocation-free for already-boxed items (`Arc`/`Box`): the item's own
    /// pointer goes into the slot.
    pub(crate) fn push(&self, value: T) {
        let item = value.into_ptr();
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // Only the owner stores `buffer`, so a relaxed load reads its own
        // last store; thieves use Acquire.
        let mut buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t >= buf.cap() as isize {
            self.grow(b, t, buf);
            buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        }
        buf.slot(b).store(item, Ordering::Relaxed);
        // Publish the slot before the new bottom: a thief that Acquire-loads
        // the incremented bottom must see the item pointer.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pops the most recently pushed item (LIFO).
    pub(crate) fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        // Store-load barrier: the bottom decrement must be visible to
        // thieves before we read top, or owner and thief could both take
        // the same last item (Lê et al. §3.1).
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            // Non-empty. The slot read races no one unless b == t.
            let item = buf.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Last item: race thieves for it via the top CAS.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    // A thief got it; the pointer is theirs now.
                    return None;
                }
            }
            Some(unsafe { T::from_ptr(item) })
        } else {
            // Already empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Probes the top of the deque once, claiming the oldest item (FIFO).
    /// Callable from any thread. A lost CAS race returns [`Steal::Retry`]
    /// instead of looping internally, so a caller rotating over victims
    /// moves on rather than spinning on one contended deque (and so probe
    /// counters count actual probes).
    pub(crate) fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // Load-load barrier ordering the top read before the bottom read,
        // pairing with the owner's SeqCst fence in `pop`.
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Acquire pairs with the owner's buffer-swap store in `grow`.
        let buf = unsafe { &*self.buffer.load(Ordering::Acquire) };
        let item = buf.slot(t).load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Item(unsafe { T::from_ptr(item) })
        } else {
            // Lost the race for index t: the item went to the owner or
            // another thief.
            Steal::Retry
        }
    }

    /// Steals up to half of the victim's observed run in one call: the
    /// first claimed item is returned to run immediately, the surplus is
    /// pushed onto `dest` — the **calling thread's own deque**, where it is
    /// the owner (the push is an owner operation). Returns the first-item
    /// outcome plus how many extra items were moved.
    ///
    /// Every claim is one [`steal`](Self::steal) — the single-item probe
    /// whose orderings the PPoPP-2013 proof (and the model port in
    /// pyjama-check) covers — so batching adds no new synchronisation to
    /// verify; see the module docs for why a single range-CAS of `top`
    /// would race the owner's `pop`. The loop stops at the batch goal, on
    /// `Empty`, or on the first lost CAS.
    pub(crate) fn steal_half(&self, dest: &ChaseLev<T>) -> (Steal<T>, usize) {
        // Size the batch from one racy observation: at most half the run
        // (rounded up), at least one. The observation can go stale — the
        // claim loop re-validates every index the proven way.
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return (Steal::Empty, 0);
        }
        let goal = ((b - t) as usize).div_ceil(2);
        let mut first = None;
        let mut moved = 0usize;
        let mut miss = Steal::Empty;
        for _ in 0..goal {
            match self.steal() {
                Steal::Item(v) => {
                    if first.is_none() {
                        first = Some(v);
                    } else {
                        dest.push(v);
                        moved += 1;
                    }
                }
                m @ (Steal::Empty | Steal::Retry) => {
                    miss = m;
                    break;
                }
            }
        }
        match first {
            Some(v) => (Steal::Item(v), moved),
            None => (miss, 0),
        }
    }

    /// Owner-only: doubles the buffer, copying the live range `t..b`.
    fn grow(&self, b: isize, t: isize, old: &Buffer) {
        let new = Buffer::new(old.cap() * 2);
        let mut i = t;
        while i < b {
            new.slot(i)
                .store(old.slot(i).load(Ordering::Relaxed), Ordering::Relaxed);
            i += 1;
        }
        let old_ptr = self.buffer.load(Ordering::Relaxed);
        // Release: a thief Acquire-loading the new buffer pointer sees the
        // copied slots.
        self.buffer.store(Box::into_raw(new), Ordering::Release);
        // Keep the old buffer alive: a concurrent thief may still read its
        // slots. Freed when the deque itself drops.
        self.retired.lock().push(unsafe { Box::from_raw(old_ptr) });
    }
}

impl<T: PointerItem> Drop for ChaseLev<T> {
    fn drop(&mut self) {
        // Exclusive access: drain remaining items so their destructors run.
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        let buf = unsafe { Box::from_raw(self.buffer.load(Ordering::Relaxed)) };
        let mut i = t;
        while i < b {
            let item = buf.slot(i).load(Ordering::Relaxed);
            drop(unsafe { T::from_ptr(item) });
            i += 1;
        }
        // `buf` and the retired buffers drop here.
    }
}

impl<T: PointerItem> Default for ChaseLev<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: PointerItem> std::fmt::Debug for ChaseLev<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaseLev").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn lifo_for_owner() {
        let d = ChaseLev::new();
        d.push(Box::new(1));
        d.push(Box::new(2));
        d.push(Box::new(3));
        assert_eq!(d.pop(), Some(Box::new(3)));
        assert_eq!(d.pop(), Some(Box::new(2)));
        assert_eq!(d.pop(), Some(Box::new(1)));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn fifo_for_thief() {
        let d = ChaseLev::new();
        d.push(Box::new(1));
        d.push(Box::new(2));
        d.push(Box::new(3));
        assert_eq!(d.steal(), Steal::Item(Box::new(1)));
        assert_eq!(d.steal(), Steal::Item(Box::new(2)));
        assert_eq!(d.pop(), Some(Box::new(3)));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn arc_items_round_trip_without_clone() {
        let d = ChaseLev::new();
        let item = Arc::new(7usize);
        let probe = Arc::clone(&item);
        d.push(item);
        assert_eq!(Arc::strong_count(&probe), 2, "push must not clone");
        let back = d.pop().unwrap();
        assert!(Arc::ptr_eq(&back, &probe));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let d = ChaseLev::with_capacity(2);
        for i in 0..1000 {
            d.push(Box::new(i));
        }
        assert_eq!(d.len(), 1000);
        // Oldest at the top, newest at the bottom — across several growths.
        assert_eq!(d.steal(), Steal::Item(Box::new(0)));
        assert_eq!(d.pop(), Some(Box::new(999)));
        for expected in (1..999).rev() {
            assert_eq!(d.pop(), Some(Box::new(expected)));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn len_tracks_pushes_pops_steals() {
        let d = ChaseLev::new();
        assert!(d.is_empty());
        d.push(Box::new(7));
        d.push(Box::new(8));
        assert_eq!(d.len(), 2);
        d.steal();
        assert_eq!(d.len(), 1);
        d.pop();
        assert!(d.is_empty());
    }

    #[test]
    fn steal_half_takes_half_oldest_first() {
        let victim = ChaseLev::new();
        let own = ChaseLev::new();
        for i in 0..8 {
            victim.push(Box::new(i));
        }
        let (first, moved) = victim.steal_half(&own);
        // 8 observed → goal 4: one to run, three moved.
        assert_eq!(first, Steal::Item(Box::new(0)));
        assert_eq!(moved, 3);
        assert_eq!(victim.len(), 4);
        assert_eq!(own.len(), 3);
        // Moved items are the next-oldest run, now on the thief's deque.
        let mut got: Vec<i32> = Vec::new();
        while let Some(v) = own.pop() {
            got.push(*v);
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn steal_half_of_one_item_moves_nothing() {
        let victim = ChaseLev::new();
        let own = ChaseLev::new();
        victim.push(Box::new(42));
        let (first, moved) = victim.steal_half(&own);
        assert_eq!(first, Steal::Item(Box::new(42)));
        assert_eq!(moved, 0);
        assert!(own.is_empty());
        assert_eq!(victim.steal_half(&own), (Steal::Empty, 0));
    }

    /// Concurrent steal_half + owner pops: every item still claimed exactly
    /// once (each claim inside the batch is the proven single-item probe).
    #[test]
    fn steal_half_race_claims_each_item_once() {
        const ITEMS: usize = 10_000;
        for _ in 0..4 {
            let victim = Arc::new(ChaseLev::with_capacity(4));
            let done = Arc::new(AtomicUsize::new(0));
            let claimed = Arc::new(Mutex::new(HashSet::new()));
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let victim = Arc::clone(&victim);
                    let done = Arc::clone(&done);
                    let claimed = Arc::clone(&claimed);
                    s.spawn(move || {
                        let own: ChaseLev<Box<usize>> = ChaseLev::new();
                        let mut mine = Vec::new();
                        loop {
                            match victim.steal_half(&own) {
                                (Steal::Item(v), _) => {
                                    mine.push(*v);
                                    while let Some(v) = own.pop() {
                                        mine.push(*v);
                                    }
                                }
                                (Steal::Empty, _) => {
                                    if done.load(Ordering::SeqCst) == 1 && victim.len() == 0 {
                                        break;
                                    }
                                    std::hint::spin_loop();
                                }
                                (Steal::Retry, _) => std::hint::spin_loop(),
                            }
                        }
                        let mut g = claimed.lock();
                        for v in mine {
                            assert!(g.insert(v), "item {v} claimed twice");
                        }
                    });
                }
                {
                    let victim = Arc::clone(&victim);
                    let done = Arc::clone(&done);
                    let claimed = Arc::clone(&claimed);
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        for i in 0..ITEMS {
                            victim.push(Box::new(i));
                            if i % 3 == 0 {
                                if let Some(v) = victim.pop() {
                                    mine.push(*v);
                                }
                            }
                        }
                        while let Some(v) = victim.pop() {
                            mine.push(*v);
                        }
                        done.store(1, Ordering::SeqCst);
                        let mut g = claimed.lock();
                        for v in mine {
                            assert!(g.insert(v), "item {v} claimed twice");
                        }
                    });
                }
            });
            assert_eq!(claimed.lock().len(), ITEMS);
        }
    }

    #[test]
    fn drop_releases_remaining_items() {
        let live = Arc::new(AtomicUsize::new(0));
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let d = ChaseLev::with_capacity(2);
        for _ in 0..100 {
            live.fetch_add(1, Ordering::SeqCst);
            d.push(Box::new(Counted(Arc::clone(&live))));
        }
        drop(d);
        assert_eq!(live.load(Ordering::SeqCst), 0, "drop must free queued items");
    }

    /// `steal` is a single probe: when several thieves race for one item,
    /// exactly one gets `Item` and every loser returns immediately with
    /// `Empty` or `Retry` — it never blocks or spins internally.
    #[test]
    fn contended_single_probe_claims_item_exactly_once() {
        for _ in 0..200 {
            let d = Arc::new(ChaseLev::with_capacity(2));
            d.push(Box::new(42usize));
            let won = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let d = Arc::clone(&d);
                    let won = Arc::clone(&won);
                    s.spawn(move || match d.steal() {
                        Steal::Item(v) => {
                            assert_eq!(*v, 42);
                            won.fetch_add(1, Ordering::SeqCst);
                        }
                        Steal::Empty | Steal::Retry => {}
                    });
                }
            });
            // Every thief saw the pre-spawn push, so the CASes all start
            // from the same top index and exactly one can win it.
            assert_eq!(won.load(Ordering::SeqCst), 1);
            assert_eq!(d.pop(), None);
        }
    }

    /// The steal-vs-owner-pop race: one owner pushing and popping, several
    /// thieves stealing, every item claimed exactly once. This is the
    /// single-last-item CAS race at the heart of the algorithm.
    #[test]
    fn steal_vs_owner_pop_race_claims_each_item_once() {
        const ITEMS: usize = 20_000;
        const THIEVES: usize = 3;
        let d = Arc::new(ChaseLev::<Box<usize>>::with_capacity(4));
        let claimed = Arc::new(Mutex::new(HashSet::new()));

        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                let d = Arc::clone(&d);
                let claimed = Arc::clone(&claimed);
                s.spawn(move || {
                    let mut mine = Vec::new();
                    // Keep stealing until the owner is done and the deque
                    // observed empty.
                    loop {
                        match d.steal() {
                            Steal::Item(v) => mine.push(*v),
                            // Lost a race: someone else made progress; the
                            // real scheduler would move to its next victim.
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if d.len() == 0 && Arc::strong_count(&d) <= THIEVES + 1 {
                                    // Owner dropped its handle: one more
                                    // probe confirms the deque stayed dry.
                                    match d.steal() {
                                        Steal::Item(v) => mine.push(*v),
                                        Steal::Empty => break,
                                        Steal::Retry => {}
                                    }
                                } else {
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                    let mut g = claimed.lock();
                    for v in mine {
                        assert!(g.insert(v), "item {v} claimed twice");
                    }
                });
            }
            {
                let d = Arc::clone(&d);
                let claimed = Arc::clone(&claimed);
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..ITEMS {
                        d.push(Box::new(i));
                        // Interleave pops so the owner contends on the last
                        // item with thieves constantly.
                        if i % 2 == 0 {
                            if let Some(v) = d.pop() {
                                mine.push(*v);
                            }
                        }
                    }
                    while let Some(v) = d.pop() {
                        mine.push(*v);
                    }
                    let mut g = claimed.lock();
                    for v in mine {
                        assert!(g.insert(v), "item {v} claimed twice");
                    }
                    drop(d); // signals the thieves via strong_count
                });
            }
        });

        assert_eq!(
            claimed.lock().len(),
            ITEMS,
            "every pushed item must be claimed exactly once"
        );
    }
}
