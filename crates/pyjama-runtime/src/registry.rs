//! The runtime registry: named virtual targets and the Table II functions.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use pyjama_events::EventLoopHandle;

use crate::executor::VirtualTarget;
use crate::sync::TagRegistry;
use crate::target_edt::EdtTarget;
use crate::worker::WorkerTarget;

/// Errors surfaced by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A directive referenced a target name that was never registered.
    UnknownTarget(String),
    /// Registering a name that is already taken.
    DuplicateTarget(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::UnknownTarget(n) => write!(f, "unknown virtual target `{n}`"),
            RuntimeError::DuplicateTarget(n) => {
                write!(f, "virtual target `{n}` is already registered")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The Pyjama runtime: a registry of named virtual targets plus the name-tag
/// synchronisation state.
///
/// "At the initializing stage … the runtime functions of Table II are
/// required to be invoked with specific parameters" (§III-D):
///
/// * [`virtual_target_register_edt`](Runtime::virtual_target_register_edt)
/// * [`virtual_target_create_worker`](Runtime::virtual_target_create_worker)
///
/// The offloading entry points ([`target`](Runtime::target),
/// [`invoke_target_block`](Runtime::invoke_target_block),
/// [`wait_tag`](Runtime::wait_tag)) live in [`crate::invoke`].
pub struct Runtime {
    targets: RwLock<HashMap<String, Registered>>,
    pub(crate) tags: TagRegistry,
    /// ICV in the spirit of `default-device-var`: the target used when a
    /// directive omits the target-property clause.
    default_target: RwLock<Option<String>>,
}

/// A registered target plus its interned region label.
///
/// `Runtime::target` used to `format!("target virtual({name})")` on every
/// post — a per-post heap allocation on the hottest path in the runtime.
/// The label only depends on the registration name, so it is computed once
/// here and every post clones the `Arc<str>`.
struct Registered {
    target: Arc<dyn VirtualTarget>,
    region_label: Arc<str>,
}

impl Runtime {
    /// Creates an empty runtime (no targets registered).
    pub fn new() -> Self {
        Runtime {
            targets: RwLock::new(HashMap::new()),
            tags: TagRegistry::new(),
            default_target: RwLock::new(None),
        }
    }

    /// Table II: registers an event loop's dispatch thread as a virtual
    /// target named `tname`.
    ///
    /// The paper's signature registers *the calling thread*; in Rust the
    /// loop is reified as an [`EventLoopHandle`], so the EDT is identified
    /// by its handle rather than implicitly.
    pub fn virtual_target_register_edt(
        &self,
        tname: impl Into<String>,
        handle: EventLoopHandle,
    ) -> Result<Arc<EdtTarget>, RuntimeError> {
        let tname = tname.into();
        let target = EdtTarget::new(tname.clone(), handle);
        self.register(tname, Arc::clone(&target) as Arc<dyn VirtualTarget>)?;
        Ok(target)
    }

    /// Table II: creates a worker virtual target named `tname` with a
    /// maximum of `m` threads.
    pub fn virtual_target_create_worker(
        &self,
        tname: impl Into<String>,
        m: usize,
    ) -> Arc<WorkerTarget> {
        let tname = tname.into();
        let target = WorkerTarget::new(tname.clone(), m);
        self.register(tname, Arc::clone(&target) as Arc<dyn VirtualTarget>)
            .expect("duplicate virtual target name");
        target
    }

    /// Registers an externally constructed target under its name.
    pub fn register(
        &self,
        name: impl Into<String>,
        target: Arc<dyn VirtualTarget>,
    ) -> Result<(), RuntimeError> {
        let name = name.into();
        let mut g = self.targets.write();
        if g.contains_key(&name) {
            return Err(RuntimeError::DuplicateTarget(name));
        }
        if g.is_empty() {
            *self.default_target.write() = Some(name.clone());
        }
        let region_label = Arc::from(format!("target virtual({name})"));
        g.insert(name, Registered { target, region_label });
        Ok(())
    }

    /// Looks up a target by name.
    pub fn lookup(&self, name: &str) -> Result<Arc<dyn VirtualTarget>, RuntimeError> {
        self.targets
            .read()
            .get(name)
            .map(|r| Arc::clone(&r.target))
            .ok_or_else(|| RuntimeError::UnknownTarget(name.to_string()))
    }

    /// Looks up a target together with its interned region label (computed
    /// once at registration, so the posting hot path never formats).
    pub(crate) fn lookup_with_label(
        &self,
        name: &str,
    ) -> Result<(Arc<dyn VirtualTarget>, Arc<str>), RuntimeError> {
        self.targets
            .read()
            .get(name)
            .map(|r| (Arc::clone(&r.target), Arc::clone(&r.region_label)))
            .ok_or_else(|| RuntimeError::UnknownTarget(name.to_string()))
    }

    /// True when `name` is registered.
    pub fn has_target(&self, name: &str) -> bool {
        self.targets.read().contains_key(name)
    }

    /// Names of all registered targets (unordered).
    pub fn target_names(&self) -> Vec<String> {
        self.targets.read().keys().cloned().collect()
    }

    /// Sets the default target ICV (used when a directive has no
    /// target-property clause, cf. `default-device-var` §III-A).
    pub fn set_default_target(&self, name: impl Into<String>) -> Result<(), RuntimeError> {
        let name = name.into();
        if !self.has_target(&name) {
            return Err(RuntimeError::UnknownTarget(name));
        }
        *self.default_target.write() = Some(name);
        Ok(())
    }

    /// The default target name, if any (the first registered target unless
    /// overridden).
    pub fn default_target(&self) -> Option<String> {
        self.default_target.read().clone()
    }

    /// The name-tag registry (exposed for tests and diagnostics).
    pub fn tags(&self) -> &TagRegistry {
        &self.tags
    }

    /// Unregisters every target. Worker pools shut down when their last
    /// `Arc` drops; this severs the runtime's references.
    pub fn clear(&self) {
        self.targets.write().clear();
        *self.default_target.write() = None;
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("targets", &self.target_names())
            .field("default_target", &self.default_target())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::TargetKind;
    use pyjama_events::Edt;

    #[test]
    fn create_worker_registers_by_name() {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("worker", 2);
        assert!(rt.has_target("worker"));
        let t = rt.lookup("worker").unwrap();
        assert_eq!(t.kind(), TargetKind::Worker);
        assert_eq!(t.name(), "worker");
    }

    #[test]
    fn register_edt_by_handle() {
        let rt = Runtime::new();
        let edt = Edt::spawn("edt");
        rt.virtual_target_register_edt("edt", edt.handle()).unwrap();
        let t = rt.lookup("edt").unwrap();
        assert_eq!(t.kind(), TargetKind::Edt);
    }

    #[test]
    fn unknown_target_is_an_error() {
        let rt = Runtime::new();
        match rt.lookup("ghost") {
            Err(RuntimeError::UnknownTarget(n)) => assert_eq!(n, "ghost"),
            Err(other) => panic!("expected UnknownTarget, got {other:?}"),
            Ok(_) => panic!("expected UnknownTarget, got Ok"),
        }
    }

    #[test]
    #[should_panic(expected = "duplicate virtual target name")]
    fn duplicate_worker_name_panics() {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("w", 1);
        rt.virtual_target_create_worker("w", 1);
    }

    #[test]
    fn duplicate_edt_name_is_error() {
        let rt = Runtime::new();
        let edt = Edt::spawn("edt");
        rt.virtual_target_register_edt("edt", edt.handle()).unwrap();
        let err = rt.virtual_target_register_edt("edt", edt.handle());
        assert!(matches!(err, Err(RuntimeError::DuplicateTarget(_))));
    }

    #[test]
    fn first_registration_becomes_default() {
        let rt = Runtime::new();
        assert!(rt.default_target().is_none());
        rt.virtual_target_create_worker("a", 1);
        rt.virtual_target_create_worker("b", 1);
        assert_eq!(rt.default_target().as_deref(), Some("a"));
        rt.set_default_target("b").unwrap();
        assert_eq!(rt.default_target().as_deref(), Some("b"));
        assert!(rt.set_default_target("zzz").is_err());
    }

    #[test]
    fn clear_unregisters() {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("w", 1);
        rt.clear();
        assert!(!rt.has_target("w"));
        assert!(rt.default_target().is_none());
    }

    #[test]
    fn target_names_lists_all() {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("w1", 1);
        rt.virtual_target_create_worker("w2", 1);
        let mut names = rt.target_names();
        names.sort();
        assert_eq!(names, vec!["w1", "w2"]);
    }
}
