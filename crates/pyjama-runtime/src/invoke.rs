//! Algorithm 1: `invokeTargetBlock` and the scheduling-mode semantics.

use std::sync::Arc;

use pyjama_trace::{arg as trace_arg, Stage};

use crate::executor::VirtualTarget;
use crate::mode::Mode;
use crate::registry::{Runtime, RuntimeError};
use crate::task::{TargetFuture, TargetRegion, TaskHandle};

fn mode_arg(mode: &Mode) -> u32 {
    match mode {
        Mode::Wait => trace_arg::MODE_WAIT,
        Mode::NoWait => trace_arg::MODE_NOWAIT,
        Mode::NameAs(_) => trace_arg::MODE_NAMEAS,
        Mode::Await => trace_arg::MODE_AWAIT,
    }
}

impl Runtime {
    /// The paper's Algorithm 1, verbatim in structure:
    ///
    /// ```text
    /// procedure invokeTargetBlock(T, E, B, a)
    ///     if T ∈ E then B.exec()           // synchronous, member thread
    ///     else E.post(B)                   // asynchronous
    ///     if a is nowait or name_as then return
    ///     if a is await then
    ///         while B is not finished do T.processAnotherEventHandler()
    ///     else T.wait()                    // default option
    /// ```
    ///
    /// Returns the block's [`TaskHandle`] so callers can observe or
    /// re-synchronise later regardless of mode.
    pub fn invoke_target_block(
        &self,
        target: &Arc<dyn VirtualTarget>,
        mode: Mode,
        region: Arc<TargetRegion>,
    ) -> TaskHandle {
        let handle = region.handle();
        pyjama_trace::emit(handle.trace_id(), Stage::RegionInvoked, mode_arg(&mode));

        // name_as registration happens before posting so a wait(tag) racing
        // with completion still observes the instance.
        if let Mode::NameAs(tag) = &mode {
            self.tags.register(tag, handle.clone());
        }

        if target.is_member() {
            // Line 6–7: already in the execution environment — the directive
            // is "simply ignored" (§III-B) and the block runs synchronously.
            // The region goes back to the recycler exactly as it would after
            // a pool execution: a nested-directive loop on a member thread
            // re-arms one region out of the thread-local cache instead of
            // allocating per post. (`release` re-checks eligibility; the
            // handle above does not block the park — see `slab`.)
            pyjama_trace::emit(handle.trace_id(), Stage::RegionInline, 0);
            region.execute();
            crate::slab::release(region);
        } else {
            // Line 8.
            target.post(region);
        }

        match mode {
            // Line 10–11.
            Mode::NoWait | Mode::NameAs(_) => {}
            // Line 13–15: logical barrier.
            Mode::Await => {
                self.await_barrier(&handle);
                handle.join();
            }
            // Line 17: default.
            Mode::Wait => {
                handle.join();
            }
        }
        handle
    }

    /// Directive-style entry point: `//#omp target virtual(name) <mode>`
    /// around `block`.
    ///
    /// # Panics
    /// Panics if `name` is not a registered virtual target, or if the block
    /// panicked and `mode` synchronises with it (`Wait`/`Await`) — matching
    /// the behaviour the sequential program would have had.
    pub fn target(&self, name: &str, mode: Mode, block: impl FnOnce() + Send + 'static) -> TaskHandle {
        self.try_target(name, mode, block)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking variant of [`target`](Runtime::target).
    pub fn try_target(
        &self,
        name: &str,
        mode: Mode,
        block: impl FnOnce() + Send + 'static,
    ) -> Result<TaskHandle, RuntimeError> {
        let (target, label) = self.lookup_with_label(name)?;
        // The label was interned at registration: no per-post `format!`.
        let region = TargetRegion::with_label(label, block);
        Ok(self.invoke_target_block(&target, mode, region))
    }

    /// A directive with no target-property clause: dispatches to the
    /// default-target ICV (cf. `default-device-var`, §III-A).
    ///
    /// # Panics
    /// Panics when no target has ever been registered.
    pub fn target_default(&self, mode: Mode, block: impl FnOnce() + Send + 'static) -> TaskHandle {
        let name = self
            .default_target()
            .expect("no virtual target registered (default-device-var unset)");
        self.target(&name, mode, block)
    }

    /// `target virtual(name) if(cond)`: with `cond == false` the directive
    /// is disabled and the block executes synchronously on the encountering
    /// thread — OpenMP's standard `if` clause semantics.
    pub fn target_if(
        &self,
        name: &str,
        mode: Mode,
        cond: bool,
        block: impl FnOnce() + Send + 'static,
    ) -> TaskHandle {
        if cond {
            self.target(name, mode, block)
        } else {
            let region = TargetRegion::new(format!("target virtual({name}) if(false)"), block);
            let handle = region.handle();
            // Register-before-run, the same ordering invoke_target_block
            // guarantees: a concurrent wait_tag racing with this synchronous
            // execution must still observe the instance.
            if let Mode::NameAs(tag) = &mode {
                self.tags.register(tag, handle.clone());
            }
            region.execute();
            // Wait/Await semantics are trivially satisfied; propagate panics
            // like a plain synchronous execution would.
            if matches!(handle.state(), crate::task::TaskState::Panicked) {
                handle.join();
            }
            handle
        }
    }

    /// Offloads a value-producing closure; a typed future for results.
    pub fn submit<R: Send + 'static>(
        &self,
        name: &str,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> Result<TargetFuture<R>, RuntimeError> {
        let target = self.lookup(name)?;
        let (region, fut) = TargetFuture::wrap(format!("submit to {name}"), f);
        if target.is_member() {
            region.execute();
        } else {
            target.post(region);
        }
        Ok(fut)
    }

    /// The `wait(tag)` clause: suspends until every block instance tagged
    /// `name_as(tag)` *so far* has finished. While suspended, the
    /// encountering thread helps: it pumps its own event loop or processes
    /// its own worker pool's queue, so a `wait` on the EDT keeps the
    /// application responsive.
    pub fn wait_tag(&self, tag: &str) {
        let instances = self.tags.snapshot(tag);
        for h in &instances {
            self.await_barrier(h);
        }
        self.tags.prune(tag);
        // Propagate the first panic, if any — after all instances finished,
        // mirroring a sequential execution order.
        for h in &instances {
            h.join();
        }
    }

    /// The `await` logical barrier (Algorithm 1 lines 13–16): while the
    /// block is unfinished, process other event handlers or tasks.
    ///
    /// * On an event-loop thread (the EDT), pump the loop re-entrantly.
    /// * On a worker-pool thread, execute another task from the pool queue.
    /// * When there is nothing to help with, park on a
    ///   [`WakeSignal`](crate::parker::WakeSignal) that all three wake
    ///   sources notify — the awaited handle's completion, an event posted
    ///   to this thread's loop, a task enqueued on this thread's pool. No
    ///   timed polling: work arriving mid-park is helped immediately, and a
    ///   plain thread sleeps exactly until the block finishes.
    pub fn await_barrier(&self, handle: &TaskHandle) {
        crate::parker::await_until(handle, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskState;
    use parking_lot::Mutex;
    use pyjama_events::{Edt, EventLoop};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn rt_with_worker(m: usize) -> Runtime {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("worker", m);
        rt
    }

    // ----- Mode::Wait (default) ------------------------------------------

    #[test]
    fn wait_blocks_until_block_finishes() {
        let rt = rt_with_worker(1);
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        let h = rt.target("worker", Mode::Wait, move || {
            std::thread::sleep(Duration::from_millis(20));
            d.store(true, Ordering::SeqCst);
        });
        // By the time target() returns, the block must have completed.
        assert!(done.load(Ordering::SeqCst));
        assert_eq!(h.state(), TaskState::Finished);
    }

    #[test]
    fn wait_runs_block_on_target_thread() {
        let rt = rt_with_worker(1);
        let worker = rt.lookup("worker").unwrap();
        let on_worker = Arc::new(AtomicBool::new(false));
        let o = Arc::clone(&on_worker);
        let w2 = Arc::clone(&worker);
        rt.target("worker", Mode::Wait, move || {
            o.store(w2.is_member(), Ordering::SeqCst);
        });
        assert!(on_worker.load(Ordering::SeqCst));
    }

    #[test]
    fn wait_propagates_block_panic() {
        let rt = rt_with_worker(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.target("worker", Mode::Wait, || panic!("inside block"));
        }));
        assert!(r.is_err());
    }

    // ----- Mode::NoWait ----------------------------------------------------

    #[test]
    fn nowait_returns_immediately() {
        let rt = rt_with_worker(1);
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let h = rt.target("worker", Mode::NoWait, move || {
            while !g.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        // Encountering thread got here while the block is still running.
        assert!(!h.is_finished());
        gate.store(true, Ordering::SeqCst);
        h.wait();
    }

    #[test]
    fn nowait_swallows_panics_silently() {
        let rt = rt_with_worker(1);
        let h = rt.target("worker", Mode::NoWait, || panic!("ignored"));
        h.wait();
        assert_eq!(h.state(), TaskState::Panicked);
        // No propagation: "the code block can be safely invoked and ignored".
    }

    // ----- Mode::NameAs + wait_tag ------------------------------------------

    #[test]
    fn name_as_tag_synchronises_all_instances() {
        let rt = rt_with_worker(2);
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let n = Arc::clone(&n);
            rt.target("worker", Mode::name_as("batch"), move || {
                std::thread::sleep(Duration::from_millis(5));
                n.fetch_add(1, Ordering::SeqCst);
            });
        }
        rt.wait_tag("batch");
        assert_eq!(n.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn wait_tag_on_unused_tag_returns_immediately() {
        let rt = rt_with_worker(1);
        rt.wait_tag("never-used");
    }

    #[test]
    fn wait_tag_propagates_panic_from_instance() {
        let rt = rt_with_worker(1);
        rt.target("worker", Mode::name_as("t"), || panic!("tagged failure"));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rt.wait_tag("t")));
        assert!(r.is_err());
    }

    #[test]
    fn separate_tags_do_not_interfere() {
        let rt = rt_with_worker(2);
        let slow_done = Arc::new(AtomicBool::new(false));
        let sd = Arc::clone(&slow_done);
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        rt.target("worker", Mode::name_as("slow"), move || {
            while !g.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            sd.store(true, Ordering::SeqCst);
        });
        rt.target("worker", Mode::name_as("fast"), || {});
        rt.wait_tag("fast"); // must not wait for "slow"
        assert!(!slow_done.load(Ordering::SeqCst));
        gate.store(true, Ordering::SeqCst);
        rt.wait_tag("slow");
        assert!(slow_done.load(Ordering::SeqCst));
    }

    // ----- Mode::Await -------------------------------------------------------

    #[test]
    fn await_completes_like_wait_off_loop() {
        let rt = rt_with_worker(1);
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        rt.target("worker", Mode::Await, move || {
            std::thread::sleep(Duration::from_millis(10));
            d.store(true, Ordering::SeqCst);
        });
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn await_on_edt_processes_other_events() {
        // The signature behaviour of `await` (§III-C): while the offloaded
        // block runs, the EDT dispatches *other* events.
        let rt = Arc::new(rt_with_worker(1));
        let el = EventLoop::new("edt");
        let h = el.handle();
        let order = Arc::new(Mutex::new(Vec::new()));

        let o1 = Arc::clone(&order);
        let rt2 = Arc::clone(&rt);
        h.post(move || {
            o1.lock().push("handler1:start");
            let o_in = Arc::clone(&o1);
            rt2.target("worker", Mode::Await, move || {
                std::thread::sleep(Duration::from_millis(30));
                o_in.lock().push("offloaded-block");
            });
            o1.lock().push("handler1:continuation");
        });
        let o2 = Arc::clone(&order);
        h.post(move || o2.lock().push("handler2"));

        el.run_until_idle();

        let log = order.lock().clone();
        let pos = |s: &str| log.iter().position(|x| *x == s).unwrap_or_else(|| panic!("missing {s} in {log:?}"));
        // handler2 ran while handler1 awaited — before handler1's continuation.
        assert!(pos("handler2") > pos("handler1:start"));
        assert!(pos("handler2") < pos("handler1:continuation"));
        // The continuation only ran after the offloaded block finished.
        assert!(pos("offloaded-block") < pos("handler1:continuation"));
    }

    #[test]
    fn await_on_worker_thread_helps_pool_queue() {
        // A worker thread awaiting a block on *another* target keeps
        // processing its own pool's queue.
        let rt = Arc::new(Runtime::new());
        rt.virtual_target_create_worker("pool", 1);
        rt.virtual_target_create_worker("other", 1);

        let helped = Arc::new(AtomicBool::new(false));
        let rt2 = Arc::clone(&rt);
        let helped2 = Arc::clone(&helped);

        let outer = {
            let rt = Arc::clone(&rt2);
            let helped = Arc::clone(&helped2);
            move || {
                // Queue a second task behind us on our own (single-threaded)
                // pool; it can only run if we help while awaiting.
                let helped_inner = Arc::clone(&helped);
                rt.target("pool", Mode::NoWait, move || {
                    helped_inner.store(true, Ordering::SeqCst);
                });
                rt.target("other", Mode::Await, || {
                    std::thread::sleep(Duration::from_millis(30));
                });
                assert!(
                    helped.load(Ordering::SeqCst),
                    "queued pool task should have been helped during await"
                );
            }
        };
        rt.target("pool", Mode::Wait, outer);
    }

    #[test]
    fn await_on_plain_thread_parks_and_wakes() {
        // A plain thread has nothing to help with: the barrier must block on
        // the wake signal (observable in the park metrics) and return
        // promptly when the task's terminal transition notifies it.
        let before = crate::parker::park_stats();
        let rt = rt_with_worker(1);
        rt.target("worker", Mode::Await, || {
            std::thread::sleep(Duration::from_millis(30));
        });
        let after = crate::parker::park_stats();
        assert!(after.parks > before.parks, "the barrier must have parked");
        assert!(after.notifies > before.notifies, "completion must notify");
    }

    #[test]
    fn reentrant_awaits_nest_without_missing_wakeups() {
        // An EDT handler awaits; while helping it dispatches another handler
        // that awaits again (nested barrier, own signal and registrations).
        // Both must resolve, and the inner deregistration must not detach
        // the outer barrier's wakers.
        let rt = Arc::new(rt_with_worker(2));
        let el = EventLoop::new("edt");
        let h = el.handle();
        let done = Arc::new(AtomicUsize::new(0));

        let rt1 = Arc::clone(&rt);
        let d1 = Arc::clone(&done);
        h.post(move || {
            let rt_in = Arc::clone(&rt1);
            let d_in = Arc::clone(&d1);
            rt1.target("worker", Mode::Await, move || {
                std::thread::sleep(Duration::from_millis(20));
                let _ = &rt_in;
                d_in.fetch_add(1, Ordering::SeqCst);
            });
            d1.fetch_add(1, Ordering::SeqCst);
        });
        let rt2 = Arc::clone(&rt);
        let d2 = Arc::clone(&done);
        h.post(move || {
            rt2.target("worker", Mode::Await, {
                let d = Arc::clone(&d2);
                move || {
                    std::thread::sleep(Duration::from_millis(10));
                    d.fetch_add(1, Ordering::SeqCst);
                }
            });
            d2.fetch_add(1, Ordering::SeqCst);
        });

        el.run_until_idle();
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn stress_awaits_race_posts_completions_and_shutdown() {
        // ABA-style stress for the waker registration protocol: many awaits
        // enter and exit barriers while producers keep posting and pools
        // shut down, across several rounds so registrations/deregistrations
        // interleave with notifies in every order.
        for _ in 0..10 {
            let rt = Arc::new(Runtime::new());
            rt.virtual_target_create_worker("a", 2);
            rt.virtual_target_create_worker("b", 2);
            let total = Arc::new(AtomicUsize::new(0));

            let drivers: Vec<_> = (0..4)
                .map(|i| {
                    let rt = Arc::clone(&rt);
                    let total = Arc::clone(&total);
                    std::thread::spawn(move || {
                        let (own, other) = if i % 2 == 0 { ("a", "b") } else { ("b", "a") };
                        for _ in 0..25 {
                            let t = Arc::clone(&total);
                            rt.target(own, Mode::NoWait, move || {
                                t.fetch_add(1, Ordering::SeqCst);
                            });
                            let t = Arc::clone(&total);
                            rt.target(other, Mode::Await, move || {
                                t.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    })
                })
                .collect();
            for d in drivers {
                d.join().unwrap();
            }
            // Dropping the runtime shuts both pools down; queued nowait
            // regions drain first, so every increment happened.
            drop(rt);
            assert_eq!(total.load(Ordering::SeqCst), 4 * 25 * 2);
        }
    }

    #[test]
    fn await_propagates_panic() {
        let rt = rt_with_worker(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.target("worker", Mode::Await, || panic!("awaited failure"));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn target_default_uses_icv() {
        let rt = rt_with_worker(1);
        rt.virtual_target_create_worker("other", 1);
        let ran_on = Arc::new(Mutex::new(String::new()));
        let worker = rt.lookup("worker").unwrap();
        let other = rt.lookup("other").unwrap();

        let r = Arc::clone(&ran_on);
        let (w2, o2) = (Arc::clone(&worker), Arc::clone(&other));
        rt.target_default(Mode::Wait, move || {
            let name = if w2.is_member() { "worker" } else if o2.is_member() { "other" } else { "?" };
            *r.lock() = name.to_string();
        });
        assert_eq!(*ran_on.lock(), "worker", "first-registered target is the default");

        rt.set_default_target("other").unwrap();
        let r = Arc::clone(&ran_on);
        let (w2, o2) = (Arc::clone(&worker), Arc::clone(&other));
        rt.target_default(Mode::Wait, move || {
            let name = if w2.is_member() { "worker" } else if o2.is_member() { "other" } else { "?" };
            *r.lock() = name.to_string();
        });
        assert_eq!(*ran_on.lock(), "other");
    }

    #[test]
    #[should_panic(expected = "no virtual target registered")]
    fn target_default_without_targets_panics() {
        let rt = Runtime::new();
        rt.target_default(Mode::Wait, || {});
    }

    // ----- member short-circuit (Algorithm 1 line 6-7) -----------------------

    #[test]
    fn member_thread_executes_synchronously() {
        let rt = Arc::new(rt_with_worker(1));
        let rt2 = Arc::clone(&rt);
        let inline_before = rt.lookup("worker").unwrap().stats().inline;
        let _ = inline_before;
        rt.target("worker", Mode::Wait, move || {
            // From inside the worker, a nested nowait-target on the same
            // worker must run synchronously (directive "simply ignored"),
            // so by the next statement it is already finished.
            let h = rt2.target("worker", Mode::NoWait, || {});
            assert!(h.is_finished(), "member short-circuit must run inline");
        });
        let stats = rt.lookup("worker").unwrap().stats();
        // One block posted (the outer), none for the inner.
        assert_eq!(stats.posted, 1);
    }

    #[test]
    fn edt_member_short_circuit() {
        let rt = Arc::new(Runtime::new());
        let edt = Edt::spawn("edt");
        rt.virtual_target_register_edt("edt", edt.handle()).unwrap();
        let rt2 = Arc::clone(&rt);
        let inline_ran = edt.invoke_and_wait(move || {
            let h = rt2.target("edt", Mode::NoWait, || {});
            h.is_finished()
        });
        assert!(inline_ran);
    }

    // ----- if clause ----------------------------------------------------------

    #[test]
    fn if_false_runs_synchronously_on_caller() {
        let rt = rt_with_worker(1);
        let caller = std::thread::current().id();
        let same_thread = Arc::new(AtomicBool::new(false));
        let s = Arc::clone(&same_thread);
        let h = rt.target_if("worker", Mode::NoWait, false, move || {
            s.store(std::thread::current().id() == caller, Ordering::SeqCst);
        });
        assert!(h.is_finished());
        assert!(same_thread.load(Ordering::SeqCst));
    }

    #[test]
    fn if_true_behaves_like_plain_target() {
        let rt = rt_with_worker(1);
        let h = rt.target_if("worker", Mode::Wait, true, || {});
        assert!(h.is_finished());
    }

    #[test]
    fn if_false_with_name_as_still_registers_tag() {
        let rt = rt_with_worker(1);
        rt.target_if("worker", Mode::name_as("t"), false, || {});
        assert_eq!(rt.tags().instance_count("t"), 1);
        rt.wait_tag("t");
    }

    #[test]
    fn if_false_with_name_as_registers_before_running() {
        // Regression: the tag used to be registered *after* the synchronous
        // execution, so a wait_tag racing the block could miss the instance.
        // Observed from inside the block itself: the instance must already
        // be registered while the block runs.
        let rt = Arc::new(rt_with_worker(1));
        let seen = Arc::new(AtomicUsize::new(usize::MAX));
        let rt2 = Arc::clone(&rt);
        let s2 = Arc::clone(&seen);
        rt.target_if("worker", Mode::name_as("ordered"), false, move || {
            s2.store(rt2.tags().instance_count("ordered"), Ordering::SeqCst);
        });
        assert_eq!(
            seen.load(Ordering::SeqCst),
            1,
            "tag must be visible before the block runs"
        );
        rt.wait_tag("ordered");
    }

    // ----- submit / futures ---------------------------------------------------

    #[test]
    fn submit_returns_value() {
        let rt = rt_with_worker(2);
        let fut = rt.submit("worker", || 21 * 2).unwrap();
        assert_eq!(fut.join(), 42);
    }

    #[test]
    fn submit_to_unknown_target_errors() {
        let rt = Runtime::new();
        assert!(rt.submit("ghost", || 1).is_err());
    }

    #[test]
    fn try_target_unknown_is_error_not_panic() {
        let rt = Runtime::new();
        assert!(matches!(
            rt.try_target("ghost", Mode::NoWait, || {}),
            Err(RuntimeError::UnknownTarget(_))
        ));
    }

    // ----- Figure 6 end-to-end --------------------------------------------------

    #[test]
    fn figure6_pipeline_nested_virtual_targets() {
        // buttonOnClick: EDT → worker (nowait) → { compute; edt(update) } …
        let rt = Arc::new(Runtime::new());
        let edt = Edt::spawn("edt");
        rt.virtual_target_register_edt("edt", edt.handle()).unwrap();
        rt.virtual_target_create_worker("worker", 2);

        let log = Arc::new(Mutex::new(Vec::new()));
        let l0 = Arc::clone(&log);
        let rt2 = Arc::clone(&rt);
        let done = Arc::new(AtomicBool::new(false));
        let d2 = Arc::clone(&done);

        edt.invoke_later(move || {
            l0.lock().push("edt:collect-input");
            let l1 = Arc::clone(&l0);
            let rt3 = Arc::clone(&rt2);
            let d3 = Arc::clone(&d2);
            rt2.target("worker", Mode::NoWait, move || {
                l1.lock().push("worker:download-and-compute");
                let l2 = Arc::clone(&l1);
                rt3.target("edt", Mode::Wait, move || {
                    l2.lock().push("edt:display-img");
                });
                l1.lock().push("worker:after-display");
                let l3 = Arc::clone(&l1);
                rt3.target("edt", Mode::Wait, move || {
                    l3.lock().push("edt:finished-msg");
                });
                d3.store(true, Ordering::SeqCst);
            });
            l0.lock().push("edt:handler-done");
        });

        let t0 = std::time::Instant::now();
        while !done.load(Ordering::SeqCst) {
            assert!(t0.elapsed() < Duration::from_secs(5), "pipeline deadlocked");
            std::thread::sleep(Duration::from_millis(1));
        }
        let log = log.lock().clone();
        let pos = |s: &str| log.iter().position(|x| *x == s).unwrap();
        assert!(pos("edt:handler-done") < pos("edt:display-img") || pos("edt:collect-input") < pos("edt:display-img"));
        assert!(pos("worker:download-and-compute") < pos("edt:display-img"));
        assert!(pos("edt:display-img") < pos("worker:after-display"));
        assert!(pos("worker:after-display") < pos("edt:finished-msg"));
    }
}
