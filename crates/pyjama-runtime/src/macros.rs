//! Directive-style macro front end.
//!
//! The paper's philosophy is that "adding directives does not influence the
//! original correctness of the sequential execution" (§I). The
//! [`target_virtual!`](crate::target_virtual) macro is the closest Rust analogue of the `//#omp`
//! comment-directive: wrap a block, name a target, optionally add a
//! scheduling clause — remove the macro and the block still runs, inline.

/// Offload a block to a virtual target, directive style.
///
/// Grammar (mirroring Figure 5):
///
/// ```text
/// target_virtual!(rt, "name", { block })                 // default: wait
/// target_virtual!(rt, "name", nowait, { block })
/// target_virtual!(rt, "name", await, { block })
/// target_virtual!(rt, "name", name_as = "tag", { block })
/// target_virtual!(rt, "name", if cond, { block })        // if-clause, wait
/// ```
///
/// Evaluates to the block's [`crate::TaskHandle`].
///
/// # Example
///
/// ```
/// use pyjama_runtime::{Runtime, target_virtual};
///
/// let rt = Runtime::new();
/// rt.virtual_target_create_worker("worker", 2);
///
/// let h = target_virtual!(rt, "worker", nowait, {
///     // runs on the worker pool
/// });
/// h.wait();
/// ```
#[macro_export]
macro_rules! target_virtual {
    ($rt:expr, $name:expr, { $($body:tt)* }) => {
        $rt.target($name, $crate::Mode::Wait, move || { $($body)* })
    };
    ($rt:expr, $name:expr, nowait, { $($body:tt)* }) => {
        $rt.target($name, $crate::Mode::NoWait, move || { $($body)* })
    };
    ($rt:expr, $name:expr, await, { $($body:tt)* }) => {
        $rt.target($name, $crate::Mode::Await, move || { $($body)* })
    };
    ($rt:expr, $name:expr, name_as = $tag:expr, { $($body:tt)* }) => {
        $rt.target($name, $crate::Mode::NameAs($tag.into()), move || { $($body)* })
    };
    ($rt:expr, $name:expr, if $cond:expr, { $($body:tt)* }) => {
        $rt.target_if($name, $crate::Mode::Wait, $cond, move || { $($body)* })
    };
}

/// The `wait(tag)` clause as a statement:
/// `wait_tag!(rt, "jobs")` ≡ `rt.wait_tag("jobs")`.
#[macro_export]
macro_rules! wait_tag {
    ($rt:expr, $tag:expr) => {
        $rt.wait_tag($tag)
    };
}

#[cfg(test)]
mod tests {
    use crate::Runtime;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn default_mode_waits() {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("w", 1);
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        target_virtual!(rt, "w", {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nowait_returns_handle() {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("w", 1);
        let h = target_virtual!(rt, "w", nowait, {});
        h.wait();
        assert!(h.is_finished());
    }

    #[test]
    fn await_mode_completes() {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("w", 1);
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        target_virtual!(rt, "w", await, {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn name_as_and_wait_tag_macros() {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("w", 2);
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let n2 = Arc::clone(&n);
            target_virtual!(rt, "w", name_as = "batch", {
                n2.fetch_add(1, Ordering::SeqCst);
            });
        }
        wait_tag!(rt, "batch");
        assert_eq!(n.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn if_clause_macro() {
        let rt = Runtime::new();
        rt.virtual_target_create_worker("w", 1);
        let on_caller = std::thread::current().id();
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let h = target_virtual!(rt, "w", if false, {
            if std::thread::current().id() == on_caller {
                n2.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(h.is_finished());
        assert_eq!(n.load(Ordering::SeqCst), 1, "disabled directive runs inline");
    }

    #[test]
    fn variables_captured_like_sequential_code() {
        // Data-context sharing (§III-B): the block sees the same variables.
        let rt = Runtime::new();
        rt.virtual_target_create_worker("w", 1);
        let data = [1, 2, 3];
        let sum = Arc::new(AtomicUsize::new(0));
        let s2 = Arc::clone(&sum);
        target_virtual!(rt, "w", {
            s2.store(data.iter().sum::<usize>(), Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 6);
    }
}
