//! Simulated `target device(n)` accelerators.
//!
//! The paper's Figure 5 grammar keeps the OpenMP 4.0 `device(n)` clause
//! alongside the new `virtual(name)` clause, and §III-A's contrast is the
//! conceptual heart of the proposal: "Conventionally, a device target has
//! its own memory and data environment, therefore the data mapping and
//! synchronization are necessary between the host and the target. …
//! In contrast, a virtual target actually shares the same memory as the
//! host."
//!
//! No accelerator hardware exists in this reproduction, so [`SimulatedDevice`]
//! models exactly the part that matters for the programming model: a
//! separate memory space with explicit `target data`-style mapping
//! ([`map_to`](SimulatedDevice::map_to) /
//! [`map_from`](SimulatedDevice::map_from) /
//! [`update`](SimulatedDevice::update)), a configurable per-byte transfer
//! cost, and kernels that may touch *only* mapped buffers. Tests use it to
//! demonstrate why virtual targets need none of this ceremony.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::executor::{TargetKind, TargetStats, VirtualTarget};
use crate::task::TargetRegion;
use crate::worker::WorkerTarget;

/// Errors from device operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// A kernel touched a buffer that was never mapped.
    NotMapped(String),
    /// Mapping a name that is already mapped.
    AlreadyMapped(String),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::NotMapped(n) => write!(f, "buffer `{n}` is not mapped to the device"),
            DeviceError::AlreadyMapped(n) => write!(f, "buffer `{n}` is already mapped"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A simulated accelerator: separate memory + an execution queue.
pub struct SimulatedDevice {
    device_number: u32,
    /// Device "global memory": name → buffer.
    memory: Mutex<HashMap<String, Vec<u8>>>,
    /// Executes device kernels (a real device executes asynchronously from
    /// the host, so a 1-thread pool is the faithful analogue).
    queue: Arc<WorkerTarget>,
    /// Simulated PCIe-style transfer cost, per byte.
    transfer_cost_per_kib: Duration,
    bytes_to_device: AtomicU64,
    bytes_from_device: AtomicU64,
}

impl SimulatedDevice {
    /// Creates device `n` with the given per-KiB transfer latency.
    pub fn new(device_number: u32, transfer_cost_per_kib: Duration) -> Arc<Self> {
        Arc::new(SimulatedDevice {
            device_number,
            memory: Mutex::new(HashMap::new()),
            queue: WorkerTarget::new(format!("device-{device_number}"), 1),
            transfer_cost_per_kib,
            bytes_to_device: AtomicU64::new(0),
            bytes_from_device: AtomicU64::new(0),
        })
    }

    /// The `device-number` of the clause.
    pub fn device_number(&self) -> u32 {
        self.device_number
    }

    fn charge_transfer(&self, bytes: usize) {
        if !self.transfer_cost_per_kib.is_zero() && bytes > 0 {
            let kib = bytes.div_ceil(1024) as u32;
            std::thread::sleep(self.transfer_cost_per_kib * kib);
        }
    }

    /// `map(to: …)`: copies a host buffer into device memory.
    pub fn map_to(&self, name: &str, host: &[u8]) -> Result<(), DeviceError> {
        let mem = self.memory.lock();
        if mem.contains_key(name) {
            return Err(DeviceError::AlreadyMapped(name.to_string()));
        }
        drop(mem);
        self.charge_transfer(host.len());
        self.bytes_to_device
            .fetch_add(host.len() as u64, Ordering::Relaxed);
        self.memory.lock().insert(name.to_string(), host.to_vec());
        Ok(())
    }

    /// `map(from: …)`: copies device memory back to the host and unmaps.
    pub fn map_from(&self, name: &str, host: &mut Vec<u8>) -> Result<(), DeviceError> {
        let buf = self
            .memory
            .lock()
            .remove(name)
            .ok_or_else(|| DeviceError::NotMapped(name.to_string()))?;
        self.charge_transfer(buf.len());
        self.bytes_from_device
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        *host = buf;
        Ok(())
    }

    /// `target update`: refreshes a mapped buffer from the host without
    /// unmapping.
    pub fn update(&self, name: &str, host: &[u8]) -> Result<(), DeviceError> {
        let mem = self.memory.lock();
        if !mem.contains_key(name) {
            return Err(DeviceError::NotMapped(name.to_string()));
        }
        drop(mem);
        self.charge_transfer(host.len());
        self.bytes_to_device
            .fetch_add(host.len() as u64, Ordering::Relaxed);
        self.memory.lock().insert(name.to_string(), host.to_vec());
        Ok(())
    }

    /// Launches a kernel on the device: `f` receives the device memory map
    /// and may only touch mapped buffers. Returns the completion handle.
    pub fn launch<F>(self: &Arc<Self>, label: &str, f: F) -> crate::task::TaskHandle
    where
        F: FnOnce(&mut DeviceMemory) + Send + 'static,
    {
        let dev = Arc::clone(self);
        let region = TargetRegion::new(format!("device-kernel:{label}"), move || {
            let mut guard = dev.memory.lock();
            let mut mem = DeviceMemory { map: &mut guard };
            f(&mut mem);
        });
        let handle = region.handle();
        use crate::executor::VirtualTarget as _;
        self.queue.post(region);
        handle
    }

    /// Total bytes copied host→device so far.
    pub fn bytes_to_device(&self) -> u64 {
        self.bytes_to_device.load(Ordering::Relaxed)
    }

    /// Total bytes copied device→host so far.
    pub fn bytes_from_device(&self) -> u64 {
        self.bytes_from_device.load(Ordering::Relaxed)
    }

    /// True when `name` is currently mapped.
    pub fn is_mapped(&self, name: &str) -> bool {
        self.memory.lock().contains_key(name)
    }
}

/// A kernel's view of device memory: mapped buffers only.
pub struct DeviceMemory<'a> {
    map: &'a mut HashMap<String, Vec<u8>>,
}

impl DeviceMemory<'_> {
    /// Mutable access to a mapped buffer.
    pub fn buffer_mut(&mut self, name: &str) -> Result<&mut Vec<u8>, DeviceError> {
        self.map
            .get_mut(name)
            .ok_or_else(|| DeviceError::NotMapped(name.to_string()))
    }

    /// Read access to a mapped buffer.
    pub fn buffer(&self, name: &str) -> Result<&Vec<u8>, DeviceError> {
        self.map
            .get(name)
            .ok_or_else(|| DeviceError::NotMapped(name.to_string()))
    }
}

/// Adapter so a simulated device can also be registered as a target and
/// receive whole blocks (the `target device(n)` directive path). Blocks
/// executed this way see *no* host data other than what they capture —
/// mirroring that a real device block operates on mapped state.
pub struct DeviceTarget {
    name: String,
    device: Arc<SimulatedDevice>,
}

impl DeviceTarget {
    /// Wraps a device as a named target (e.g. `"device:0"`).
    pub fn new(device: Arc<SimulatedDevice>) -> Arc<Self> {
        Arc::new(DeviceTarget {
            name: format!("device:{}", device.device_number()),
            device,
        })
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Arc<SimulatedDevice> {
        &self.device
    }
}

impl VirtualTarget for DeviceTarget {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> TargetKind {
        TargetKind::Worker // executes on a background queue, like a worker
    }

    fn post(&self, region: Arc<TargetRegion>) {
        self.device.queue.post(region);
    }

    fn is_member(&self) -> bool {
        self.device.queue.is_member()
    }

    fn help_one(&self) -> bool {
        self.device.queue.help_one()
    }

    fn pending(&self) -> usize {
        self.device.queue.pending()
    }

    fn stats(&self) -> TargetStats {
        self.device.queue.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Arc<SimulatedDevice> {
        SimulatedDevice::new(0, Duration::ZERO)
    }

    #[test]
    fn map_launch_map_back() {
        let d = dev();
        let host: Vec<u8> = (0..=255).collect();
        d.map_to("buf", &host).unwrap();
        let h = d.launch("add1", |mem| {
            for b in mem.buffer_mut("buf").unwrap().iter_mut() {
                *b = b.wrapping_add(1);
            }
        });
        h.join();
        let mut out = Vec::new();
        d.map_from("buf", &mut out).unwrap();
        assert_eq!(out[0], 1);
        assert_eq!(out[255], 0);
        assert!(!d.is_mapped("buf"), "map_from unmaps");
    }

    #[test]
    fn kernel_cannot_touch_unmapped_buffers() {
        let d = dev();
        let h = d.launch("bad", |mem| {
            assert!(matches!(
                mem.buffer("ghost"),
                Err(DeviceError::NotMapped(_))
            ));
        });
        h.join();
    }

    #[test]
    fn double_map_rejected() {
        let d = dev();
        d.map_to("x", &[1]).unwrap();
        assert_eq!(d.map_to("x", &[2]), Err(DeviceError::AlreadyMapped("x".into())));
    }

    #[test]
    fn map_from_unmapped_rejected() {
        let d = dev();
        let mut out = Vec::new();
        assert!(matches!(
            d.map_from("nope", &mut out),
            Err(DeviceError::NotMapped(_))
        ));
    }

    #[test]
    fn update_refreshes_without_unmapping() {
        let d = dev();
        d.map_to("x", &[1, 2, 3]).unwrap();
        d.update("x", &[9, 9]).unwrap();
        let h = d.launch("check", |mem| {
            assert_eq!(mem.buffer("x").unwrap().as_slice(), &[9, 9]);
        });
        h.join();
        assert!(d.is_mapped("x"));
        assert!(matches!(d.update("ghost", &[]), Err(DeviceError::NotMapped(_))));
    }

    #[test]
    fn transfer_accounting() {
        let d = dev();
        d.map_to("a", &vec![0u8; 1000]).unwrap();
        let mut out = Vec::new();
        d.map_from("a", &mut out).unwrap();
        assert_eq!(d.bytes_to_device(), 1000);
        assert_eq!(d.bytes_from_device(), 1000);
    }

    #[test]
    fn transfer_cost_is_charged() {
        let d = SimulatedDevice::new(1, Duration::from_millis(2));
        let t0 = std::time::Instant::now();
        d.map_to("big", &vec![0u8; 4 * 1024]).unwrap(); // 4 KiB → ≥8 ms
        assert!(t0.elapsed() >= Duration::from_millis(8));
    }

    #[test]
    fn device_registers_as_target_in_runtime() {
        // `target device(0)` dispatch path: register and offload a block.
        let rt = crate::Runtime::new();
        let d = dev();
        let target = DeviceTarget::new(Arc::clone(&d));
        rt.register(target.name().to_string(), target as Arc<dyn VirtualTarget>)
            .unwrap();
        let h = rt.target("device:0", crate::Mode::Wait, || {});
        assert!(h.is_finished());
    }

    #[test]
    fn virtual_target_needs_no_mapping_device_does() {
        // The §III-A contrast, executable: the same computation through a
        // virtual target touches host data directly; through the device it
        // must be mapped, transformed in device memory, and mapped back.
        let rt = crate::Runtime::new();
        rt.virtual_target_create_worker("worker", 1);

        // Virtual target: shared memory, zero ceremony.
        let host = Arc::new(Mutex::new(vec![1u8, 2, 3]));
        let h2 = Arc::clone(&host);
        rt.target("worker", crate::Mode::Wait, move || {
            for b in h2.lock().iter_mut() {
                *b *= 2;
            }
        });
        assert_eq!(*host.lock(), vec![2, 4, 6]);

        // Device: explicit map / launch / map-from.
        let d = dev();
        d.map_to("v", &host.lock()).unwrap();
        d.launch("triple", |mem| {
            for b in mem.buffer_mut("v").unwrap().iter_mut() {
                *b *= 3;
            }
        })
        .join();
        let mut back = Vec::new();
        d.map_from("v", &mut back).unwrap();
        assert_eq!(back, vec![6, 12, 18]);
        assert_eq!(d.bytes_to_device(), 3);
        assert_eq!(d.bytes_from_device(), 3);
    }
}
