//! Worker virtual targets: fixed-size thread pools with a work-stealing
//! scheduler.
//!
//! `virtual_target_create_worker(tname, m)` creates "a worker virtual target
//! with maximum of m threads" (Table II). A worker target's lifecycle "lasts
//! throughout the program" (§III-D); dropping the handle shuts the pool down
//! (join on drop) because a Rust library must not leak threads.
//!
//! ## Scheduling
//!
//! The pool used to funnel every submit, pop and await-barrier help through
//! one `Mutex<VecDeque>` + `Condvar`, so an m-thread pool serialized on a
//! single lock exactly where the HTTP and GUI benchmarks stress it hardest.
//! It now schedules through three distributed sources:
//!
//! * a **per-thread [`ChaseLev`] deque** — a pool thread posting to its own
//!   pool pushes here (owner LIFO, no lock, cache-warm);
//! * **sibling deques** — an idle thread steals the oldest item from another
//!   member's deque;
//! * a **global FIFO injector** (short `Mutex<VecDeque>` critical section) —
//!   external submissions land here, preserving the observable FIFO
//!   ordering of same-producer regions.
//!
//! Both remote sources are **batched** (PR 10): a steal claims up to half
//! the victim's run (`steal_half`, surplus re-queued on the thief's own
//! deque), and an injector hit drains up to [`INJECTOR_BATCH`] tasks under
//! one lock hold into a per-worker pending buffer that is consumed — still
//! in FIFO order — before the next drain. Idle siblings rescue from a busy
//! worker's buffer front, so batching never strands a task behind a
//! blocking handler. Batch amortisation is observable
//! through the `steal_batches`/`injector_batches` counters; the
//! executed-conservation law is unchanged because moved tasks are counted
//! at final acquisition (steal-moved → `local_pops`, injector-moved →
//! `injector_pops`).
//!
//! Members look for work in that order (local, buffered, steal, injector)
//! and park on
//! their [`WakeSignal`] when every source is dry. An enqueue wakes exactly
//! **one** parked helper — a parked pool thread if there is one, otherwise
//! one registered await-barrier parker — and a woken thread that finds more
//! work pending cascades the wake to the next sleeper. Only shutdown
//! notifies everyone. The park/wake handshake is the standard eventcount
//! protocol: a thread marks itself parked, fences, re-checks all sources,
//! and only then blocks; a producer publishes the item, fences, and only
//! then scans for sleepers — one side always observes the other.
//!
//! The await logical barrier's helping path (`help_one`,
//! [`WorkerTarget::help_current_thread_pool`], Algorithm 1 line 15) runs the
//! same local-pop → steal → injector sequence, so a member blocked in an
//! `await` drains work without contending on a pool-wide lock.
//!
//! ## Live resize
//!
//! The pool's *slot capacity* is fixed at construction, but its *logical
//! size* (`target_threads`) changes at runtime through [`WorkerTarget::
//! resize`] — this is what the control plane's worker subscriber calls. A
//! worker whose index falls at or above the target gracefully **retires**:
//! it drains its own deque into the FIFO injector (so no accepted region is
//! ever stranded behind a parked thread), wakes a survivor to pick the
//! drained work up, flags itself `retired` (which makes `wake_one` skip it
//! — it must not be chosen to serve new work) and parks on its own signal
//! until a later grow raises the target past its index or shutdown fires.
//! Growing reuses the existing spawn path for never-started slots and just
//! notifies retired ones; the permit semantics of [`WakeSignal`] make the
//! store-target-then-notify / check-target-then-park race lose no wakeups.
//! The retire drain handshake is model-checked in
//! `pyjama-check/src/models/config_cell.rs` (DESIGN.md §5k), including the
//! seeded mutation that skips the drain and loses a region.
//!
//! Model-checked twin: `pyjama-check/src/models/pool_join.rs` ports the
//! injector's post/shutdown/final-drain protocol and the eventcount park
//! (`ModelInjector`) onto instrumented shims; the checked invariant is that
//! an accepted post's `injector_len` increment happens-before the SeqCst
//! shutdown read that gates the final drain, so accepted regions are never
//! stranded. Keep the port in sync with protocol changes here — DESIGN.md
//! §5h.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use parking_lot::Mutex;
use pyjama_trace::{arg as trace_arg, Stage};

use crate::deque::{ChaseLev, Steal};
use crate::executor::{TargetKind, TargetStats, TargetStatsInner, VirtualTarget};
use crate::parker::WakeSignal;
use crate::task::TargetRegion;

/// What the current thread knows about the pool it belongs to.
struct WorkerCtx {
    inner: Weak<Inner>,
    /// This thread's slot index — its deque in `Inner::slots`.
    index: usize,
}

thread_local! {
    /// The worker target the current thread belongs to, if any.
    static CURRENT_WORKER: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

/// How many injector tasks one drain may claim under a single lock hold:
/// the first runs immediately, up to `INJECTOR_BATCH - 1` more are buffered
/// on the draining worker. Small enough that a slow handler holds at most a
/// handful of FIFO tasks hostage, large enough to amortise the lock to
/// noise under external load.
const INJECTOR_BATCH: usize = 8;

/// Per-pool-thread scheduler state.
struct WorkerSlot {
    /// The thread's own deque: owner pushes/pops the bottom, siblings steal
    /// the top. The owner-only discipline is structural — only pool thread
    /// `i` (its run loop and its re-entrant helping, which are sequential on
    /// that thread) ever calls `push`/`pop` on slot `i`.
    deque: ChaseLev<Arc<TargetRegion>>,
    /// Injector tasks this worker claimed in a batched drain but has not
    /// yet run. The owner consumes the front between handlers; an idle
    /// sibling that finds every deque dry *rescues* from the front too, so
    /// a handler blocking mid-batch cannot starve co-batched tasks. The
    /// lock is only taken when `pending_len` reads non-zero.
    pending: Mutex<VecDeque<Arc<TargetRegion>>>,
    /// Lock-free mirror of `pending.len()` so `queue_len` stays lock-free.
    pending_len: AtomicUsize,
    /// Parker for the thread's idle loop.
    signal: WakeSignal,
    /// True while the thread is inside (or committing to) a park in its run
    /// loop; producers scan this to pick a single thread to wake.
    parked: AtomicBool,
    /// True while the thread is retired by a shrink (parked indefinitely,
    /// deque drained). Retired slots are *not* wake candidates: `parked`
    /// stays false the whole time, so `wake_one` never picks them.
    retired: AtomicBool,
}

/// The injector's lock also serializes posts against shutdown, preserving
/// the old single-lock guarantee that a post either lands before shutdown
/// (and runs) or observes it (and cancels).
struct Injector {
    tasks: VecDeque<Arc<TargetRegion>>,
    shutdown: bool,
}

/// Await-barrier parkers of member threads; one is notified per enqueue
/// when no pool thread is parked, all on shutdown. Tokens never reused.
struct BarrierWakers {
    wakers: Vec<(u64, Arc<WakeSignal>)>,
    next_id: u64,
}

struct Inner {
    name: String,
    slots: Box<[WorkerSlot]>,
    injector: Mutex<Injector>,
    /// Injector length mirror for lock-free `pending()` and the pre-park
    /// re-check. SeqCst on both sides of the eventcount handshake.
    injector_len: AtomicUsize,
    /// Lock-free mirror of `Injector::shutdown`.
    shutdown: AtomicBool,
    /// Logical pool size: workers with `index >= target_threads` retire.
    /// Bounded above by `slots.len()` (the fixed capacity). SeqCst so the
    /// retire check composes with the eventcount handshake's fences.
    target_threads: AtomicUsize,
    barrier: Mutex<BarrierWakers>,
    /// Round-robin cursor over registered barrier wakers.
    barrier_rr: AtomicUsize,
    stats: TargetStatsInner,
}

impl Inner {
    /// This thread's slot index, if it is a member of *this* pool.
    fn member_index(&self) -> Option<usize> {
        CURRENT_WORKER.with(|c| {
            c.borrow()
                .as_ref()
                .filter(|ctx| std::ptr::eq(ctx.inner.as_ptr(), self as *const Inner))
                .map(|ctx| ctx.index)
        })
    }

    /// Pops a task from worker `who`'s batch-drain buffer — its own on the
    /// fast path, a busy sibling's when rescuing (see `try_steal`). Buffered
    /// tasks count as `injector_pops` at consumption time regardless of who
    /// runs them, so the conservation law is batch-size independent.
    fn pop_buffered(&self, who: usize) -> Option<Arc<TargetRegion>> {
        let slot = &self.slots[who];
        if slot.pending_len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let region = {
            let mut buf = slot.pending.lock();
            let region = buf.pop_front()?;
            slot.pending_len.store(buf.len(), Ordering::Relaxed);
            region
        };
        self.stats.steal.record_injector_pop();
        Some(region)
    }

    /// Pops the oldest externally submitted region, recording the hit, and
    /// drains up to `INJECTOR_BATCH - 1` follow-ups into this worker's
    /// pending buffer under the same lock hold — one synchronisation
    /// amortised over the batch. The buffer is consumed (FIFO) before the
    /// next drain, so one producer's posts still run in post order.
    fn pop_injector(&self, me: usize) -> Option<Arc<TargetRegion>> {
        if self.injector_len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let mut g = self.injector.lock();
        let region = g.tasks.pop_front()?;
        let extra = g.tasks.len().min(INJECTOR_BATCH - 1);
        if extra > 0 {
            // Lock order injector → pending, same as `retire_park`; the
            // buffer lock is owner-only so this never waits.
            let slot = &self.slots[me];
            let mut buf = slot.pending.lock();
            buf.extend(g.tasks.drain(..extra));
            slot.pending_len.store(buf.len(), Ordering::Relaxed);
        }
        // Decrement while still holding the lock so the lock-free mirror
        // never over-reports a popped item (post's increment is likewise
        // under the lock).
        self.injector_len.fetch_sub(1 + extra, Ordering::SeqCst);
        drop(g);
        self.stats.steal.record_injector_pop();
        self.stats.steal.record_injector_batch(extra as u64);
        Some(region)
    }

    /// Probes every sibling deque once, starting after `me`. A probe that
    /// loses a claim race ([`Steal::Retry`]) moves on to the next victim —
    /// the contended item went to someone else, and spinning on one hot
    /// deque would starve the other sources.
    ///
    /// A hit is a **batched** steal: `steal_half` claims up to half the
    /// victim's run, returning the oldest task to run now and pushing the
    /// surplus onto `me`'s own deque (this is the caller's thread, so the
    /// owner-push discipline holds). The surplus stays stealable by third
    /// parties and executes as later `local_pops`.
    fn try_steal(&self, me: usize) -> Option<Arc<TargetRegion>> {
        let n = self.slots.len();
        for i in 1..n {
            let victim = (me + i) % n;
            self.stats.steal.record_steal_attempt();
            let (result, moved) = self.slots[victim].deque.steal_half(&self.slots[me].deque);
            match result {
                Steal::Item(region) => {
                    self.stats.steal.record_steal();
                    if moved > 0 {
                        self.stats.steal.record_steal_batch(moved as u64);
                    }
                    return Some(region);
                }
                Steal::Empty | Steal::Retry => debug_assert_eq!(moved, 0),
            }
            // Rescue: the victim batch-drained injector tasks but is stuck
            // in a long (or blocking) handler. Without this, co-batched
            // tasks would be invisible to idle siblings until the handler
            // returns — a liveness hole the pre-batching injector did not
            // have. FIFO is preserved (rescues take the buffer's front).
            if let Some(region) = self.pop_buffered(victim) {
                return Some(region);
            }
        }
        None
    }

    /// One acquisition pass for a member thread: own deque, then the
    /// batch-drain buffer, then siblings, then the injector. Shared by the
    /// run loop and the helping paths.
    fn acquire(&self, me: usize) -> Option<Arc<TargetRegion>> {
        if let Some(region) = self.slots[me].deque.pop() {
            self.stats.steal.record_local_pop();
            pyjama_trace::emit(region.trace_id(), Stage::RegionDequeued, trace_arg::DEQ_LOCAL);
            return Some(region);
        }
        if let Some(region) = self.pop_buffered(me) {
            pyjama_trace::emit(
                region.trace_id(),
                Stage::RegionDequeued,
                trace_arg::DEQ_INJECTOR,
            );
            // Cascade like the injector path: remaining buffered tasks are
            // rescuable by siblings, so one more sleeper can be productive.
            if self.has_pending() {
                self.wake_one();
            }
            return Some(region);
        }
        if let Some(region) = self.try_steal(me) {
            pyjama_trace::emit(region.trace_id(), Stage::RegionDequeued, trace_arg::DEQ_STEAL);
            // Cascade: the victim still has work (or the injector does), so
            // one more sleeper can be productive.
            if self.has_pending() {
                self.wake_one();
            }
            return Some(region);
        }
        if let Some(region) = self.pop_injector(me) {
            pyjama_trace::emit(
                region.trace_id(),
                Stage::RegionDequeued,
                trace_arg::DEQ_INJECTOR,
            );
            if self.has_pending() {
                self.wake_one();
            }
            return Some(region);
        }
        None
    }

    /// Whether any source has queued work (racy; used for re-checks and
    /// cascade decisions, never for correctness-critical emptiness).
    fn has_pending(&self) -> bool {
        self.injector_len.load(Ordering::SeqCst) > 0
            || self
                .slots
                .iter()
                .any(|s| !s.deque.is_empty() || s.pending_len.load(Ordering::Relaxed) > 0)
    }

    /// Lock-free queue length: injector, every member deque, and every
    /// member's batch-drain buffer (claimed but not yet run).
    fn queue_len(&self) -> usize {
        self.injector_len.load(Ordering::SeqCst)
            + self
                .slots
                .iter()
                .map(|s| s.deque.len() + s.pending_len.load(Ordering::Relaxed))
                .sum::<usize>()
    }

    /// Wakes a single parked helper: a parked pool thread if any, otherwise
    /// one registered await-barrier parker (round-robin). Callers must have
    /// published the new work (and fenced) first.
    fn wake_one(&self) {
        for slot in self.slots.iter() {
            if slot.parked.load(Ordering::SeqCst) {
                slot.signal.notify();
                return;
            }
        }
        let waker = {
            let g = self.barrier.lock();
            if g.wakers.is_empty() {
                None
            } else {
                let i = self.barrier_rr.fetch_add(1, Ordering::Relaxed) % g.wakers.len();
                Some(Arc::clone(&g.wakers[i].1))
            }
        };
        if let Some(w) = waker {
            w.notify();
        }
    }

    /// Executes one region on behalf of the pool, then offers it back to
    /// the region recycler — on the steady-state path (nothing pinning the
    /// region) the next post reuses it instead of allocating.
    fn run(&self, region: Arc<TargetRegion>) {
        // Counted before running: a waiter released by the region's
        // completion must never observe a snapshot missing this execution.
        self.stats.executed.fetch_add(1, Ordering::Relaxed);
        region.execute();
        crate::slab::release(region);
    }

    /// The member thread run loop: acquire → execute; park when dry; exit
    /// once shutdown is flagged and every source is dry. Items can never be
    /// stranded: a post accepted before shutdown increments `injector_len`
    /// under the injector lock *before* the flag flips, so after a SeqCst
    /// read of `shutdown == true` the final drain below is guaranteed to
    /// observe it; after the flag is set no source can grow (late posts are
    /// rejected, member pushes are drained by their own thread's final
    /// drain), and any already-popped region is executed by its holder
    /// before that holder's next (and final) empty check.
    fn run_loop(self: &Arc<Self>, me: usize) {
        CURRENT_WORKER.with(|c| {
            *c.borrow_mut() = Some(WorkerCtx {
                inner: Arc::downgrade(self),
                index: me,
            });
        });
        loop {
            // Live-shrink check: a resize lowered the target below our
            // index. Retire (drain own deque → injector, park) until a
            // grow or shutdown; either way, re-evaluate from the top.
            if me >= self.target_threads.load(Ordering::SeqCst)
                && !self.shutdown.load(Ordering::SeqCst)
            {
                self.retire_park(me);
                continue;
            }
            if let Some(region) = self.acquire(me) {
                self.run(region);
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                // Drain once more before exiting: a producer may have won
                // the injector lock (post accepted) between our failed
                // acquire above and the flag flip, with every sibling past
                // its own acquire too — so no parked thread existed for
                // wake_one to pick. Without this pass that region would be
                // neither executed nor cancelled and its waiters would hang.
                while let Some(region) = self.acquire(me) {
                    self.run(region);
                }
                return;
            }
            // Eventcount park: declare, fence, re-check, then block. A
            // producer publishes first and scans second, so either our
            // re-check sees the item or the producer sees `parked`.
            let slot = &self.slots[me];
            slot.parked.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if self.has_pending() || self.shutdown.load(Ordering::SeqCst) {
                slot.parked.store(false, Ordering::SeqCst);
                continue;
            }
            pyjama_trace::emit(pyjama_trace::TraceId::NONE, Stage::WorkerPark, me as u32);
            slot.signal.park();
            pyjama_trace::emit(pyjama_trace::TraceId::NONE, Stage::WorkerWake, me as u32);
            slot.parked.store(false, Ordering::SeqCst);
        }
    }

    /// Graceful retire after a shrink: drain our deque into the injector
    /// (zero lost regions — the items become stealable FIFO work for the
    /// survivors), wake a survivor for them, then park until a grow raises
    /// the target past `me` or shutdown fires. Called only from the slot's
    /// own run loop, so the owner-only deque discipline holds throughout.
    fn retire_park(&self, me: usize) {
        let slot = &self.slots[me];
        {
            let mut g = self.injector.lock();
            while let Some(region) = slot.deque.pop() {
                g.tasks.push_back(region);
                // Under the lock, exactly like `post` — the lock-free
                // mirror never under-reports queued work.
                self.injector_len.fetch_add(1, Ordering::SeqCst);
            }
            // Batch-drained-but-unrun injector tasks go back too (front,
            // preserving FIFO relative to tasks still in the injector that
            // were posted after them). They are re-counted by the batch
            // gauges on the next drain but execute exactly once.
            let mut buf = slot.pending.lock();
            while let Some(region) = buf.pop_back() {
                g.tasks.push_front(region);
                self.injector_len.fetch_add(1, Ordering::SeqCst);
            }
            slot.pending_len.store(0, Ordering::Relaxed);
            // If shutdown was flagged while we held the lock, the drained
            // items are still safe: this thread re-checks shutdown at the
            // top of its run loop and performs the final drain itself.
        }
        // `parked` stays false: wake_one must not pick a retired worker to
        // serve new work. Resize-grow and shutdown notify this slot's
        // signal directly; the permit makes the check/park race lossless.
        slot.retired.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // Cascade any outstanding work to a survivor. This covers both the
        // just-drained items and a wake_one that picked *us* (as a parked
        // candidate) right before the shrink landed — without this, that
        // post's wakeup would retire along with us and strand its region
        // until the next unrelated wake.
        if self.has_pending() {
            self.wake_one();
        }
        while me >= self.target_threads.load(Ordering::SeqCst)
            && !self.shutdown.load(Ordering::SeqCst)
        {
            pyjama_trace::emit(pyjama_trace::TraceId::NONE, Stage::WorkerPark, me as u32);
            slot.signal.park();
            pyjama_trace::emit(pyjama_trace::TraceId::NONE, Stage::WorkerWake, me as u32);
        }
        slot.retired.store(false, Ordering::SeqCst);
    }

    /// Cancels a region that can no longer be executed by this pool.
    fn reject(&self, region: Arc<TargetRegion>) {
        // A producer racing the pool's shutdown degrades gracefully: the
        // region is rejected in a terminal Cancelled state, so waiters are
        // released instead of the producer panicking.
        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        region.cancel();
        crate::slab::release(region);
    }
}

/// RAII registration of an await-barrier parker with a worker pool; removes
/// the waker on drop (including on a propagating panic). Holds the pool
/// weakly so a pool torn down mid-await needs no special casing.
pub(crate) struct PoolWakerGuard {
    inner: Weak<Inner>,
    id: u64,
}

impl Drop for PoolWakerGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.upgrade() {
            inner.barrier.lock().wakers.retain(|(i, _)| *i != self.id);
        }
    }
}

/// Why a [`WorkerTarget::resize`] request was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResizeError {
    /// A pool of zero workers can never drain its queue.
    Zero,
    /// The request exceeds the pool's fixed slot capacity.
    ExceedsCapacity {
        /// Workers requested.
        requested: usize,
        /// The pool's immutable slot capacity.
        capacity: usize,
    },
    /// The pool is shutting down; its size can no longer change.
    ShutDown,
}

impl std::fmt::Display for ResizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResizeError::Zero => write!(f, "pool size must be >= 1"),
            ResizeError::ExceedsCapacity { requested, capacity } => {
                write!(f, "requested {requested} workers exceeds capacity {capacity}")
            }
            ResizeError::ShutDown => write!(f, "pool is shut down"),
        }
    }
}

impl std::error::Error for ResizeError {}

/// A thread-pool virtual target with a fixed slot capacity and a live
/// resizable logical size.
pub struct WorkerTarget {
    inner: Arc<Inner>,
    /// One entry per slot: `Some` once a thread has been spawned for that
    /// slot (it stays alive — possibly retired-parked — until shutdown).
    threads: Mutex<Vec<Option<JoinHandle<()>>>>,
}

impl WorkerTarget {
    /// Zeroes this pool's counters (posted/executed/steal sources). Quiesce
    /// the pool first for exact figures; increments racing the reset land on
    /// either side of it.
    pub fn reset_stats(&self) {
        self.inner.stats.reset();
    }

    /// Creates a worker target named `name` with `m` threads (Table II's
    /// `virtual_target_create_worker`). Slot capacity — the ceiling for
    /// later [`resize`](Self::resize) grows — defaults to `m` with doubling
    /// headroom up to 64 slots, so control-plane grows have room without
    /// reserving thousands of empty deques.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(name: impl Into<String>, m: usize) -> Arc<Self> {
        let capacity = m.max((m * 2).min(64));
        Self::with_capacity(name, m, capacity)
    }

    /// Creates a worker target with an explicit slot capacity (`capacity`
    /// is the hard ceiling for later resizes; only `m` threads start).
    ///
    /// # Panics
    /// Panics if `m == 0` or `capacity < m`.
    pub fn with_capacity(name: impl Into<String>, m: usize, capacity: usize) -> Arc<Self> {
        assert!(m > 0, "a worker virtual target needs at least one thread");
        assert!(capacity >= m, "capacity must be at least the initial size");
        let name = name.into();
        let slots = (0..capacity)
            .map(|_| WorkerSlot {
                deque: ChaseLev::new(),
                pending: Mutex::new(VecDeque::new()),
                pending_len: AtomicUsize::new(0),
                signal: WakeSignal::new(),
                parked: AtomicBool::new(false),
                retired: AtomicBool::new(false),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let inner = Arc::new(Inner {
            name: name.clone(),
            slots,
            injector: Mutex::new(Injector {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            injector_len: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            target_threads: AtomicUsize::new(m),
            barrier: Mutex::new(BarrierWakers {
                wakers: Vec::new(),
                next_id: 0,
            }),
            barrier_rr: AtomicUsize::new(0),
            stats: TargetStatsInner::default(),
        });
        let threads = (0..capacity)
            .map(|i| {
                if i < m {
                    Some(Self::spawn_slot(&inner, &name, i))
                } else {
                    None
                }
            })
            .collect();
        Arc::new(WorkerTarget {
            inner,
            threads: Mutex::new(threads),
        })
    }

    fn spawn_slot(inner: &Arc<Inner>, name: &str, i: usize) -> JoinHandle<()> {
        let inner = Arc::clone(inner);
        std::thread::Builder::new()
            .name(format!("{name}-{i}"))
            .spawn(move || inner.run_loop(i))
            .expect("failed to spawn worker thread")
    }

    /// Logical pool size (the live resize target), not slot capacity.
    pub fn num_threads(&self) -> usize {
        self.inner.target_threads.load(Ordering::SeqCst)
    }

    /// Fixed slot capacity — the hard ceiling for [`resize`](Self::resize).
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Changes the logical pool size at runtime; returns the previous size.
    ///
    /// Shrink is graceful: each worker at or above the new target drains
    /// its deque into the injector (no in-flight region is dropped) and
    /// parks; its thread stays alive for cheap regrow. Grow wakes retired
    /// slots and spawns never-started ones through the same path `new`
    /// uses. In-flight regions on retiring workers run to completion
    /// before the retire check is reached, so a resize never interrupts
    /// handler execution.
    pub fn resize(&self, n: usize) -> Result<usize, ResizeError> {
        if n == 0 {
            return Err(ResizeError::Zero);
        }
        let capacity = self.inner.slots.len();
        if n > capacity {
            return Err(ResizeError::ExceedsCapacity { requested: n, capacity });
        }
        // The threads lock serializes resizes with each other and with
        // shutdown (which holds it while joining).
        let mut threads = self.threads.lock();
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(ResizeError::ShutDown);
        }
        let old = self.inner.target_threads.swap(n, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if n > old {
            for i in old..n {
                match &threads[i] {
                    // Retired (or about to retire) thread: the permit from
                    // this notify guarantees its check/park loop observes
                    // the raised target.
                    Some(_) => self.inner.slots[i].signal.notify(),
                    None => threads[i] = Some(Self::spawn_slot(&self.inner, &self.inner.name, i)),
                }
            }
        } else {
            // Wake shrunk-away workers so they observe the lowered target
            // and retire instead of sleeping as stale wake candidates.
            for i in n..old {
                self.inner.slots[i].signal.notify();
            }
        }
        Ok(old)
    }

    /// Requests shutdown: queued regions still run, then threads exit.
    /// Blocks until all pool threads have joined. Idempotent.
    ///
    /// When invoked *from a pool thread* (e.g. the last `Arc` of a runtime
    /// was dropped inside a target block), the calling thread cannot join
    /// itself; it is detached instead and exits naturally when it drains
    /// the queue.
    pub fn shutdown(&self) {
        // Take the injector lock so the flag flip serializes with racing
        // posts: a post either landed (and will be drained below) or sees
        // the flag and cancels.
        self.inner.injector.lock().shutdown = true;
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Shutdown is the one event that notifies everyone: parked pool
        // threads re-check and exit, parked helpers re-check rather than
        // sleep through it.
        for slot in self.inner.slots.iter() {
            slot.signal.notify();
        }
        let wakers: Vec<_> = {
            let g = self.inner.barrier.lock();
            g.wakers.iter().map(|(_, w)| Arc::clone(w)).collect()
        };
        for w in wakers {
            w.notify();
        }
        let me = std::thread::current().id();
        let mut threads = self.threads.lock();
        for t in threads.drain(..).flatten() {
            if t.thread().id() == me {
                drop(t); // detach: a thread must not join itself
            } else {
                let _ = t.join();
            }
        }
    }

    /// Registers an await-barrier parker with the pool the current thread
    /// belongs to, so a region posted to the pool wakes the parked helper.
    /// Returns `None` off pool threads. The registration is removed when the
    /// returned guard drops.
    pub(crate) fn register_current_waker(signal: &Arc<WakeSignal>) -> Option<PoolWakerGuard> {
        let inner = CURRENT_WORKER
            .with(|c| c.borrow().as_ref().map(|ctx| ctx.inner.clone()))?
            .upgrade()?;
        let id = {
            let mut g = inner.barrier.lock();
            let id = g.next_id;
            g.next_id += 1;
            g.wakers.push((id, Arc::clone(signal)));
            id
        };
        Some(PoolWakerGuard {
            inner: Arc::downgrade(&inner),
            id,
        })
    }

    /// Help-process one pending task of the worker pool the current thread
    /// belongs to. Free function used by the await logical barrier when the
    /// encountering thread is itself a pool worker. Runs the same
    /// local-pop → steal → injector acquisition as the pool's run loop.
    pub fn help_current_thread_pool() -> bool {
        let ctx = CURRENT_WORKER.with(|c| {
            c.borrow()
                .as_ref()
                .map(|ctx| (ctx.inner.clone(), ctx.index))
        });
        let Some((weak, me)) = ctx else { return false };
        let Some(inner) = weak.upgrade() else { return false };
        match inner.acquire(me) {
            Some(region) => {
                inner.run(region);
                inner.stats.helped.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }
}

impl VirtualTarget for WorkerTarget {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn kind(&self) -> TargetKind {
        TargetKind::Worker
    }

    fn post(&self, region: Arc<TargetRegion>) {
        let inner = &*self.inner;
        let trace = region.trace_id();
        if let Some(me) = inner.member_index() {
            if inner.shutdown.load(Ordering::SeqCst) {
                inner.reject(region);
                return;
            }
            // Member fast path: owner push, no lock. (If shutdown raced in
            // after the check above, this thread's own run loop still drains
            // the deque before exiting — nothing is stranded.)
            // The posted event is recorded *before* the push so its
            // timestamp causally precedes any dequeue on another thread.
            pyjama_trace::emit(trace, Stage::RegionPosted, trace_arg::POST_MEMBER);
            inner.slots[me].deque.push(region);
        } else {
            // Recorded before the lock for the same causal-order reason; a
            // post that then loses the shutdown race simply shows
            // posted → cancelled in its flow.
            pyjama_trace::emit(trace, Stage::RegionPosted, trace_arg::POST_INJECTOR);
            let mut g = inner.injector.lock();
            if g.shutdown {
                drop(g);
                inner.reject(region);
                return;
            }
            g.tasks.push_back(region);
            // Increment under the lock: once an item is visible to a locked
            // pop, the lock-free mirror already reports it, so the length
            // fast path in `pop_injector` can never hide a queued region.
            inner.injector_len.fetch_add(1, Ordering::SeqCst);
            drop(g);
        }
        inner.stats.posted.fetch_add(1, Ordering::Relaxed);
        // Publish-then-scan half of the eventcount handshake (see run_loop).
        fence(Ordering::SeqCst);
        inner.wake_one();
    }

    fn is_member(&self) -> bool {
        self.inner.member_index().is_some()
    }

    fn help_one(&self) -> bool {
        let Some(me) = self.inner.member_index() else {
            return false;
        };
        match self.inner.acquire(me) {
            Some(region) => {
                self.inner.run(region);
                self.inner.stats.helped.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    fn pending(&self) -> usize {
        self.inner.queue_len()
    }

    fn stats(&self) -> TargetStats {
        self.inner.stats.snapshot()
    }
}

impl Drop for WorkerTarget {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WorkerTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerTarget")
            .field("name", &self.inner.name)
            .field("threads", &self.num_threads())
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskState;
    use std::sync::atomic::{AtomicBool, AtomicUsize};
    use std::time::{Duration, Instant};

    #[test]
    fn executes_posted_regions() {
        let w = WorkerTarget::new("w", 2);
        let n = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..10 {
            let n = Arc::clone(&n);
            let r = TargetRegion::new("t", move || {
                n.fetch_add(1, Ordering::SeqCst);
            });
            handles.push(r.handle());
            w.post(r);
        }
        for h in &handles {
            h.wait();
        }
        assert_eq!(n.load(Ordering::SeqCst), 10);
        assert_eq!(w.stats().executed, 10);
        assert_eq!(w.stats().posted, 10);
    }

    #[test]
    fn membership_detected_from_inside() {
        let w = WorkerTarget::new("w", 1);
        assert!(!w.is_member());
        let seen = Arc::new(AtomicBool::new(false));
        let s = Arc::clone(&seen);
        let w2 = Arc::clone(&w);
        let r = TargetRegion::new("t", move || s.store(w2.is_member(), Ordering::SeqCst));
        let h = r.handle();
        w.post(r);
        h.wait();
        assert!(seen.load(Ordering::SeqCst));
    }

    #[test]
    fn membership_distinguishes_pools() {
        let a = WorkerTarget::new("a", 1);
        let b = WorkerTarget::new("b", 1);
        let ok = Arc::new(AtomicBool::new(false));
        let okc = Arc::clone(&ok);
        let a2 = Arc::clone(&a);
        let b2 = Arc::clone(&b);
        let r = TargetRegion::new("t", move || {
            okc.store(a2.is_member() && !b2.is_member(), Ordering::SeqCst);
        });
        let h = r.handle();
        a.post(r);
        h.wait();
        assert!(ok.load(Ordering::SeqCst));
    }

    #[test]
    fn help_one_from_member_thread() {
        let w = WorkerTarget::new("w", 1);
        // Occupy the single pool thread, then have it help-process a
        // second region from inside the first.
        let helped_inside = Arc::new(AtomicBool::new(false));
        let hi = Arc::clone(&helped_inside);
        let w2 = Arc::clone(&w);

        let gate = Arc::new(AtomicBool::new(false));
        let gate2 = Arc::clone(&gate);
        let first = TargetRegion::new("first", move || {
            // Wait for the second region to be queued behind us.
            while !gate2.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            hi.store(w2.help_one(), Ordering::SeqCst);
        });
        let h1 = first.handle();
        w.post(first);

        let second = TargetRegion::new("second", || {});
        let h2 = second.handle();
        w.post(second);
        gate.store(true, Ordering::SeqCst);

        h1.wait();
        h2.wait();
        assert!(helped_inside.load(Ordering::SeqCst));
        assert_eq!(w.stats().helped, 1);
    }

    #[test]
    fn help_one_from_non_member_is_false() {
        let w = WorkerTarget::new("w", 1);
        let r = TargetRegion::new("t", || {});
        w.post(r);
        assert!(!w.help_one());
    }

    #[test]
    fn help_current_thread_pool_outside_pool_is_false() {
        assert!(!WorkerTarget::help_current_thread_pool());
    }

    #[test]
    fn shutdown_runs_remaining_tasks() {
        let w = WorkerTarget::new("w", 2);
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let n = Arc::clone(&n);
            w.post(TargetRegion::new("t", move || {
                n.fetch_add(1, Ordering::SeqCst);
            }));
        }
        w.shutdown();
        assert_eq!(n.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let w = WorkerTarget::new("w", 1);
        w.shutdown();
        w.shutdown();
    }

    #[test]
    fn post_after_shutdown_cancels_instead_of_panicking() {
        // Regression: this used to assert (panic) on the producer thread.
        let w = WorkerTarget::new("w", 1);
        w.shutdown();
        let r = TargetRegion::new("late", || unreachable!("must never run"));
        let h = r.handle();
        w.post(r);
        assert_eq!(h.state(), TaskState::Cancelled);
        h.wait(); // terminal: returns immediately
        h.join(); // no panic to propagate
        assert_eq!(w.stats().rejected, 1);
        assert_eq!(w.stats().posted, 0);
    }

    #[test]
    fn racing_producers_during_shutdown_end_terminal_never_lost() {
        // Producers race the pool's shutdown: every region must end in a
        // terminal state — Finished (it ran) or Cancelled (it was rejected),
        // never lost in a dead queue. Every accepted post must have run.
        for _ in 0..20 {
            let w = WorkerTarget::new("w", 2);
            let producers: Vec<_> = (0..4)
                .map(|_| {
                    let w = Arc::clone(&w);
                    std::thread::spawn(move || {
                        let mut handles = Vec::new();
                        for _ in 0..10 {
                            let r = TargetRegion::new("t", || {});
                            handles.push(r.handle());
                            w.post(r);
                        }
                        handles
                    })
                })
                .collect();
            w.shutdown();
            let mut finished = 0u64;
            let mut cancelled = 0u64;
            for p in producers {
                for h in p.join().expect("producer must not panic") {
                    h.wait(); // would hang forever on a lost region
                    match h.state() {
                        TaskState::Finished => finished += 1,
                        TaskState::Cancelled => cancelled += 1,
                        s => panic!("non-terminal or unexpected state {s:?}"),
                    }
                }
            }
            assert_eq!(finished + cancelled, 40);
            let s = w.stats();
            assert_eq!(s.posted, finished, "every accepted post must execute");
            assert_eq!(s.executed, finished);
            assert_eq!(s.rejected, cancelled);
        }
    }

    #[test]
    fn registered_waker_notified_on_post_and_dropped_on_deregistration() {
        let w = WorkerTarget::new("w", 1);
        let signal = Arc::new(WakeSignal::new());

        // Registration only works from a member thread.
        assert!(WorkerTarget::register_current_waker(&signal).is_none());

        let release = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&signal);
        let r2 = Arc::clone(&release);
        let reg = TargetRegion::new("register", move || {
            let guard = WorkerTarget::register_current_waker(&s2);
            assert!(guard.is_some());
            // Keep the guard alive until the main thread observed the wake.
            while !r2.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            drop(guard);
        });
        let hr = reg.handle();
        w.post(reg);
        // Wait until the single pool thread is inside the region: it is
        // busy (not parked), so the next post can only wake the registered
        // barrier parker.
        while hr.state() == TaskState::Pending {
            std::thread::sleep(Duration::from_millis(1));
        }

        let probe = TargetRegion::new("probe", || {});
        let hp = probe.handle();
        w.post(probe); // must notify the registered waker
        assert!(
            signal.park_until(Instant::now() + Duration::from_secs(5)),
            "post must signal the registered pool waker"
        );
        release.store(true, Ordering::SeqCst);
        hr.wait();
        hp.wait();

        // After the guard dropped, posts wake the (now idle) pool thread,
        // never the deregistered barrier waker.
        let quiet = TargetRegion::new("quiet", || {});
        let hq = quiet.handle();
        w.post(quiet);
        hq.wait();
        assert!(
            !signal.park_until(Instant::now() + Duration::from_millis(20)),
            "deregistered waker must stay silent"
        );
    }

    #[test]
    fn same_producer_external_posts_run_fifo() {
        // Regression: external submissions flow through the FIFO injector,
        // so one producer's regions execute in post order on a 1-thread
        // pool — the observable ordering the old single queue provided.
        let w = WorkerTarget::new("w", 1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..100 {
            let o = Arc::clone(&order);
            let r = TargetRegion::new("t", move || o.lock().push(i));
            handles.push(r.handle());
            w.post(r);
        }
        for h in &handles {
            h.wait();
        }
        assert_eq!(*order.lock(), (0..100).collect::<Vec<_>>());
        let s = w.stats();
        assert_eq!(s.injector_pops, 100);
        assert_eq!(s.local_pops, 0);
        assert_eq!(s.steals, 0);
    }

    #[test]
    fn member_posts_pop_locally_lifo() {
        // A pool thread posting to its own pool takes the owner fast path:
        // the regions land on its deque and are popped newest-first.
        let w = WorkerTarget::new("w", 1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let w2 = Arc::clone(&w);
        let o2 = Arc::clone(&order);
        let outer = TargetRegion::new("outer", move || {
            for i in 0..3 {
                let o = Arc::clone(&o2);
                w2.post(TargetRegion::new("sub", move || o.lock().push(i)));
            }
        });
        let h = outer.handle();
        w.post(outer);
        h.wait();
        w.shutdown(); // drains the member deque
        assert_eq!(*order.lock(), vec![2, 1, 0], "owner pops are LIFO");
        let s = w.stats();
        assert_eq!(s.local_pops, 3);
        assert_eq!(s.injector_pops, 1);
        assert_eq!(s.executed, 4);
    }

    #[test]
    fn idle_sibling_steals_from_member_deque() {
        // The member that owns a deque is blocked, so its queued region can
        // only run if the idle sibling steals it.
        let w = WorkerTarget::new("w", 2);
        let stolen_ran = Arc::new(AtomicBool::new(false));
        let w2 = Arc::clone(&w);
        let sr = Arc::clone(&stolen_ran);
        let outer = TargetRegion::new("outer", move || {
            let sr2 = Arc::clone(&sr);
            let item = TargetRegion::new("stolen", move || sr2.store(true, Ordering::SeqCst));
            let h = item.handle();
            w2.post(item); // member fast path → this thread's deque
            let t0 = Instant::now();
            while !h.is_finished() {
                assert!(
                    t0.elapsed() < Duration::from_secs(5),
                    "sibling never stole the queued item"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let h = outer.handle();
        w.post(outer);
        h.wait();
        assert!(stolen_ran.load(Ordering::SeqCst));
        let s = w.stats();
        assert_eq!(s.steals, 1, "the item can only have arrived by stealing");
        assert!(s.steal_attempts >= 1);
        assert_eq!(s.local_pops, 0);
        assert_eq!(s.injector_pops, 1);
    }

    #[test]
    fn scheduler_counters_account_for_every_execution() {
        // Conservation: every executed region was acquired through exactly
        // one of the three sources.
        let w = WorkerTarget::new("w", 4);
        let inner_handles = Arc::new(Mutex::new(Vec::new()));
        let mut outer_handles = Vec::new();
        for _ in 0..100 {
            let w2 = Arc::clone(&w);
            let ih = Arc::clone(&inner_handles);
            let r = TargetRegion::new("outer", move || {
                let sub = TargetRegion::new("sub", || {});
                ih.lock().push(sub.handle());
                w2.post(sub); // member fast path
            });
            outer_handles.push(r.handle());
            w.post(r);
        }
        for h in &outer_handles {
            h.wait();
        }
        let inner_handles = std::mem::take(&mut *inner_handles.lock());
        for h in &inner_handles {
            h.wait();
        }
        let s = w.stats();
        assert_eq!(s.posted, 200);
        assert_eq!(s.executed, 200);
        assert_eq!(
            s.executed,
            s.local_pops + s.steals + s.injector_pops,
            "each execution must be acquired exactly once: {s:?}"
        );
        assert_eq!(s.injector_pops, 100, "external posts drain via the injector");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = WorkerTarget::new("w", 0);
    }

    #[test]
    fn panicking_region_does_not_kill_pool() {
        let w = WorkerTarget::new("w", 1);
        let bad = TargetRegion::new("bad", || panic!("task bug"));
        let hb = bad.handle();
        w.post(bad);
        hb.wait();
        let ok = TargetRegion::new("ok", || {});
        let ho = ok.handle();
        w.post(ok);
        ho.wait();
        assert_eq!(ho.state(), TaskState::Finished);
    }

    #[test]
    fn dropping_last_handle_on_pool_thread_does_not_deadlock_or_panic() {
        // Regression: the final Arc<WorkerTarget> dropped *inside* a target
        // block used to make the pool thread join itself (EDEADLK panic).
        let w = WorkerTarget::new("w", 2);
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        let w_inner = Arc::clone(&w);
        let r = TargetRegion::new("self-drop", move || {
            // This closure owns what will become the last reference.
            drop(w_inner);
            d.store(true, Ordering::SeqCst);
        });
        let h = r.handle();
        w.post(r);
        drop(w); // the task's clone is now the last one
        h.wait();
        assert!(done.load(Ordering::SeqCst));
        // Give the detached thread a moment to exit cleanly.
        std::thread::sleep(Duration::from_millis(20));
    }

    #[test]
    fn parallelism_matches_pool_size() {
        // With 4 threads, 4 sleeping tasks overlap: total wall clock well
        // under 4 × sleep.
        let w = WorkerTarget::new("w", 4);
        let t0 = std::time::Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = TargetRegion::new("t", || std::thread::sleep(Duration::from_millis(50)));
                let h = r.handle();
                w.post(r);
                h
            })
            .collect();
        for h in &handles {
            h.wait();
        }
        assert!(t0.elapsed() < Duration::from_millis(150), "{:?}", t0.elapsed());
    }

    #[test]
    fn resize_validates_bounds() {
        let w = WorkerTarget::with_capacity("w", 2, 4);
        assert_eq!(w.num_threads(), 2);
        assert_eq!(w.capacity(), 4);
        assert_eq!(w.resize(0), Err(ResizeError::Zero));
        assert_eq!(
            w.resize(5),
            Err(ResizeError::ExceedsCapacity { requested: 5, capacity: 4 })
        );
        assert_eq!(w.resize(4), Ok(2));
        assert_eq!(w.num_threads(), 4);
        w.shutdown();
        assert_eq!(w.resize(2), Err(ResizeError::ShutDown));
    }

    #[test]
    fn shrink_retires_grow_revives_and_work_keeps_flowing() {
        let w = WorkerTarget::with_capacity("w", 8, 16);
        let n = Arc::new(AtomicUsize::new(0));
        let post_wave = |count: usize| {
            let mut handles = Vec::new();
            for _ in 0..count {
                let n = Arc::clone(&n);
                let r = TargetRegion::new("t", move || {
                    n.fetch_add(1, Ordering::SeqCst);
                });
                handles.push(r.handle());
                w.post(r);
            }
            for h in &handles {
                h.wait();
            }
        };
        post_wave(50);
        assert_eq!(w.resize(2), Ok(8));
        post_wave(50);
        assert_eq!(w.resize(8), Ok(2));
        post_wave(50);
        // Grow into never-spawned slots too.
        assert_eq!(w.resize(16), Ok(8));
        post_wave(50);
        assert_eq!(n.load(Ordering::SeqCst), 200);
        let s = w.stats();
        assert_eq!(s.executed, 200, "no region lost across resizes: {s:?}");
        assert_eq!(s.executed, s.local_pops + s.steals + s.injector_pops);
    }

    #[test]
    fn shrink_under_load_loses_nothing() {
        // Regions queued on about-to-retire workers' deques must drain to
        // the injector and still execute. Posting from inside regions puts
        // work on member deques, then a shrink races the wave.
        for _ in 0..10 {
            let w = WorkerTarget::with_capacity("w", 8, 16);
            let inner_handles = Arc::new(Mutex::new(Vec::new()));
            let mut outer = Vec::new();
            for _ in 0..40 {
                let w2 = Arc::clone(&w);
                let ih = Arc::clone(&inner_handles);
                let r = TargetRegion::new("outer", move || {
                    let sub = TargetRegion::new("sub", || {});
                    ih.lock().push(sub.handle());
                    w2.post(sub); // member fast path → this worker's deque
                });
                outer.push(r.handle());
                w.post(r);
            }
            w.resize(2).unwrap();
            for h in &outer {
                h.wait();
            }
            for h in std::mem::take(&mut *inner_handles.lock()) {
                h.wait(); // would hang forever on a lost region
            }
            let s = w.stats();
            assert_eq!(s.posted, 80);
            assert_eq!(s.executed, 80, "shrink dropped a region: {s:?}");
        }
    }

    #[test]
    fn retired_workers_exit_cleanly_on_shutdown() {
        let w = WorkerTarget::with_capacity("w", 4, 8);
        w.resize(1).unwrap();
        // Give retirees a moment to park, then shut down: join must not hang.
        std::thread::sleep(Duration::from_millis(10));
        w.shutdown();
    }

    #[test]
    fn pending_is_lock_free_and_sums_all_sources() {
        let w = WorkerTarget::new("w", 1);
        assert_eq!(w.pending(), 0);
        // Occupy the pool thread so posted regions stay queued.
        let gate = Arc::new(AtomicBool::new(false));
        let g2 = Arc::clone(&gate);
        let blocker = TargetRegion::new("blocker", move || {
            while !g2.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let hb = blocker.handle();
        w.post(blocker);
        while hb.state() == TaskState::Pending {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut handles = Vec::new();
        for _ in 0..5 {
            let r = TargetRegion::new("queued", || {});
            handles.push(r.handle());
            w.post(r);
        }
        assert_eq!(w.pending(), 5);
        gate.store(true, Ordering::SeqCst);
        for h in &handles {
            h.wait();
        }
        assert_eq!(w.pending(), 0);
    }
}
