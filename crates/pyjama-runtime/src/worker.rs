//! Worker virtual targets: fixed-size thread pools.
//!
//! `virtual_target_create_worker(tname, m)` creates "a worker virtual target
//! with maximum of m threads" (Table II). A worker target's lifecycle "lasts
//! throughout the program" (§III-D); dropping the handle shuts the pool down
//! (join on drop) because a Rust library must not leak threads.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::executor::{TargetKind, TargetStats, TargetStatsInner, VirtualTarget};
use crate::parker::WakeSignal;
use crate::task::TargetRegion;

thread_local! {
    /// The worker target the current thread belongs to, if any.
    static CURRENT_WORKER: RefCell<Option<Weak<Inner>>> = const { RefCell::new(None) };
}

struct Inner {
    name: String,
    queue: Mutex<QueueState>,
    cond: Condvar,
    stats: TargetStatsInner,
}

struct QueueState {
    tasks: VecDeque<Arc<TargetRegion>>,
    shutdown: bool,
    /// Parkers of member threads blocked in an await barrier; notified on
    /// every enqueue and on shutdown. Tokens are pool-local, never reused.
    wakers: Vec<(u64, Arc<WakeSignal>)>,
    next_waker_id: u64,
}

impl QueueState {
    /// Clones the registered wakers so they can be notified after the queue
    /// lock is released.
    fn wakers_snapshot(&self) -> Vec<Arc<WakeSignal>> {
        if self.wakers.is_empty() {
            Vec::new()
        } else {
            self.wakers.iter().map(|(_, w)| Arc::clone(w)).collect()
        }
    }
}

impl Inner {
    fn pop_blocking(&self) -> Option<Arc<TargetRegion>> {
        let mut g = self.queue.lock();
        loop {
            if let Some(t) = g.tasks.pop_front() {
                return Some(t);
            }
            if g.shutdown {
                return None;
            }
            self.cond.wait(&mut g);
        }
    }

    fn try_pop(&self) -> Option<Arc<TargetRegion>> {
        self.queue.lock().tasks.pop_front()
    }
}

/// RAII registration of an await-barrier parker with a worker pool; removes
/// the waker on drop (including on a propagating panic). Holds the pool
/// weakly so a pool torn down mid-await needs no special casing.
pub(crate) struct PoolWakerGuard {
    inner: Weak<Inner>,
    id: u64,
}

impl Drop for PoolWakerGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.upgrade() {
            inner.queue.lock().wakers.retain(|(i, _)| *i != self.id);
        }
    }
}

/// A fixed-size thread-pool virtual target.
pub struct WorkerTarget {
    inner: Arc<Inner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerTarget {
    /// Creates a worker target named `name` with `m` threads (Table II's
    /// `virtual_target_create_worker`).
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(name: impl Into<String>, m: usize) -> Arc<Self> {
        assert!(m > 0, "a worker virtual target needs at least one thread");
        let name = name.into();
        let inner = Arc::new(Inner {
            name: name.clone(),
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
                wakers: Vec::new(),
                next_waker_id: 0,
            }),
            cond: Condvar::new(),
            stats: TargetStatsInner::default(),
        });
        let threads = (0..m)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        CURRENT_WORKER
                            .with(|c| *c.borrow_mut() = Some(Arc::downgrade(&inner)));
                        while let Some(region) = inner.pop_blocking() {
                            region.execute();
                            inner.stats.executed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Arc::new(WorkerTarget {
            inner,
            threads: Mutex::new(threads),
        })
    }

    /// Number of pool threads.
    pub fn num_threads(&self) -> usize {
        self.threads.lock().len()
    }

    /// Requests shutdown: queued regions still run, then threads exit.
    /// Blocks until all pool threads have joined. Idempotent.
    ///
    /// When invoked *from a pool thread* (e.g. the last `Arc` of a runtime
    /// was dropped inside a target block), the calling thread cannot join
    /// itself; it is detached instead and exits naturally when it drains
    /// the queue.
    pub fn shutdown(&self) {
        let wakers = {
            let mut g = self.inner.queue.lock();
            g.shutdown = true;
            g.wakers_snapshot()
        };
        self.inner.cond.notify_all();
        // Parked helpers re-check rather than sleep through the shutdown.
        for w in wakers {
            w.notify();
        }
        let me = std::thread::current().id();
        let mut threads = self.threads.lock();
        for t in threads.drain(..) {
            if t.thread().id() == me {
                drop(t); // detach: a thread must not join itself
            } else {
                let _ = t.join();
            }
        }
    }

    /// Registers an await-barrier parker with the pool the current thread
    /// belongs to, so a region posted to the pool wakes the parked helper
    /// immediately. Returns `None` off pool threads. The registration is
    /// removed when the returned guard drops.
    pub(crate) fn register_current_waker(signal: &Arc<WakeSignal>) -> Option<PoolWakerGuard> {
        let inner = CURRENT_WORKER.with(|c| c.borrow().as_ref().and_then(Weak::upgrade))?;
        let id = {
            let mut g = inner.queue.lock();
            let id = g.next_waker_id;
            g.next_waker_id += 1;
            g.wakers.push((id, Arc::clone(signal)));
            id
        };
        Some(PoolWakerGuard {
            inner: Arc::downgrade(&inner),
            id,
        })
    }

    /// Help-process one pending task of the worker pool the current thread
    /// belongs to. Free function used by the await logical barrier when the
    /// encountering thread is itself a pool worker.
    pub fn help_current_thread_pool() -> bool {
        let inner = CURRENT_WORKER.with(|c| c.borrow().as_ref().and_then(Weak::upgrade));
        match inner {
            Some(inner) => match inner.try_pop() {
                Some(region) => {
                    region.execute();
                    inner.stats.executed.fetch_add(1, Ordering::Relaxed);
                    inner.stats.helped.fetch_add(1, Ordering::Relaxed);
                    true
                }
                None => false,
            },
            None => false,
        }
    }
}

impl VirtualTarget for WorkerTarget {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn kind(&self) -> TargetKind {
        TargetKind::Worker
    }

    fn post(&self, region: Arc<TargetRegion>) {
        let wakers = {
            let mut g = self.inner.queue.lock();
            if g.shutdown {
                drop(g);
                // A producer racing the pool's shutdown degrades gracefully:
                // the region is rejected in a terminal Cancelled state, so
                // waiters are released instead of the producer panicking.
                self.inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                region.cancel();
                return;
            }
            g.tasks.push_back(region);
            g.wakers_snapshot()
        };
        self.inner.stats.posted.fetch_add(1, Ordering::Relaxed);
        self.inner.cond.notify_one();
        // Wake members parked in an await barrier: they help-drain the queue.
        for w in wakers {
            w.notify();
        }
    }

    fn is_member(&self) -> bool {
        CURRENT_WORKER.with(|c| {
            c.borrow()
                .as_ref()
                .and_then(Weak::upgrade)
                .is_some_and(|i| Arc::ptr_eq(&i, &self.inner))
        })
    }

    fn help_one(&self) -> bool {
        if !self.is_member() {
            return false;
        }
        match self.inner.try_pop() {
            Some(region) => {
                region.execute();
                self.inner.stats.executed.fetch_add(1, Ordering::Relaxed);
                self.inner.stats.helped.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    fn pending(&self) -> usize {
        self.inner.queue.lock().tasks.len()
    }

    fn stats(&self) -> TargetStats {
        self.inner.stats.snapshot()
    }
}

impl Drop for WorkerTarget {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WorkerTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerTarget")
            .field("name", &self.inner.name)
            .field("threads", &self.num_threads())
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize};
    use std::time::Duration;

    #[test]
    fn executes_posted_regions() {
        let w = WorkerTarget::new("w", 2);
        let n = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..10 {
            let n = Arc::clone(&n);
            let r = TargetRegion::new("t", move || {
                n.fetch_add(1, Ordering::SeqCst);
            });
            handles.push(r.handle());
            w.post(r);
        }
        for h in &handles {
            h.wait();
        }
        assert_eq!(n.load(Ordering::SeqCst), 10);
        assert_eq!(w.stats().executed, 10);
        assert_eq!(w.stats().posted, 10);
    }

    #[test]
    fn membership_detected_from_inside() {
        let w = WorkerTarget::new("w", 1);
        assert!(!w.is_member());
        let seen = Arc::new(AtomicBool::new(false));
        let s = Arc::clone(&seen);
        let w2 = Arc::clone(&w);
        let r = TargetRegion::new("t", move || s.store(w2.is_member(), Ordering::SeqCst));
        let h = r.handle();
        w.post(r);
        h.wait();
        assert!(seen.load(Ordering::SeqCst));
    }

    #[test]
    fn membership_distinguishes_pools() {
        let a = WorkerTarget::new("a", 1);
        let b = WorkerTarget::new("b", 1);
        let ok = Arc::new(AtomicBool::new(false));
        let okc = Arc::clone(&ok);
        let a2 = Arc::clone(&a);
        let b2 = Arc::clone(&b);
        let r = TargetRegion::new("t", move || {
            okc.store(a2.is_member() && !b2.is_member(), Ordering::SeqCst);
        });
        let h = r.handle();
        a.post(r);
        h.wait();
        assert!(ok.load(Ordering::SeqCst));
    }

    #[test]
    fn help_one_from_member_thread() {
        let w = WorkerTarget::new("w", 1);
        // Occupy the single pool thread, then have it help-process a
        // second region from inside the first.
        let helped_inside = Arc::new(AtomicBool::new(false));
        let hi = Arc::clone(&helped_inside);
        let w2 = Arc::clone(&w);

        let gate = Arc::new(AtomicBool::new(false));
        let gate2 = Arc::clone(&gate);
        let first = TargetRegion::new("first", move || {
            // Wait for the second region to be queued behind us.
            while !gate2.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            hi.store(w2.help_one(), Ordering::SeqCst);
        });
        let h1 = first.handle();
        w.post(first);

        let second = TargetRegion::new("second", || {});
        let h2 = second.handle();
        w.post(second);
        gate.store(true, Ordering::SeqCst);

        h1.wait();
        h2.wait();
        assert!(helped_inside.load(Ordering::SeqCst));
        assert_eq!(w.stats().helped, 1);
    }

    #[test]
    fn help_one_from_non_member_is_false() {
        let w = WorkerTarget::new("w", 1);
        let r = TargetRegion::new("t", || {});
        w.post(r);
        assert!(!w.help_one());
    }

    #[test]
    fn help_current_thread_pool_outside_pool_is_false() {
        assert!(!WorkerTarget::help_current_thread_pool());
    }

    #[test]
    fn shutdown_runs_remaining_tasks() {
        let w = WorkerTarget::new("w", 2);
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let n = Arc::clone(&n);
            w.post(TargetRegion::new("t", move || {
                n.fetch_add(1, Ordering::SeqCst);
            }));
        }
        w.shutdown();
        assert_eq!(n.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let w = WorkerTarget::new("w", 1);
        w.shutdown();
        w.shutdown();
    }

    #[test]
    fn post_after_shutdown_cancels_instead_of_panicking() {
        // Regression: this used to assert (panic) on the producer thread.
        let w = WorkerTarget::new("w", 1);
        w.shutdown();
        let r = TargetRegion::new("late", || unreachable!("must never run"));
        let h = r.handle();
        w.post(r);
        assert_eq!(h.state(), crate::task::TaskState::Cancelled);
        h.wait(); // terminal: returns immediately
        h.join(); // no panic to propagate
        assert_eq!(w.stats().rejected, 1);
        assert_eq!(w.stats().posted, 0);
    }

    #[test]
    fn racing_producers_during_shutdown_never_panic() {
        for _ in 0..20 {
            let w = WorkerTarget::new("w", 2);
            let producers: Vec<_> = (0..4)
                .map(|_| {
                    let w = Arc::clone(&w);
                    std::thread::spawn(move || {
                        let mut handles = Vec::new();
                        for _ in 0..10 {
                            let r = TargetRegion::new("t", || {});
                            handles.push(r.handle());
                            w.post(r);
                        }
                        handles
                    })
                })
                .collect();
            w.shutdown();
            for p in producers {
                for h in p.join().expect("producer must not panic") {
                    h.wait(); // every region reaches a terminal state
                }
            }
        }
    }

    #[test]
    fn registered_waker_notified_on_post_and_dropped_on_deregistration() {
        use crate::parker::WakeSignal;
        use std::time::Instant;

        let w = WorkerTarget::new("w", 1);
        let signal = Arc::new(WakeSignal::new());

        // Registration only works from a member thread.
        assert!(WorkerTarget::register_current_waker(&signal).is_none());

        let s2 = Arc::clone(&signal);
        let w2 = Arc::clone(&w);
        let reg = TargetRegion::new("register", move || {
            let guard = WorkerTarget::register_current_waker(&s2);
            assert!(guard.is_some());
            // Keep the guard alive while a concurrent post arrives.
            while w2.pending() == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            drop(guard);
        });
        let hr = reg.handle();
        w.post(reg);

        std::thread::sleep(Duration::from_millis(10));
        let probe = TargetRegion::new("probe", || {});
        let hp = probe.handle();
        w.post(probe); // must notify the registered waker
        assert!(
            signal.park_until(Instant::now() + Duration::from_secs(5)),
            "post must signal the registered pool waker"
        );
        hr.wait();
        hp.wait();

        // After the guard dropped, posts no longer signal.
        let quiet = TargetRegion::new("quiet", || {});
        let hq = quiet.handle();
        w.post(quiet);
        hq.wait();
        assert!(
            !signal.park_until(Instant::now() + Duration::from_millis(20)),
            "deregistered waker must stay silent"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = WorkerTarget::new("w", 0);
    }

    #[test]
    fn panicking_region_does_not_kill_pool() {
        let w = WorkerTarget::new("w", 1);
        let bad = TargetRegion::new("bad", || panic!("task bug"));
        let hb = bad.handle();
        w.post(bad);
        hb.wait();
        let ok = TargetRegion::new("ok", || {});
        let ho = ok.handle();
        w.post(ok);
        ho.wait();
        assert_eq!(ho.state(), crate::task::TaskState::Finished);
    }

    #[test]
    fn dropping_last_handle_on_pool_thread_does_not_deadlock_or_panic() {
        // Regression: the final Arc<WorkerTarget> dropped *inside* a target
        // block used to make the pool thread join itself (EDEADLK panic).
        let w = WorkerTarget::new("w", 2);
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        let w_inner = Arc::clone(&w);
        let r = TargetRegion::new("self-drop", move || {
            // This closure owns what will become the last reference.
            drop(w_inner);
            d.store(true, Ordering::SeqCst);
        });
        let h = r.handle();
        w.post(r);
        drop(w); // the task's clone is now the last one
        h.wait();
        assert!(done.load(Ordering::SeqCst));
        // Give the detached thread a moment to exit cleanly.
        std::thread::sleep(Duration::from_millis(20));
    }

    #[test]
    fn parallelism_matches_pool_size() {
        // With 4 threads, 4 sleeping tasks overlap: total wall clock well
        // under 4 × sleep.
        let w = WorkerTarget::new("w", 4);
        let t0 = std::time::Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = TargetRegion::new("t", || std::thread::sleep(Duration::from_millis(50)));
                let h = r.handle();
                w.post(r);
                h
            })
            .collect();
        for h in &handles {
            h.wait();
        }
        assert!(t0.elapsed() < Duration::from_millis(150), "{:?}", t0.elapsed());
    }
}
