//! The Pyjama runtime: **virtual targets** for OpenMP-style asynchronous
//! offloading — the core contribution of *Towards an Event-Driven
//! Programming Model for OpenMP* (ICPP 2016).
//!
//! The paper extends the OpenMP 4.0 `target` directive with a `virtual`
//! clause: instead of offloading a block to a hardware accelerator, a
//! *virtual target* is "a software-level executor capable of offloading the
//! target block from the thread which encounters this target directive"
//! (§III-A). Because virtual targets share the host's memory there is no
//! data mapping; the block runs with the data context it closes over.
//!
//! ## The model in one example
//!
//! The paper's Figure 6, transliterated:
//!
//! ```
//! use pyjama_runtime::{Runtime, Mode};
//! use std::sync::{Arc, atomic::{AtomicBool, Ordering}};
//!
//! let rt = Arc::new(Runtime::new());
//! rt.virtual_target_create_worker("worker", 2); // Table II
//! # // Normally an Edt registers itself; a worker stands in for it here.
//! rt.virtual_target_create_worker("edt", 1);
//!
//! let done = Arc::new(AtomicBool::new(false));
//! let rt2 = Arc::clone(&rt);
//! let done2 = Arc::clone(&done);
//!
//! // //#omp target virtual(worker) nowait
//! rt.target("worker", Mode::NoWait, move || {
//!     // ... downloadAndCompute(hscode) ...
//!     // //#omp target virtual(edt)  — default mode: wait
//!     rt2.target("edt", Mode::Wait, move || {
//!         done2.store(true, Ordering::SeqCst); // Panel.showMsg("Finished!")
//!     });
//! });
//! # while !done.load(Ordering::SeqCst) { std::thread::sleep(std::time::Duration::from_millis(1)); }
//! ```
//!
//! ## Scheduling modes (Table I)
//!
//! | clause | [`Mode`] | encountering thread |
//! |---|---|---|
//! | *(none)* | [`Mode::Wait`] | blocks until the block finishes |
//! | `nowait` | [`Mode::NoWait`] | skips past, never notified |
//! | `name_as(t)` | [`Mode::name_as`] | skips past; later `wait(t)` = [`Runtime::wait_tag`] |
//! | `await` | [`Mode::Await`] | skips blocking: **processes other events/tasks** until done |
//!
//! ## Algorithm 1
//!
//! [`Runtime::invoke_target_block`] is a line-for-line reimplementation of
//! the paper's Algorithm 1, including the member-thread short-circuit (a
//! thread already inside the target executes the block synchronously) and
//! the `await` *logical barrier* that keeps dispatching other work.

pub mod asyncio;
pub(crate) mod deque;
pub mod device;
pub mod directive;
pub mod executor;
pub mod invoke;
pub mod macros;
pub mod mode;
pub mod parker;
pub mod registry;
pub mod slab;
pub mod sync;
pub mod target_edt;
pub mod task;
pub mod worker;

pub use device::{DeviceTarget, SimulatedDevice};
pub use directive::{Clause, TargetDirective, TargetProperty};
pub use executor::{TargetKind, TargetStats, VirtualTarget};
pub use mode::Mode;
pub use parker::{park_stats, reset_park_stats, ParkStats, WakeSignal};
pub use registry::{Runtime, RuntimeError};
pub use slab::alloc_stats;
pub use sync::TagRegistry;
pub use target_edt::EdtTarget;
pub use task::{TargetFuture, TargetRegion, TaskHandle, TaskState};
pub use worker::{ResizeError, WorkerTarget};
