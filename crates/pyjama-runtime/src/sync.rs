//! Name-tag synchronisation (`name_as(tag)` … `wait(tag)`).
//!
//! "A task identifier name-tag is created that enables the encountering
//! thread to explicitly synchronize with the task … different target blocks
//! are allowed to share the same name-tag, such that when a wait clause is
//! applied with that name-tag, the encountering thread suspends until all
//! the name-tag asynchronous target block instances finish" (§III-C).

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::task::TaskHandle;

/// Registry mapping name tags to the outstanding target-block instances
/// registered under them.
#[derive(Default)]
pub struct TagRegistry {
    tags: Mutex<HashMap<String, Vec<TaskHandle>>>,
}

impl TagRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a task instance under `tag`.
    pub fn register(&self, tag: &str, handle: TaskHandle) {
        let mut g = self.tags.lock();
        let entry = g.entry(tag.to_string()).or_default();
        // Opportunistically drop already-finished instances so long-running
        // programs that tag thousands of blocks do not grow without bound.
        if entry.len() >= 64 {
            entry.retain(|h| !h.is_finished());
        }
        entry.push(handle);
    }

    /// Snapshot of the instances currently registered under `tag`.
    ///
    /// `wait(tag)` semantics: the caller synchronises with the instances
    /// that exist *at the moment of the wait*; blocks tagged afterwards
    /// belong to the next wait.
    pub fn snapshot(&self, tag: &str) -> Vec<TaskHandle> {
        self.tags.lock().get(tag).cloned().unwrap_or_default()
    }

    /// Removes finished instances under `tag`; returns how many remain.
    pub fn prune(&self, tag: &str) -> usize {
        let mut g = self.tags.lock();
        match g.get_mut(tag) {
            Some(v) => {
                v.retain(|h| !h.is_finished());
                let n = v.len();
                if n == 0 {
                    g.remove(tag);
                }
                n
            }
            None => 0,
        }
    }

    /// Number of distinct live tags.
    pub fn tag_count(&self) -> usize {
        self.tags.lock().len()
    }

    /// Number of instances (finished or not) recorded under `tag`.
    pub fn instance_count(&self, tag: &str) -> usize {
        self.tags.lock().get(tag).map_or(0, |v| v.len())
    }
}

impl std::fmt::Debug for TagRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.tags.lock();
        f.debug_map()
            .entries(g.iter().map(|(k, v)| (k, v.len())))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TargetRegion;

    #[test]
    fn snapshot_of_unknown_tag_is_empty() {
        let reg = TagRegistry::new();
        assert!(reg.snapshot("nope").is_empty());
        assert_eq!(reg.instance_count("nope"), 0);
    }

    #[test]
    fn register_and_snapshot() {
        let reg = TagRegistry::new();
        let r1 = TargetRegion::new("a", || {});
        let r2 = TargetRegion::new("b", || {});
        reg.register("jobs", r1.handle());
        reg.register("jobs", r2.handle());
        assert_eq!(reg.snapshot("jobs").len(), 2);
        assert_eq!(reg.tag_count(), 1);
    }

    #[test]
    fn tags_are_independent() {
        let reg = TagRegistry::new();
        let r = TargetRegion::new("a", || {});
        reg.register("x", r.handle());
        assert_eq!(reg.instance_count("x"), 1);
        assert_eq!(reg.instance_count("y"), 0);
    }

    #[test]
    fn prune_drops_finished() {
        let reg = TagRegistry::new();
        let done = TargetRegion::new("done", || {});
        done.execute();
        let pending = TargetRegion::new("pending", || {});
        reg.register("t", done.handle());
        reg.register("t", pending.handle());
        assert_eq!(reg.prune("t"), 1);
        assert_eq!(reg.instance_count("t"), 1);
        pending.execute();
        assert_eq!(reg.prune("t"), 0);
        assert_eq!(reg.tag_count(), 0, "empty tags are removed");
    }

    #[test]
    fn register_compacts_when_large() {
        let reg = TagRegistry::new();
        for _ in 0..200 {
            let r = TargetRegion::new("x", || {});
            r.execute(); // finished immediately
            reg.register("bulk", r.handle());
        }
        // Compaction keeps the entry bounded (64 threshold + headroom).
        assert!(reg.instance_count("bulk") <= 65, "{}", reg.instance_count("bulk"));
    }
}
