//! The virtual-target abstraction.
//!
//! "Conceptually, a virtual target represents a type of execution
//! environment defining its thread affiliation … and scale" (§III-D). Two
//! concrete kinds exist, matching the paper's experimental Pyjama: worker
//! thread pools ([`crate::WorkerTarget`]) and registered event-dispatch
//! threads ([`crate::EdtTarget`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pyjama_metrics::steal::StealCounters;

use crate::task::TargetRegion;

/// Which kind of execution environment a virtual target is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TargetKind {
    /// A pool of background worker threads (`virtual_target_create_worker`).
    Worker,
    /// A registered event-dispatch thread (`virtual_target_register_edt`).
    Edt,
}

/// A named software executor that target blocks can be offloaded to.
///
/// Implementations must uphold the paper's *thread-context awareness*
/// contract: [`is_member`](VirtualTarget::is_member) reports whether the
/// *calling* thread already belongs to this execution environment, in which
/// case Algorithm 1 runs the block synchronously instead of posting it.
pub trait VirtualTarget: Send + Sync {
    /// The target's registered name (the directive's `name-tag`).
    fn name(&self) -> &str;

    /// The execution-environment kind.
    fn kind(&self) -> TargetKind;

    /// Enqueues a region for asynchronous execution (Algorithm 1, line 8:
    /// `E.post(B)`).
    fn post(&self, region: Arc<TargetRegion>);

    /// True when the calling thread is a member of this target's thread
    /// group (Algorithm 1, line 6: `T ∈ E`).
    fn is_member(&self) -> bool;

    /// If the calling thread is a member, execute one *other* pending item
    /// from this target's queue (the `await` logical barrier's
    /// `processAnotherEventHandler`, line 15). Returns `true` if something
    /// was processed. Non-members must return `false`.
    fn help_one(&self) -> bool;

    /// Number of regions posted and not yet started.
    fn pending(&self) -> usize;

    /// Counters for tests and reports.
    fn stats(&self) -> TargetStats;
}

/// Per-target counters.
#[derive(Debug, Default)]
pub struct TargetStatsInner {
    /// Blocks posted asynchronously.
    pub posted: AtomicU64,
    /// Blocks run synchronously because the encountering thread was already
    /// a member (Algorithm 1 line 7).
    pub inline: AtomicU64,
    /// Blocks executed by the target's own threads.
    pub executed: AtomicU64,
    /// Blocks executed by a member thread *helping* during an await barrier.
    pub helped: AtomicU64,
    /// Blocks rejected (cancelled without running) because the target could
    /// no longer execute them, e.g. a post racing a pool shutdown.
    pub rejected: AtomicU64,
    /// Work-stealing scheduler counters (worker pools; zero for targets
    /// without distributed queues, e.g. EDTs).
    pub steal: StealCounters,
}

/// Snapshot of [`TargetStatsInner`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TargetStats {
    /// Blocks posted asynchronously.
    pub posted: u64,
    /// Blocks run synchronously via the member short-circuit.
    pub inline: u64,
    /// Blocks executed by the target's own threads.
    pub executed: u64,
    /// Blocks executed while helping during an await barrier.
    pub helped: u64,
    /// Blocks rejected (cancelled without running) by the target.
    pub rejected: u64,
    /// Blocks taken from the executing thread's own deque.
    pub local_pops: u64,
    /// Blocks stolen from a sibling thread's deque.
    pub steals: u64,
    /// Sibling deques probed while looking for work (hit or miss).
    pub steal_attempts: u64,
    /// Blocks taken from the pool's global FIFO injector.
    pub injector_pops: u64,
    /// `steal_half` hits that moved surplus blocks onto the thief's deque.
    pub steal_batches: u64,
    /// Surplus blocks moved by `steal_half` (they run as `local_pops`).
    pub steal_moved: u64,
    /// Injector drains (each takes 1..=N blocks under one lock hold).
    pub injector_batches: u64,
    /// Blocks an injector drain buffered beyond the first (they run as
    /// `injector_pops` when dispatched).
    pub injector_moved: u64,
}

impl TargetStatsInner {
    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> TargetStats {
        let steal = self.steal.snapshot();
        TargetStats {
            posted: self.posted.load(Ordering::Relaxed),
            inline: self.inline.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            helped: self.helped.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            local_pops: steal.local_pops,
            steals: steal.steals,
            steal_attempts: steal.steal_attempts,
            injector_pops: steal.injector_pops,
            steal_batches: steal.steal_batches,
            steal_moved: steal.steal_moved,
            injector_batches: steal.injector_batches,
            injector_moved: steal.injector_moved,
        }
    }

    /// Zeroes every counter, including the embedded steal counters. Quiesce
    /// the target first for exact figures; increments racing the reset land
    /// on either side of it.
    pub fn reset(&self) {
        self.posted.store(0, Ordering::Relaxed);
        self.inline.store(0, Ordering::Relaxed);
        self.executed.store(0, Ordering::Relaxed);
        self.helped.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.steal.reset();
    }
}

impl TargetStats {
    /// Counter growth between an earlier snapshot and this one (saturating,
    /// so a reset in between reads as zero rather than wrapping).
    pub fn since(&self, earlier: &TargetStats) -> TargetStats {
        TargetStats {
            posted: self.posted.saturating_sub(earlier.posted),
            inline: self.inline.saturating_sub(earlier.inline),
            executed: self.executed.saturating_sub(earlier.executed),
            helped: self.helped.saturating_sub(earlier.helped),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            local_pops: self.local_pops.saturating_sub(earlier.local_pops),
            steals: self.steals.saturating_sub(earlier.steals),
            steal_attempts: self.steal_attempts.saturating_sub(earlier.steal_attempts),
            injector_pops: self.injector_pops.saturating_sub(earlier.injector_pops),
            steal_batches: self.steal_batches.saturating_sub(earlier.steal_batches),
            steal_moved: self.steal_moved.saturating_sub(earlier.steal_moved),
            injector_batches: self.injector_batches.saturating_sub(earlier.injector_batches),
            injector_moved: self.injector_moved.saturating_sub(earlier.injector_moved),
        }
    }

    /// The scheduler's conservation law: every executed block left through
    /// exactly one of the three queue sources, so for a quiesced worker pool
    /// `executed == local_pops + steals + injector_pops` must hold.
    pub fn pops_total(&self) -> u64 {
        self.local_pops + self.steals + self.injector_pops
    }
}
