//! Target regions and completion handles.
//!
//! The Pyjama compiler "will restructure a target block as a runnable
//! TargetRegion class, with its run() function implementing the user code"
//! (§IV-A). [`TargetRegion`] is that runnable; [`TaskHandle`] is the
//! completion state that the scheduling modes synchronise on.

use std::any::Any;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use pyjama_events::inline::InlineFn;
use pyjama_trace::{arg as trace_arg, Stage, TraceId};

use crate::parker::WakeSignal;

/// Lifecycle of a target block instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskState {
    /// Posted but not yet started.
    Pending,
    /// Currently executing on some thread.
    Running,
    /// Completed normally.
    Finished,
    /// The block panicked; the payload is delivered to the first joiner.
    Panicked,
    /// Rejected before it could run (e.g. posted to a shut-down pool); the
    /// body was dropped without executing. Terminal, like `Finished`, so
    /// waiters are released rather than deadlocked.
    Cancelled,
}

impl TaskState {
    /// True for states the task can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskState::Finished | TaskState::Panicked | TaskState::Cancelled
        )
    }

    fn as_u8(self) -> u8 {
        match self {
            TaskState::Pending => 0,
            TaskState::Running => 1,
            TaskState::Finished => 2,
            TaskState::Panicked => 3,
            TaskState::Cancelled => 4,
        }
    }

    fn from_u8(v: u8) -> TaskState {
        match v {
            0 => TaskState::Pending,
            1 => TaskState::Running,
            2 => TaskState::Finished,
            3 => TaskState::Panicked,
            _ => TaskState::Cancelled,
        }
    }
}

struct Core {
    state: Mutex<CoreState>,
    cond: Condvar,
    /// Mirror of `CoreState::state`, written under the mutex, readable
    /// without it. `state()` / `is_finished()` / the recycler's eligibility
    /// checks sit on the per-post hot path; taking the mutex there costs
    /// more than the read itself, and a lock would buy nothing — a locked
    /// read is stale the instant the lock drops, exactly like an `Acquire`
    /// load of this tag.
    tag: AtomicU8,
}

struct CoreState {
    state: TaskState,
    panic_payload: Option<Box<dyn Any + Send>>,
    /// Threads blocked in `wait`/`wait_timeout` on `cond` right now.
    /// Registered under the same mutex `transition` holds, so the count is
    /// exact at the notify decision point: when it is zero the
    /// `notify_all` is provably a no-op and is skipped (a bare
    /// parking-lot `notify_all` still costs ~160ns, twice per executed
    /// region — the single largest fixed cost on the recycled post path).
    waiters: u32,
    /// Await-barrier parkers to notify on the terminal transition. Tokens
    /// are handle-local and never reused.
    wakers: Vec<(u64, Arc<WakeSignal>)>,
    next_waker_id: u64,
}

/// A clonable handle observing one target block's completion.
#[derive(Clone)]
pub struct TaskHandle {
    core: Arc<Core>,
    label: Arc<str>,
    trace: TraceId,
}

impl TaskHandle {
    fn new(label: Arc<str>, trace: TraceId) -> Self {
        TaskHandle {
            core: Arc::new(Core {
                state: Mutex::new(CoreState {
                    state: TaskState::Pending,
                    panic_payload: None,
                    waiters: 0,
                    wakers: Vec::new(),
                    next_waker_id: 0,
                }),
                cond: Condvar::new(),
                tag: AtomicU8::new(TaskState::Pending.as_u8()),
            }),
            label,
            trace,
        }
    }

    /// The causal trace id this block carries ([`TraceId::NONE`] when
    /// tracing was disabled at creation).
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// Current lifecycle state. Lock-free: reads the atomic mirror of the
    /// state, which every writer updates while holding the core mutex. The
    /// `Acquire` load pairs with the writer's `Release` store, so anything
    /// the block wrote before finishing is visible once a terminal state is
    /// observed.
    pub fn state(&self) -> TaskState {
        TaskState::from_u8(self.core.tag.load(Ordering::Acquire))
    }

    /// True once the block has reached a terminal state (finished normally,
    /// panicked, or was cancelled before running).
    pub fn is_finished(&self) -> bool {
        self.state().is_terminal()
    }

    /// Blocks until the task finishes. Does not propagate panics.
    pub fn wait(&self) {
        let mut g = self.core.state.lock();
        while !g.state.is_terminal() {
            g.waiters += 1;
            self.core.cond.wait(&mut g);
            g.waiters -= 1;
        }
    }

    /// Blocks until the task finishes or `timeout` elapses. Returns `true`
    /// if the task finished.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.core.state.lock();
        while !g.state.is_terminal() {
            g.waiters += 1;
            let timed_out = self.core.cond.wait_until(&mut g, deadline).timed_out();
            g.waiters -= 1;
            if timed_out {
                return g.state.is_terminal();
            }
        }
        true
    }

    /// Blocks until the task finishes, then re-raises its panic (if any) on
    /// the calling thread — mirroring the behaviour a synchronous execution
    /// of the block would have had.
    pub fn join(&self) {
        self.wait();
        let payload = self.core.state.lock().panic_payload.take();
        if let Some(p) = payload {
            std::panic::resume_unwind(p);
        }
    }

    /// Diagnostic label of the region this handle belongs to.
    pub fn label(&self) -> &str {
        &self.label
    }

    fn transition(&self, to: TaskState, payload: Option<Box<dyn Any + Send>>) {
        let mut g = self.core.state.lock();
        g.state = to;
        self.core.tag.store(to.as_u8(), Ordering::Release);
        if payload.is_some() {
            g.panic_payload = payload;
        }
        // `wait`/`wait_timeout` loop until terminal, so only the terminal
        // transition needs the condvar — and only when someone is actually
        // blocked on it. `waiters` is maintained under this same mutex, so
        // a zero read here proves the notify would be a no-op; skipping it
        // removes ~320ns of bare notify_all from every executed region
        // (two transitions each) on the common nobody-is-joining path.
        let notify = to.is_terminal() && g.waiters > 0;
        // The terminal transition is a wake source for await barriers: drain
        // the registered parkers under the lock, signal them after it.
        let wakers = if to.is_terminal() && !g.wakers.is_empty() {
            std::mem::take(&mut g.wakers)
        } else {
            Vec::new()
        };
        drop(g);
        if notify {
            self.core.cond.notify_all();
        }
        for (_, w) in wakers {
            w.notify();
        }
    }

    /// Registers an await-barrier parker to be signalled on the terminal
    /// transition. If the task is already terminal the registration is inert
    /// (the caller re-checks [`is_finished`](Self::is_finished) after
    /// registering, so no wake is lost). Returns a token for
    /// [`remove_waker`](Self::remove_waker).
    pub(crate) fn add_waker(&self, waker: Arc<WakeSignal>) -> u64 {
        let mut g = self.core.state.lock();
        let id = g.next_waker_id;
        g.next_waker_id += 1;
        g.wakers.push((id, waker));
        id
    }

    /// Removes a parker registered with [`add_waker`](Self::add_waker).
    /// Already-drained or unknown tokens are ignored.
    pub(crate) fn remove_waker(&self, id: u64) {
        self.core.state.lock().wakers.retain(|(i, _)| *i != id);
    }
}

impl std::fmt::Debug for TaskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("label", &self.label)
            .field("state", &self.state())
            .finish()
    }
}

/// A restructured target block: the user code as a one-shot runnable plus
/// its completion handle.
///
/// Regions are pooled: the public constructors acquire from the recycler
/// slab ([`crate::slab`]) and executors hand terminal regions back via
/// [`crate::slab::release`], so a steady-state post reuses a previous
/// region's `Arc` + `Core` allocations and (with a small capture set) the
/// body is stored inline — zero allocator traffic per post.
pub struct TargetRegion {
    body: Mutex<Option<InlineFn>>,
    handle: TaskHandle,
}

impl TargetRegion {
    /// Wraps user code into a region with a diagnostic label.
    pub fn new(label: impl Into<String>, body: impl FnOnce() + Send + 'static) -> Arc<Self> {
        Self::with_label(Arc::from(label.into()), body)
    }

    /// Wraps user code into a region reusing an already-interned label.
    ///
    /// Repeated posts with the same diagnostic label (e.g. a persistent
    /// connection re-arming itself as a chain of regions) clone the `Arc`
    /// instead of re-allocating the string on every post; with the recycler
    /// warm and a small capture set the whole post allocates nothing.
    pub fn with_label(label: Arc<str>, body: impl FnOnce() + Send + 'static) -> Arc<Self> {
        Self::with_label_trace(label, TraceId::mint(), body)
    }

    /// Wraps user code into a region that continues an *existing* causal
    /// flow instead of minting a new one — e.g. an HTTP connection
    /// re-arming itself posts each serve step under the connection's id,
    /// so the whole request chain reconstructs as one trace.
    pub fn with_label_trace(
        label: Arc<str>,
        trace: TraceId,
        body: impl FnOnce() + Send + 'static,
    ) -> Arc<Self> {
        crate::slab::acquire(label, trace, InlineFn::new(body))
    }

    /// Constructs a region bypassing the recycler slab: always a fresh
    /// `Arc` + `Core`, never a reused one. This is the pre-recycler
    /// allocation behaviour, kept as the baseline arm for the
    /// `post_hotpath` bench and for tests that need regions with
    /// slab-independent identity. Still counted by `alloc_stats()`.
    pub fn unpooled(
        label: Arc<str>,
        trace: TraceId,
        body: impl FnOnce() + Send + 'static,
    ) -> Arc<Self> {
        crate::slab::fresh(label, trace, InlineFn::new(body))
    }

    /// Raw construction; only [`crate::slab`] calls this (it owns the
    /// `AllocCounters` bookkeeping).
    pub(crate) fn construct(label: Arc<str>, trace: TraceId, body: InlineFn) -> Arc<Self> {
        Arc::new(TargetRegion {
            body: Mutex::new(Some(body)),
            handle: TaskHandle::new(label, trace),
        })
    }

    /// True when the body panicked (the region is poisoned and must be
    /// retired, never recycled).
    pub(crate) fn poisoned(&self) -> bool {
        self.handle.state() == TaskState::Panicked
    }

    /// True when this region may *rest* in the recycler slab: terminal,
    /// unpoisoned, body consumed. Deliberately does **not** check for
    /// outstanding [`TaskHandle`]s — the poster's returned handle routinely
    /// outlives the worker's release by nanoseconds (post, execute and
    /// release all race the end of the posting statement), and rejecting
    /// the park for that transient pin would turn a huge fraction of
    /// steady-state releases into drops. Parking is harmless: a resting
    /// region is never mutated, so a surviving handle still observes the
    /// terminal state. The pin check is deferred to [`Self::recyclable`]
    /// at *acquire* time, when the transient handle is long dead.
    ///
    /// Lock-free: both paths into `Finished`/`Cancelled` consume the body
    /// *before* transitioning (`execute` takes it before `Running`,
    /// `cancel` takes-and-drops it before `Cancelled`), so observing either
    /// state already proves the body slot is empty — no body lock needed.
    pub(crate) fn slab_eligible(&self) -> bool {
        let eligible = matches!(
            self.handle.state(),
            TaskState::Finished | TaskState::Cancelled
        );
        debug_assert!(!eligible || self.body.lock().is_none());
        eligible
    }

    /// True when this region can be reset for reuse: no outstanding
    /// [`TaskHandle`] pins the core (clones can only originate from
    /// existing handles, so a strong count of 1 proves exclusivity), the
    /// lifecycle is terminal and unpoisoned, and the body was consumed.
    pub(crate) fn recyclable(&self) -> bool {
        Arc::strong_count(&self.handle.core) == 1 && self.slab_eligible()
    }

    /// Re-arms a recycled region in place: fresh label/trace/body, core
    /// state back to `Pending`, panic payload cleared, waker list cleared
    /// (capacity kept). The caller must hold the only reference
    /// (`Arc::get_mut` succeeded) and have verified
    /// [`recyclable`](Self::recyclable).
    pub(crate) fn reset(&mut self, label: Arc<str>, trace: TraceId, body: InlineFn) {
        // `recyclable()` proved the core's strong count is 1 and we hold
        // `&mut self`, so exclusive access lets us skip both mutexes.
        let core = Arc::get_mut(&mut self.handle.core)
            .expect("reset requires an unpinned core (recyclable() was checked)");
        let g = core.state.get_mut();
        g.state = TaskState::Pending;
        core.tag.store(TaskState::Pending.as_u8(), Ordering::Release);
        g.panic_payload = None;
        g.wakers.clear();
        // next_waker_id keeps increasing: tokens stay unique across
        // incarnations, so a stale remove_waker can never hit a fresh
        // registration.
        self.handle.label = label;
        self.handle.trace = trace;
        *self.body.get_mut() = Some(body);
    }

    /// The completion handle.
    pub fn handle(&self) -> TaskHandle {
        self.handle.clone()
    }

    /// The causal trace id this region carries (no handle clone).
    pub fn trace_id(&self) -> TraceId {
        self.handle.trace
    }

    /// Executes the user code on the calling thread, exactly once.
    ///
    /// Panics inside the block are caught and stored on the handle (a
    /// virtual target must survive misbehaving blocks); they re-raise at
    /// [`TaskHandle::join`]. Calling `execute` a second time is a no-op.
    pub fn execute(&self) {
        let body = self.body.lock().take();
        let Some(body) = body else { return };
        pyjama_trace::emit(self.handle.trace, Stage::RegionRunBegin, 0);
        self.handle.transition(TaskState::Running, None);
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body.call())) {
            Ok(()) => {
                self.handle.transition(TaskState::Finished, None);
                pyjama_trace::emit(self.handle.trace, Stage::RegionRunEnd, trace_arg::END_OK);
            }
            Err(p) => {
                self.handle.transition(TaskState::Panicked, Some(p));
                pyjama_trace::emit(
                    self.handle.trace,
                    Stage::RegionRunEnd,
                    trace_arg::END_PANICKED,
                );
            }
        }
    }

    /// Rejects the region without running it: the body is dropped and the
    /// handle transitions to [`TaskState::Cancelled`], releasing any waiter
    /// (`wait`/`join` return normally; there is no panic to propagate).
    ///
    /// Used when a region races into a target that can no longer execute it,
    /// e.g. a post to a worker pool that has begun shutdown. Returns `true`
    /// if this call cancelled the region; `false` if it already started
    /// executing (or was already cancelled), in which case the existing
    /// outcome stands.
    pub fn cancel(&self) -> bool {
        let body = self.body.lock().take();
        if body.is_none() {
            return false;
        }
        drop(body);
        self.handle.transition(TaskState::Cancelled, None);
        pyjama_trace::emit(self.handle.trace, Stage::RegionCancelled, 0);
        true
    }
}

impl Drop for TargetRegion {
    fn drop(&mut self) {
        // Only ever runs for regions leaving the pool for good (slab-held
        // regions live as raw pointers and never drop): live → dropped in
        // the recycler's conservation law.
        crate::slab::note_region_drop();
    }
}

impl std::fmt::Debug for TargetRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetRegion")
            .field("label", &self.handle.label)
            .field("state", &self.handle.state())
            .finish()
    }
}

/// A typed future over a target block that produces a value.
///
/// The paper's blocks are statements (they communicate through the shared
/// data context); `TargetFuture` is the small extension a Rust API needs so
/// examples can retrieve results without shared mutable state.
pub struct TargetFuture<R> {
    handle: TaskHandle,
    slot: Arc<Mutex<Option<R>>>,
}

impl<R: Send + 'static> TargetFuture<R> {
    /// Wraps a value-producing closure into a runnable region plus a typed
    /// future observing it.
    pub fn wrap(
        label: impl Into<String>,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> (Arc<TargetRegion>, TargetFuture<R>) {
        let slot = Arc::new(Mutex::new(None));
        let slot2 = Arc::clone(&slot);
        let region = TargetRegion::new(label, move || {
            let r = f();
            *slot2.lock() = Some(r);
        });
        let fut = TargetFuture {
            handle: region.handle(),
            slot,
        };
        (region, fut)
    }

    /// The untyped completion handle.
    pub fn handle(&self) -> &TaskHandle {
        &self.handle
    }

    /// Blocks until the block completes and returns its value, re-raising
    /// its panic if it had one.
    pub fn join(self) -> R {
        self.handle.join();
        self.slot.lock().take().expect("completed without panic")
    }

    /// Non-blocking: returns the value if already complete.
    pub fn try_take(&self) -> Option<R> {
        if self.handle.is_finished() {
            self.slot.lock().take()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn region_executes_once() {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let r = TargetRegion::new("t", move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(r.handle().state(), TaskState::Pending);
        r.execute();
        r.execute();
        assert_eq!(n.load(Ordering::SeqCst), 1);
        assert_eq!(r.handle().state(), TaskState::Finished);
    }

    #[test]
    fn wait_blocks_until_finished() {
        let r = TargetRegion::new("t", || std::thread::sleep(Duration::from_millis(10)));
        let h = r.handle();
        let t = std::thread::spawn(move || r.execute());
        h.wait();
        assert!(h.is_finished());
        t.join().unwrap();
    }

    #[test]
    fn wait_timeout_expires_on_pending_task() {
        let r = TargetRegion::new("t", || {});
        let h = r.handle();
        assert!(!h.wait_timeout(Duration::from_millis(10)));
        r.execute();
        assert!(h.wait_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn panic_is_captured_and_rethrown_at_join() {
        let r = TargetRegion::new("t", || panic!("block failed"));
        r.execute();
        assert_eq!(r.handle().state(), TaskState::Panicked);
        let h = r.handle();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()));
        assert!(err.is_err());
        // Second join does not re-panic (payload consumed).
        r.handle().join();
    }

    #[test]
    fn handle_observes_from_other_thread() {
        let r = TargetRegion::new("t", || {});
        let h = r.handle();
        let t = std::thread::spawn(move || {
            h.wait();
            true
        });
        std::thread::sleep(Duration::from_millis(5));
        r.execute();
        assert!(t.join().unwrap());
    }

    #[test]
    fn future_returns_value() {
        let (region, fut) = TargetFuture::wrap("sum", || 2 + 2);
        assert!(fut.try_take().is_none());
        region.execute();
        assert_eq!(fut.join(), 4);
    }

    #[test]
    fn future_try_take_after_completion() {
        let (region, fut) = TargetFuture::wrap("v", || "ok");
        region.execute();
        assert_eq!(fut.try_take(), Some("ok"));
        assert_eq!(fut.try_take(), None, "value is taken once");
    }

    #[test]
    fn future_propagates_panic() {
        let (region, fut) = TargetFuture::<i32>::wrap("boom", || panic!("x"));
        region.execute();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || fut.join()));
        assert!(err.is_err());
    }

    #[test]
    fn label_is_preserved() {
        let r = TargetRegion::new("my-label", || {});
        assert_eq!(r.handle().label(), "my-label");
    }

    #[test]
    fn with_label_shares_the_interned_label() {
        let label: Arc<str> = Arc::from("conn");
        let r1 = TargetRegion::new("x", || {});
        drop(r1);
        let a = TargetRegion::with_label(Arc::clone(&label), || {});
        let b = TargetRegion::with_label(Arc::clone(&label), || {});
        assert_eq!(a.handle().label(), "conn");
        assert_eq!(b.handle().label(), "conn");
        // Both handles point at the same interned string.
        assert!(std::ptr::eq(
            a.handle().label().as_ptr(),
            b.handle().label().as_ptr()
        ));
        a.execute();
        b.execute();
        assert!(a.handle().is_finished() && b.handle().is_finished());
    }

    #[test]
    fn cancel_is_terminal_and_releases_waiters() {
        let r = TargetRegion::new("t", || unreachable!("must never run"));
        let h = r.handle();
        let waiter = {
            let h = h.clone();
            std::thread::spawn(move || {
                h.wait();
                h.state()
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        assert!(r.cancel());
        assert_eq!(waiter.join().unwrap(), TaskState::Cancelled);
        assert!(h.is_finished());
        h.join(); // no panic to propagate
        // Cancelling again (or executing) is a no-op.
        assert!(!r.cancel());
        r.execute();
        assert_eq!(h.state(), TaskState::Cancelled);
    }

    #[test]
    fn cancel_after_execute_is_noop() {
        let r = TargetRegion::new("t", || {});
        r.execute();
        assert!(!r.cancel());
        assert_eq!(r.handle().state(), TaskState::Finished);
    }

    #[test]
    fn waker_notified_on_completion_and_removable() {
        use crate::parker::WakeSignal;
        let r = TargetRegion::new("t", || {});
        let h = r.handle();
        let w = Arc::new(WakeSignal::new());
        let id = h.add_waker(Arc::clone(&w));
        let _ = id;
        r.execute();
        // The terminal transition must have set the permit: a park now
        // returns immediately instead of blocking.
        w.park();

        // A removed waker is not signalled.
        let r2 = TargetRegion::new("t2", || {});
        let h2 = r2.handle();
        let w2 = Arc::new(WakeSignal::new());
        let id2 = h2.add_waker(Arc::clone(&w2));
        h2.remove_waker(id2);
        r2.execute();
        assert!(
            !w2.park_until(Instant::now() + Duration::from_millis(10)),
            "removed waker must not be notified"
        );
    }
}
