//! Target regions and completion handles.
//!
//! The Pyjama compiler "will restructure a target block as a runnable
//! TargetRegion class, with its run() function implementing the user code"
//! (§IV-A). [`TargetRegion`] is that runnable; [`TaskHandle`] is the
//! completion state that the scheduling modes synchronise on.

use std::any::Any;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use pyjama_trace::{arg as trace_arg, Stage, TraceId};

use crate::parker::WakeSignal;

/// Lifecycle of a target block instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskState {
    /// Posted but not yet started.
    Pending,
    /// Currently executing on some thread.
    Running,
    /// Completed normally.
    Finished,
    /// The block panicked; the payload is delivered to the first joiner.
    Panicked,
    /// Rejected before it could run (e.g. posted to a shut-down pool); the
    /// body was dropped without executing. Terminal, like `Finished`, so
    /// waiters are released rather than deadlocked.
    Cancelled,
}

impl TaskState {
    /// True for states the task can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskState::Finished | TaskState::Panicked | TaskState::Cancelled
        )
    }
}

struct Core {
    state: Mutex<CoreState>,
    cond: Condvar,
}

struct CoreState {
    state: TaskState,
    panic_payload: Option<Box<dyn Any + Send>>,
    /// Await-barrier parkers to notify on the terminal transition. Tokens
    /// are handle-local and never reused.
    wakers: Vec<(u64, Arc<WakeSignal>)>,
    next_waker_id: u64,
}

/// A clonable handle observing one target block's completion.
#[derive(Clone)]
pub struct TaskHandle {
    core: Arc<Core>,
    label: Arc<str>,
    trace: TraceId,
}

impl TaskHandle {
    fn new(label: Arc<str>, trace: TraceId) -> Self {
        TaskHandle {
            core: Arc::new(Core {
                state: Mutex::new(CoreState {
                    state: TaskState::Pending,
                    panic_payload: None,
                    wakers: Vec::new(),
                    next_waker_id: 0,
                }),
                cond: Condvar::new(),
            }),
            label,
            trace,
        }
    }

    /// The causal trace id this block carries ([`TraceId::NONE`] when
    /// tracing was disabled at creation).
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TaskState {
        self.core.state.lock().state
    }

    /// True once the block has reached a terminal state (finished normally,
    /// panicked, or was cancelled before running).
    pub fn is_finished(&self) -> bool {
        self.state().is_terminal()
    }

    /// Blocks until the task finishes. Does not propagate panics.
    pub fn wait(&self) {
        let mut g = self.core.state.lock();
        while !g.state.is_terminal() {
            self.core.cond.wait(&mut g);
        }
    }

    /// Blocks until the task finishes or `timeout` elapses. Returns `true`
    /// if the task finished.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.core.state.lock();
        while !g.state.is_terminal() {
            if self.core.cond.wait_until(&mut g, deadline).timed_out() {
                return g.state.is_terminal();
            }
        }
        true
    }

    /// Blocks until the task finishes, then re-raises its panic (if any) on
    /// the calling thread — mirroring the behaviour a synchronous execution
    /// of the block would have had.
    pub fn join(&self) {
        self.wait();
        let payload = self.core.state.lock().panic_payload.take();
        if let Some(p) = payload {
            std::panic::resume_unwind(p);
        }
    }

    /// Diagnostic label of the region this handle belongs to.
    pub fn label(&self) -> &str {
        &self.label
    }

    fn transition(&self, to: TaskState, payload: Option<Box<dyn Any + Send>>) {
        let mut g = self.core.state.lock();
        g.state = to;
        if payload.is_some() {
            g.panic_payload = payload;
        }
        // The terminal transition is a wake source for await barriers: drain
        // the registered parkers under the lock, signal them after it.
        let wakers = if to.is_terminal() && !g.wakers.is_empty() {
            std::mem::take(&mut g.wakers)
        } else {
            Vec::new()
        };
        drop(g);
        self.core.cond.notify_all();
        for (_, w) in wakers {
            w.notify();
        }
    }

    /// Registers an await-barrier parker to be signalled on the terminal
    /// transition. If the task is already terminal the registration is inert
    /// (the caller re-checks [`is_finished`](Self::is_finished) after
    /// registering, so no wake is lost). Returns a token for
    /// [`remove_waker`](Self::remove_waker).
    pub(crate) fn add_waker(&self, waker: Arc<WakeSignal>) -> u64 {
        let mut g = self.core.state.lock();
        let id = g.next_waker_id;
        g.next_waker_id += 1;
        g.wakers.push((id, waker));
        id
    }

    /// Removes a parker registered with [`add_waker`](Self::add_waker).
    /// Already-drained or unknown tokens are ignored.
    pub(crate) fn remove_waker(&self, id: u64) {
        self.core.state.lock().wakers.retain(|(i, _)| *i != id);
    }
}

impl std::fmt::Debug for TaskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("label", &self.label)
            .field("state", &self.state())
            .finish()
    }
}

/// A restructured target block: the user code as a one-shot runnable plus
/// its completion handle.
pub struct TargetRegion {
    body: Mutex<Option<Box<dyn FnOnce() + Send + 'static>>>,
    handle: TaskHandle,
}

impl TargetRegion {
    /// Wraps user code into a region with a diagnostic label.
    pub fn new(label: impl Into<String>, body: impl FnOnce() + Send + 'static) -> Arc<Self> {
        Self::with_label(Arc::from(label.into()), body)
    }

    /// Wraps user code into a region reusing an already-interned label.
    ///
    /// Repeated posts with the same diagnostic label (e.g. a persistent
    /// connection re-arming itself as a chain of regions) clone the `Arc`
    /// instead of re-allocating the string on every post — the region
    /// becomes two allocations (`Arc<Self>` + boxed body), nothing else.
    pub fn with_label(label: Arc<str>, body: impl FnOnce() + Send + 'static) -> Arc<Self> {
        Self::with_label_trace(label, TraceId::mint(), body)
    }

    /// Wraps user code into a region that continues an *existing* causal
    /// flow instead of minting a new one — e.g. an HTTP connection
    /// re-arming itself posts each serve step under the connection's id,
    /// so the whole request chain reconstructs as one trace.
    pub fn with_label_trace(
        label: Arc<str>,
        trace: TraceId,
        body: impl FnOnce() + Send + 'static,
    ) -> Arc<Self> {
        Arc::new(TargetRegion {
            body: Mutex::new(Some(Box::new(body))),
            handle: TaskHandle::new(label, trace),
        })
    }

    /// The completion handle.
    pub fn handle(&self) -> TaskHandle {
        self.handle.clone()
    }

    /// The causal trace id this region carries (no handle clone).
    pub fn trace_id(&self) -> TraceId {
        self.handle.trace
    }

    /// Executes the user code on the calling thread, exactly once.
    ///
    /// Panics inside the block are caught and stored on the handle (a
    /// virtual target must survive misbehaving blocks); they re-raise at
    /// [`TaskHandle::join`]. Calling `execute` a second time is a no-op.
    pub fn execute(&self) {
        let body = self.body.lock().take();
        let Some(body) = body else { return };
        pyjama_trace::emit(self.handle.trace, Stage::RegionRunBegin, 0);
        self.handle.transition(TaskState::Running, None);
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
            Ok(()) => {
                self.handle.transition(TaskState::Finished, None);
                pyjama_trace::emit(self.handle.trace, Stage::RegionRunEnd, trace_arg::END_OK);
            }
            Err(p) => {
                self.handle.transition(TaskState::Panicked, Some(p));
                pyjama_trace::emit(
                    self.handle.trace,
                    Stage::RegionRunEnd,
                    trace_arg::END_PANICKED,
                );
            }
        }
    }

    /// Rejects the region without running it: the body is dropped and the
    /// handle transitions to [`TaskState::Cancelled`], releasing any waiter
    /// (`wait`/`join` return normally; there is no panic to propagate).
    ///
    /// Used when a region races into a target that can no longer execute it,
    /// e.g. a post to a worker pool that has begun shutdown. Returns `true`
    /// if this call cancelled the region; `false` if it already started
    /// executing (or was already cancelled), in which case the existing
    /// outcome stands.
    pub fn cancel(&self) -> bool {
        let body = self.body.lock().take();
        if body.is_none() {
            return false;
        }
        drop(body);
        self.handle.transition(TaskState::Cancelled, None);
        pyjama_trace::emit(self.handle.trace, Stage::RegionCancelled, 0);
        true
    }
}

impl std::fmt::Debug for TargetRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetRegion")
            .field("label", &self.handle.label)
            .field("state", &self.handle.state())
            .finish()
    }
}

/// A typed future over a target block that produces a value.
///
/// The paper's blocks are statements (they communicate through the shared
/// data context); `TargetFuture` is the small extension a Rust API needs so
/// examples can retrieve results without shared mutable state.
pub struct TargetFuture<R> {
    handle: TaskHandle,
    slot: Arc<Mutex<Option<R>>>,
}

impl<R: Send + 'static> TargetFuture<R> {
    /// Wraps a value-producing closure into a runnable region plus a typed
    /// future observing it.
    pub fn wrap(
        label: impl Into<String>,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> (Arc<TargetRegion>, TargetFuture<R>) {
        let slot = Arc::new(Mutex::new(None));
        let slot2 = Arc::clone(&slot);
        let region = TargetRegion::new(label, move || {
            let r = f();
            *slot2.lock() = Some(r);
        });
        let fut = TargetFuture {
            handle: region.handle(),
            slot,
        };
        (region, fut)
    }

    /// The untyped completion handle.
    pub fn handle(&self) -> &TaskHandle {
        &self.handle
    }

    /// Blocks until the block completes and returns its value, re-raising
    /// its panic if it had one.
    pub fn join(self) -> R {
        self.handle.join();
        self.slot.lock().take().expect("completed without panic")
    }

    /// Non-blocking: returns the value if already complete.
    pub fn try_take(&self) -> Option<R> {
        if self.handle.is_finished() {
            self.slot.lock().take()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn region_executes_once() {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let r = TargetRegion::new("t", move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(r.handle().state(), TaskState::Pending);
        r.execute();
        r.execute();
        assert_eq!(n.load(Ordering::SeqCst), 1);
        assert_eq!(r.handle().state(), TaskState::Finished);
    }

    #[test]
    fn wait_blocks_until_finished() {
        let r = TargetRegion::new("t", || std::thread::sleep(Duration::from_millis(10)));
        let h = r.handle();
        let t = std::thread::spawn(move || r.execute());
        h.wait();
        assert!(h.is_finished());
        t.join().unwrap();
    }

    #[test]
    fn wait_timeout_expires_on_pending_task() {
        let r = TargetRegion::new("t", || {});
        let h = r.handle();
        assert!(!h.wait_timeout(Duration::from_millis(10)));
        r.execute();
        assert!(h.wait_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn panic_is_captured_and_rethrown_at_join() {
        let r = TargetRegion::new("t", || panic!("block failed"));
        r.execute();
        assert_eq!(r.handle().state(), TaskState::Panicked);
        let h = r.handle();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()));
        assert!(err.is_err());
        // Second join does not re-panic (payload consumed).
        r.handle().join();
    }

    #[test]
    fn handle_observes_from_other_thread() {
        let r = TargetRegion::new("t", || {});
        let h = r.handle();
        let t = std::thread::spawn(move || {
            h.wait();
            true
        });
        std::thread::sleep(Duration::from_millis(5));
        r.execute();
        assert!(t.join().unwrap());
    }

    #[test]
    fn future_returns_value() {
        let (region, fut) = TargetFuture::wrap("sum", || 2 + 2);
        assert!(fut.try_take().is_none());
        region.execute();
        assert_eq!(fut.join(), 4);
    }

    #[test]
    fn future_try_take_after_completion() {
        let (region, fut) = TargetFuture::wrap("v", || "ok");
        region.execute();
        assert_eq!(fut.try_take(), Some("ok"));
        assert_eq!(fut.try_take(), None, "value is taken once");
    }

    #[test]
    fn future_propagates_panic() {
        let (region, fut) = TargetFuture::<i32>::wrap("boom", || panic!("x"));
        region.execute();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || fut.join()));
        assert!(err.is_err());
    }

    #[test]
    fn label_is_preserved() {
        let r = TargetRegion::new("my-label", || {});
        assert_eq!(r.handle().label(), "my-label");
    }

    #[test]
    fn with_label_shares_the_interned_label() {
        let label: Arc<str> = Arc::from("conn");
        let r1 = TargetRegion::new("x", || {});
        drop(r1);
        let a = TargetRegion::with_label(Arc::clone(&label), || {});
        let b = TargetRegion::with_label(Arc::clone(&label), || {});
        assert_eq!(a.handle().label(), "conn");
        assert_eq!(b.handle().label(), "conn");
        // Both handles point at the same interned string.
        assert!(std::ptr::eq(
            a.handle().label().as_ptr(),
            b.handle().label().as_ptr()
        ));
        a.execute();
        b.execute();
        assert!(a.handle().is_finished() && b.handle().is_finished());
    }

    #[test]
    fn cancel_is_terminal_and_releases_waiters() {
        let r = TargetRegion::new("t", || unreachable!("must never run"));
        let h = r.handle();
        let waiter = {
            let h = h.clone();
            std::thread::spawn(move || {
                h.wait();
                h.state()
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        assert!(r.cancel());
        assert_eq!(waiter.join().unwrap(), TaskState::Cancelled);
        assert!(h.is_finished());
        h.join(); // no panic to propagate
        // Cancelling again (or executing) is a no-op.
        assert!(!r.cancel());
        r.execute();
        assert_eq!(h.state(), TaskState::Cancelled);
    }

    #[test]
    fn cancel_after_execute_is_noop() {
        let r = TargetRegion::new("t", || {});
        r.execute();
        assert!(!r.cancel());
        assert_eq!(r.handle().state(), TaskState::Finished);
    }

    #[test]
    fn waker_notified_on_completion_and_removable() {
        use crate::parker::WakeSignal;
        let r = TargetRegion::new("t", || {});
        let h = r.handle();
        let w = Arc::new(WakeSignal::new());
        let id = h.add_waker(Arc::clone(&w));
        let _ = id;
        r.execute();
        // The terminal transition must have set the permit: a park now
        // returns immediately instead of blocking.
        w.park();

        // A removed waker is not signalled.
        let r2 = TargetRegion::new("t2", || {});
        let h2 = r2.handle();
        let w2 = Arc::new(WakeSignal::new());
        let id2 = h2.add_waker(Arc::clone(&w2));
        h2.remove_waker(id2);
        r2.execute();
        assert!(
            !w2.park_until(Instant::now() + Duration::from_millis(10)),
            "removed waker must not be notified"
        );
    }
}
