//! The application shell: an EDT plus a widget factory.

use std::sync::Arc;

use pyjama_events::{Edt, EventLoopHandle};
use pyjama_metrics::{LatencyRecorder, OccupancyTracker};

use crate::confinement::{ConfinementGuard, ConfinementPolicy};
use crate::widgets::{Button, Label, Panel, ProgressBar, TextField};

/// A GUI application: owns the event-dispatch thread, enforces widget
/// confinement, and dispatches user events (button clicks) through the
/// event queue, exactly like a Swing `JFrame` + `EventQueue` pair.
pub struct Gui {
    edt: Edt,
    guard: Arc<ConfinementGuard>,
    occupancy: Arc<OccupancyTracker>,
    response_times: Arc<LatencyRecorder>,
}

impl Gui {
    /// Launches an application with the given confinement policy. The EDT
    /// is instrumented: handler busy-time feeds an [`OccupancyTracker`] and
    /// event queueing latency a [`LatencyRecorder`].
    pub fn launch(policy: ConfinementPolicy) -> Self {
        let occupancy = Arc::new(OccupancyTracker::new());
        let response_times = Arc::new(LatencyRecorder::new());
        let occ = Arc::clone(&occupancy);
        let lat = Arc::clone(&response_times);
        let edt = Edt::spawn_with("gui-edt", move |el| {
            el.attach_occupancy(occ);
            el.attach_queue_latency(lat);
        });
        let guard = ConfinementGuard::new(edt.handle(), policy);
        Gui {
            edt,
            guard,
            occupancy,
            response_times,
        }
    }

    // ------------------------------------------------------------ widgets

    /// Creates a label.
    pub fn label(&self, name: impl Into<String>) -> Arc<Label> {
        Label::new(Arc::clone(&self.guard), name)
    }

    /// Creates a progress bar.
    pub fn progress_bar(&self, name: impl Into<String>) -> Arc<ProgressBar> {
        ProgressBar::new(Arc::clone(&self.guard), name)
    }

    /// Creates a text field.
    pub fn text_field(&self, name: impl Into<String>) -> Arc<TextField> {
        TextField::new(Arc::clone(&self.guard), name)
    }

    /// Creates a button.
    pub fn button(&self, name: impl Into<String>) -> Arc<Button> {
        Button::new(Arc::clone(&self.guard), name)
    }

    /// Creates a panel.
    pub fn panel(&self, name: impl Into<String>) -> Arc<Panel> {
        Panel::new(Arc::clone(&self.guard), name)
    }

    // ------------------------------------------------------------- events

    /// Simulates a user clicking `button`: the click is posted to the event
    /// queue and the registered listeners run on the EDT.
    pub fn click(&self, button: &Arc<Button>) {
        let btn = Arc::clone(button);
        self.edt.invoke_later(move || {
            if !btn.is_enabled() {
                return;
            }
            btn.record_click();
            for l in btn.listeners() {
                l();
            }
        });
    }

    /// Runs `f` on the EDT asynchronously (`SwingUtilities.invokeLater`).
    pub fn invoke_later(&self, f: impl FnOnce() + Send + 'static) {
        self.edt.invoke_later(f);
    }

    /// Runs `f` on the EDT and waits (`SwingUtilities.invokeAndWait`).
    pub fn invoke_and_wait<R: Send + 'static>(&self, f: impl FnOnce() -> R + Send + 'static) -> R {
        self.edt.invoke_and_wait(f)
    }

    /// True on the dispatch thread (`SwingUtilities.isEventDispatchThread`).
    pub fn is_edt(&self) -> bool {
        self.edt.is_edt()
    }

    /// Blocks until every event posted so far has been dispatched.
    pub fn drain(&self) {
        self.edt.invoke_and_wait(|| {});
    }

    // ------------------------------------------------------ introspection

    /// The EDT's loop handle (for registering it as a virtual target).
    pub fn edt_handle(&self) -> EventLoopHandle {
        self.edt.handle()
    }

    /// The confinement guard (policy switches, violation counts).
    pub fn confinement(&self) -> &Arc<ConfinementGuard> {
        &self.guard
    }

    /// EDT busy-time instrumentation.
    pub fn occupancy(&self) -> &Arc<OccupancyTracker> {
        &self.occupancy
    }

    /// Event queueing-latency instrumentation.
    pub fn queue_latency(&self) -> &Arc<LatencyRecorder> {
        &self.response_times
    }

    /// Shuts the EDT down and joins it.
    pub fn shutdown(mut self) {
        self.edt.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn click_runs_listeners_on_edt() {
        let gui = Gui::launch(ConfinementPolicy::Enforce);
        let button = gui.button("go");
        let label = gui.label("status");
        let l2 = Arc::clone(&label);
        // Listener mutates a widget — legal only because clicks dispatch on
        // the EDT.
        button.on_click(move || l2.set_text("clicked"));
        gui.click(&button);
        gui.drain();
        assert_eq!(label.text(), "clicked");
        assert_eq!(button.click_count(), 1);
    }

    #[test]
    fn multiple_listeners_all_fire() {
        let gui = Gui::launch(ConfinementPolicy::Enforce);
        let button = gui.button("go");
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..3 {
            let c = Arc::clone(&count);
            button.on_click(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        gui.click(&button);
        gui.click(&button);
        gui.drain();
        assert_eq!(count.load(Ordering::SeqCst), 6);
        assert_eq!(button.click_count(), 2);
    }

    #[test]
    fn disabled_button_ignores_clicks() {
        let gui = Gui::launch(ConfinementPolicy::Enforce);
        let button = gui.button("go");
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        button.on_click(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let b2 = Arc::clone(&button);
        gui.invoke_and_wait(move || b2.set_enabled(false));
        gui.click(&button);
        gui.drain();
        assert_eq!(count.load(Ordering::SeqCst), 0);
        assert_eq!(button.click_count(), 0);
        let b2 = Arc::clone(&button);
        gui.invoke_and_wait(move || b2.set_enabled(true));
        gui.click(&button);
        gui.drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn is_edt_detection() {
        let gui = Gui::launch(ConfinementPolicy::Enforce);
        assert!(!gui.is_edt());
        let on = gui.invoke_and_wait({
            let h = gui.edt_handle();
            move || h.is_loop_thread()
        });
        assert!(on);
    }

    #[test]
    fn occupancy_reflects_handler_time() {
        let gui = Gui::launch(ConfinementPolicy::Enforce);
        gui.occupancy().start_window();
        gui.invoke_later(|| std::thread::sleep(Duration::from_millis(10)));
        gui.drain();
        assert!(gui.occupancy().busy() >= Duration::from_millis(10));
    }

    #[test]
    fn widgets_share_one_guard() {
        let gui = Gui::launch(ConfinementPolicy::Record);
        let label = gui.label("a");
        let bar = gui.progress_bar("b");
        label.set_text("off-edt");
        bar.set_value(5);
        assert_eq!(gui.confinement().violation_count(), 2);
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let gui = Gui::launch(ConfinementPolicy::Enforce);
        let ran = Arc::new(AtomicBool::new(false));
        let r = Arc::clone(&ran);
        gui.invoke_and_wait(move || r.store(true, Ordering::SeqCst));
        gui.shutdown();
        assert!(ran.load(Ordering::SeqCst));
    }
}
