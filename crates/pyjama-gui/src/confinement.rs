//! EDT thread-confinement checking.

use std::sync::Arc;

use parking_lot::Mutex;
use pyjama_events::EventLoopHandle;

/// What to do when a widget is touched off the EDT.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ConfinementPolicy {
    /// Panic immediately (develop-time behaviour; Swing's repaint manager
    /// debug checks do the equivalent).
    #[default]
    Enforce,
    /// Record the violation and proceed — lets benchmarks measure how many
    /// racy accesses an offloading strategy *would* have produced.
    Record,
}

/// A recorded confinement violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The widget that was touched.
    pub widget: String,
    /// The operation attempted.
    pub operation: String,
    /// Name of the offending thread.
    pub thread: String,
}

/// Shared checker handed to every widget of a [`crate::Gui`].
pub struct ConfinementGuard {
    edt: EventLoopHandle,
    policy: Mutex<ConfinementPolicy>,
    violations: Mutex<Vec<Violation>>,
}

impl ConfinementGuard {
    /// Creates a guard bound to the given EDT.
    pub fn new(edt: EventLoopHandle, policy: ConfinementPolicy) -> Arc<Self> {
        Arc::new(ConfinementGuard {
            edt,
            policy: Mutex::new(policy),
            violations: Mutex::new(Vec::new()),
        })
    }

    /// True when the calling thread is the EDT.
    pub fn on_edt(&self) -> bool {
        self.edt.is_loop_thread()
    }

    /// Checks the calling thread before a widget mutation.
    ///
    /// # Panics
    /// Panics under [`ConfinementPolicy::Enforce`] when called off the EDT.
    pub fn check(&self, widget: &str, operation: &str) {
        if self.on_edt() {
            return;
        }
        let thread = std::thread::current()
            .name()
            .unwrap_or("<unnamed>")
            .to_string();
        match *self.policy.lock() {
            ConfinementPolicy::Enforce => panic!(
                "EDT confinement violation: {widget}.{operation} called from thread `{thread}` \
                 — GUI components must only be accessed from the event dispatch thread"
            ),
            ConfinementPolicy::Record => self.violations.lock().push(Violation {
                widget: widget.to_string(),
                operation: operation.to_string(),
                thread,
            }),
        }
    }

    /// Switches the policy at runtime.
    pub fn set_policy(&self, policy: ConfinementPolicy) {
        *self.policy.lock() = policy;
    }

    /// Violations recorded so far (only under [`ConfinementPolicy::Record`]).
    pub fn violations(&self) -> Vec<Violation> {
        self.violations.lock().clone()
    }

    /// Number of recorded violations.
    pub fn violation_count(&self) -> usize {
        self.violations.lock().len()
    }

    /// Clears recorded violations.
    pub fn clear_violations(&self) {
        self.violations.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyjama_events::Edt;

    #[test]
    fn on_edt_passes() {
        let edt = Edt::spawn("edt");
        let guard = ConfinementGuard::new(edt.handle(), ConfinementPolicy::Enforce);
        let g = Arc::clone(&guard);
        edt.invoke_and_wait(move || g.check("Label", "set_text"));
        assert_eq!(guard.violation_count(), 0);
    }

    #[test]
    #[should_panic(expected = "EDT confinement violation")]
    fn off_edt_panics_under_enforce() {
        let edt = Edt::spawn("edt");
        let guard = ConfinementGuard::new(edt.handle(), ConfinementPolicy::Enforce);
        guard.check("Label", "set_text");
    }

    #[test]
    fn off_edt_recorded_under_record() {
        let edt = Edt::spawn("edt");
        let guard = ConfinementGuard::new(edt.handle(), ConfinementPolicy::Record);
        guard.check("Label", "set_text");
        guard.check("ProgressBar", "set_value");
        assert_eq!(guard.violation_count(), 2);
        let v = guard.violations();
        assert_eq!(v[0].widget, "Label");
        assert_eq!(v[1].operation, "set_value");
        guard.clear_violations();
        assert_eq!(guard.violation_count(), 0);
    }

    #[test]
    fn policy_switch_takes_effect() {
        let edt = Edt::spawn("edt");
        let guard = ConfinementGuard::new(edt.handle(), ConfinementPolicy::Record);
        guard.check("w", "op");
        guard.set_policy(ConfinementPolicy::Enforce);
        let g = Arc::clone(&guard);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || g.check("w", "op")));
        assert!(r.is_err());
    }
}
