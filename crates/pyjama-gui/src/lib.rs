//! A Swing-like, thread-confined GUI toolkit simulation.
//!
//! The paper's GUI case study runs under Java Swing, whose cardinal rule
//! the paper restates: "graphical user interface (GUI) components are not
//! thread-safe and access is strictly confined to the EDT … Disrespecting
//! this rule could result in the user interface exhibiting inconsistency or
//! even errors" (§II-A).
//!
//! There is no display in this reproduction — what matters for the
//! experiments is the *threading contract*, and this crate enforces it:
//!
//! * [`Gui`] owns an event-dispatch thread (an [`pyjama_events::Edt`]).
//! * Every widget mutation checks the calling thread. Off-EDT access either
//!   panics ([`ConfinementPolicy::Enforce`], like Swing's
//!   `checkThreadViolations`) or is recorded
//!   ([`ConfinementPolicy::Record`]) so tests and benchmarks can *count*
//!   violations instead of dying.
//! * [`Gui::click`](app::Gui::click) models a user event: it enqueues the registered
//!   callback on the EDT, exactly like AWT's `EventQueue` does.
//!
//! The widgets mirror the paper's Figure 6 (`Panel.showMsg`,
//! `Panel.collectInput`, `Panel.displayImg`) and Figure 2's progress
//! updates.

pub mod app;
pub mod confinement;
pub mod widgets;

pub use app::Gui;
pub use confinement::{ConfinementGuard, ConfinementPolicy, Violation};
pub use widgets::{Button, Image, Label, Panel, ProgressBar, TextField};
