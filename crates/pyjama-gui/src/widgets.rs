//! Widgets: state + confinement-checked mutators.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::confinement::ConfinementGuard;

/// A decoded image, as produced by Figure 6's `formatConvert`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Packed RGB bytes.
    pub pixels: Vec<u8>,
}

impl Image {
    /// Creates an image; `pixels.len()` must equal `width * height * 3`.
    pub fn new(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(pixels.len(), width * height * 3, "pixel buffer size mismatch");
        Image {
            width,
            height,
            pixels,
        }
    }
}

/// A text label (`Label.setText` in the paper's compilation example).
pub struct Label {
    guard: Arc<ConfinementGuard>,
    name: String,
    text: Mutex<String>,
    set_count: Mutex<u64>,
}

impl Label {
    pub(crate) fn new(guard: Arc<ConfinementGuard>, name: impl Into<String>) -> Arc<Self> {
        Arc::new(Label {
            guard,
            name: name.into(),
            text: Mutex::new(String::new()),
            set_count: Mutex::new(0),
        })
    }

    /// Sets the label text. EDT-only.
    pub fn set_text(&self, text: impl Into<String>) {
        self.guard.check(&self.name, "set_text");
        *self.text.lock() = text.into();
        *self.set_count.lock() += 1;
    }

    /// Reads the text (reads are unchecked, as in Swing practice for
    /// immutable snapshots; the experiments only mutate from handlers).
    pub fn text(&self) -> String {
        self.text.lock().clone()
    }

    /// How many times the text was set (used by benches as a GUI-update
    /// counter).
    pub fn set_count(&self) -> u64 {
        *self.set_count.lock()
    }
}

/// A progress bar (Figure 2's `S2` progress update).
pub struct ProgressBar {
    guard: Arc<ConfinementGuard>,
    name: String,
    value: Mutex<u8>,
    history: Mutex<Vec<u8>>,
}

impl ProgressBar {
    pub(crate) fn new(guard: Arc<ConfinementGuard>, name: impl Into<String>) -> Arc<Self> {
        Arc::new(ProgressBar {
            guard,
            name: name.into(),
            value: Mutex::new(0),
            history: Mutex::new(Vec::new()),
        })
    }

    /// Sets progress (clamped to 100). EDT-only.
    pub fn set_value(&self, percent: u8) {
        self.guard.check(&self.name, "set_value");
        let v = percent.min(100);
        *self.value.lock() = v;
        self.history.lock().push(v);
    }

    /// Current value.
    pub fn value(&self) -> u8 {
        *self.value.lock()
    }

    /// Every value ever set, in order.
    pub fn history(&self) -> Vec<u8> {
        self.history.lock().clone()
    }
}

/// A text input field (Figure 6's `Panel.collectInput`).
pub struct TextField {
    guard: Arc<ConfinementGuard>,
    name: String,
    content: Mutex<String>,
}

impl TextField {
    pub(crate) fn new(guard: Arc<ConfinementGuard>, name: impl Into<String>) -> Arc<Self> {
        Arc::new(TextField {
            guard,
            name: name.into(),
            content: Mutex::new(String::new()),
        })
    }

    /// Sets the field contents. EDT-only.
    pub fn set_content(&self, s: impl Into<String>) {
        self.guard.check(&self.name, "set_content");
        *self.content.lock() = s.into();
    }

    /// Reads the field contents. EDT-only (a read the user may be editing).
    pub fn content(&self) -> String {
        self.guard.check(&self.name, "content");
        self.content.lock().clone()
    }
}

/// A button with click listeners. Clicking fires an event on the EDT.
pub struct Button {
    guard: Arc<ConfinementGuard>,
    name: String,
    listeners: Mutex<Vec<Arc<dyn Fn() + Send + Sync>>>,
    clicks: Mutex<u64>,
    enabled: Mutex<bool>,
}

impl Button {
    pub(crate) fn new(guard: Arc<ConfinementGuard>, name: impl Into<String>) -> Arc<Self> {
        Arc::new(Button {
            guard,
            name: name.into(),
            listeners: Mutex::new(Vec::new()),
            clicks: Mutex::new(0),
            enabled: Mutex::new(true),
        })
    }

    /// Enables or disables the button (a widget mutation — EDT-only).
    pub fn set_enabled(&self, enabled: bool) {
        self.guard.check(&self.name, "set_enabled");
        *self.enabled.lock() = enabled;
    }

    /// Whether the button currently accepts clicks.
    pub fn is_enabled(&self) -> bool {
        *self.enabled.lock()
    }

    /// Registers a click callback (may be called from any thread, like
    /// `addActionListener`).
    pub fn on_click(&self, f: impl Fn() + Send + Sync + 'static) {
        self.listeners.lock().push(Arc::new(f));
    }

    /// The registered listeners (the [`crate::Gui`] dispatches them).
    pub(crate) fn listeners(&self) -> Vec<Arc<dyn Fn() + Send + Sync>> {
        self.listeners.lock().clone()
    }

    pub(crate) fn record_click(&self) {
        *self.clicks.lock() += 1;
    }

    /// Number of clicks dispatched so far.
    pub fn click_count(&self) -> u64 {
        *self.clicks.lock()
    }

    /// The button's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The paper's `Panel`: a message log plus an image slot
/// (`showMsg` / `displayImg` from Figure 6).
pub struct Panel {
    guard: Arc<ConfinementGuard>,
    name: String,
    messages: Mutex<Vec<String>>,
    image: Mutex<Option<Image>>,
}

impl Panel {
    pub(crate) fn new(guard: Arc<ConfinementGuard>, name: impl Into<String>) -> Arc<Self> {
        Arc::new(Panel {
            guard,
            name: name.into(),
            messages: Mutex::new(Vec::new()),
            image: Mutex::new(None),
        })
    }

    /// Appends a status message (`Panel.showMsg`). EDT-only.
    pub fn show_msg(&self, msg: impl Into<String>) {
        self.guard.check(&self.name, "show_msg");
        self.messages.lock().push(msg.into());
    }

    /// Renders an image (`Panel.displayImg`). EDT-only.
    pub fn display_img(&self, img: Image) {
        self.guard.check(&self.name, "display_img");
        *self.image.lock() = Some(img);
    }

    /// All messages shown so far.
    pub fn messages(&self) -> Vec<String> {
        self.messages.lock().clone()
    }

    /// The displayed image, if any.
    pub fn image(&self) -> Option<Image> {
        self.image.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confinement::ConfinementPolicy;
    use pyjama_events::Edt;

    fn record_guard(edt: &Edt) -> Arc<ConfinementGuard> {
        ConfinementGuard::new(edt.handle(), ConfinementPolicy::Record)
    }

    #[test]
    fn label_set_text_on_edt() {
        let edt = Edt::spawn("edt");
        let guard = ConfinementGuard::new(edt.handle(), ConfinementPolicy::Enforce);
        let label = Label::new(guard, "status");
        let l = Arc::clone(&label);
        edt.invoke_and_wait(move || l.set_text("hello"));
        assert_eq!(label.text(), "hello");
        assert_eq!(label.set_count(), 1);
    }

    #[test]
    #[should_panic(expected = "confinement violation")]
    fn label_set_text_off_edt_panics() {
        let edt = Edt::spawn("edt");
        let guard = ConfinementGuard::new(edt.handle(), ConfinementPolicy::Enforce);
        let label = Label::new(guard, "status");
        label.set_text("boom");
    }

    #[test]
    fn progress_clamps_and_records_history() {
        let edt = Edt::spawn("edt");
        let bar = ProgressBar::new(record_guard(&edt), "progress");
        let b = Arc::clone(&bar);
        edt.invoke_and_wait(move || {
            b.set_value(10);
            b.set_value(250);
        });
        assert_eq!(bar.value(), 100);
        assert_eq!(bar.history(), vec![10, 100]);
    }

    #[test]
    fn off_edt_mutation_recorded_not_fatal() {
        let edt = Edt::spawn("edt");
        let guard = record_guard(&edt);
        let label = Label::new(Arc::clone(&guard), "status");
        label.set_text("racy");
        assert_eq!(label.text(), "racy");
        assert_eq!(guard.violation_count(), 1);
    }

    #[test]
    fn panel_logs_and_displays() {
        let edt = Edt::spawn("edt");
        let panel = Panel::new(record_guard(&edt), "panel");
        let p = Arc::clone(&panel);
        edt.invoke_and_wait(move || {
            p.show_msg("Started EDT handling");
            p.display_img(Image::new(2, 1, vec![0; 6]));
            p.show_msg("Finished!");
        });
        assert_eq!(panel.messages(), vec!["Started EDT handling", "Finished!"]);
        assert_eq!(panel.image().unwrap().width, 2);
    }

    #[test]
    #[should_panic(expected = "pixel buffer size mismatch")]
    fn image_size_validated() {
        let _ = Image::new(2, 2, vec![0; 5]);
    }

    #[test]
    fn textfield_roundtrip_on_edt() {
        let edt = Edt::spawn("edt");
        let field = TextField::new(record_guard(&edt), "input");
        let f = Arc::clone(&field);
        let got = edt.invoke_and_wait(move || {
            f.set_content("query");
            f.content()
        });
        assert_eq!(got, "query");
    }
}
