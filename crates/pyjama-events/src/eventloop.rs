//! The dispatch loop, with re-entrant pumping.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pyjama_metrics::{LatencyRecorder, OccupancyTracker};
use pyjama_trace::{arg as trace_arg, Stage};

use crate::event::{Event, EventId, Priority};
use crate::queue::{EventQueue, QueueWaker};
use crate::timer::TimerQueue;

thread_local! {
    /// Stack of loops running on this thread (normally depth ≤ 1; re-entrant
    /// pumping never pushes, only nested `run` calls would).
    static CURRENT: RefCell<Vec<Arc<Shared>>> = const { RefCell::new(Vec::new()) };
}

/// Counters describing a loop's dispatch history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Events dispatched to completion (including panicked ones).
    pub dispatched: u64,
    /// Handlers that panicked (the loop survives, like AWT).
    pub panicked: u64,
    /// Events dispatched re-entrantly via `pump_once` from inside a handler.
    pub reentrant: u64,
    /// Deepest observed dispatch nesting.
    pub max_depth: u32,
}

pub(crate) struct Shared {
    name: String,
    pub(crate) queue: EventQueue,
    timers: TimerQueue,
    quit: AtomicBool,
    dispatched: AtomicU64,
    panicked: AtomicU64,
    reentrant: AtomicU64,
    depth: AtomicU32,
    max_depth: AtomicU32,
    occupancy: parking_lot::Mutex<Option<Arc<OccupancyTracker>>>,
    queue_latency: parking_lot::Mutex<Option<Arc<LatencyRecorder>>>,
}

impl Shared {
    fn dispatch(self: &Arc<Self>, event: Event, reentrant: bool) {
        if let Some(lat) = self.queue_latency.lock().clone() {
            lat.record(event.fired_at().elapsed());
        }
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
        let occ = if depth == 1 {
            self.occupancy.lock().clone()
        } else {
            None
        };
        if let Some(ref o) = occ {
            o.enter();
        }
        let trace = event.trace_id();
        pyjama_trace::emit(trace, Stage::EventDispatchBegin, depth);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| event.dispatch()));
        pyjama_trace::emit(
            trace,
            Stage::EventDispatchEnd,
            if result.is_err() {
                trace_arg::END_PANICKED
            } else {
                trace_arg::END_OK
            },
        );
        if let Some(ref o) = occ {
            o.exit();
        }
        self.depth.fetch_sub(1, Ordering::Relaxed);
        self.dispatched.fetch_add(1, Ordering::Relaxed);
        if reentrant {
            self.reentrant.fetch_add(1, Ordering::Relaxed);
        }
        if result.is_err() {
            self.panicked.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Dispatch one due-timer or queued event without blocking.
    pub(crate) fn pump_once(self: &Arc<Self>, reentrant: bool) -> bool {
        for e in self.timers.drain_due(Instant::now()) {
            pyjama_trace::emit(e.trace_id(), Stage::TimerFired, 0);
            self.queue.push(e.with_priority(Priority::High));
        }
        match self.queue.try_pop() {
            Some(e) => {
                self.dispatch(e, reentrant);
                true
            }
            None => false,
        }
    }

    fn stats(&self) -> LoopStats {
        LoopStats {
            dispatched: self.dispatched.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            reentrant: self.reentrant.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
        }
    }
}

/// A single-threaded event dispatch loop.
///
/// Create it, hand out [`EventLoopHandle`]s, then call [`run`](Self::run) on
/// the thread that is to become the dispatch thread. `run` returns after
/// [`EventLoopHandle::quit`].
pub struct EventLoop {
    shared: Arc<Shared>,
}

impl EventLoop {
    /// Creates a loop with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        EventLoop {
            shared: Arc::new(Shared {
                name: name.into(),
                queue: EventQueue::new(),
                timers: TimerQueue::new(),
                quit: AtomicBool::new(false),
                dispatched: AtomicU64::new(0),
                panicked: AtomicU64::new(0),
                reentrant: AtomicU64::new(0),
                depth: AtomicU32::new(0),
                max_depth: AtomicU32::new(0),
                occupancy: parking_lot::Mutex::new(None),
                queue_latency: parking_lot::Mutex::new(None),
            }),
        }
    }

    /// Attaches an occupancy tracker: outermost handler dispatches are
    /// recorded as busy time.
    pub fn attach_occupancy(&self, occ: Arc<OccupancyTracker>) {
        *self.shared.occupancy.lock() = Some(occ);
    }

    /// Attaches a recorder of queueing latency (event fired → dispatch
    /// start).
    pub fn attach_queue_latency(&self, lat: Arc<LatencyRecorder>) {
        *self.shared.queue_latency.lock() = Some(lat);
    }

    /// Returns a clonable, `Send + Sync` handle for posting events.
    pub fn handle(&self) -> EventLoopHandle {
        EventLoopHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the dispatch loop on the current thread until quit.
    ///
    /// While inside a handler, the loop is discoverable via
    /// [`crate::pump::try_pump_current`], which is how the runtime's `await`
    /// mode processes "other event handlers in the system" (§IV-B).
    pub fn run(self) {
        let shared = Arc::clone(&self.shared);
        CURRENT.with(|c| c.borrow_mut().push(Arc::clone(&shared)));
        struct TlsGuard;
        impl Drop for TlsGuard {
            fn drop(&mut self) {
                CURRENT.with(|c| {
                    c.borrow_mut().pop();
                });
            }
        }
        let _g = TlsGuard;

        while !shared.quit.load(Ordering::SeqCst) {
            // Dispatch everything already due.
            let due = shared.timers.drain_due(Instant::now());
            let had_due = !due.is_empty();
            for e in due {
                pyjama_trace::emit(e.trace_id(), Stage::TimerFired, 0);
                shared.dispatch(e, false);
            }
            if had_due {
                continue; // re-check quit between batches
            }
            // Block for the next event, but wake for the next timer deadline.
            let popped = match shared.timers.next_deadline() {
                Some(deadline) => shared.queue.pop_until(deadline),
                None => shared.queue.pop(),
            };
            match popped {
                Some(e) => shared.dispatch(e, false),
                None => {
                    // Either a timer became due (loop around) or the queue
                    // closed for shutdown.
                    if shared.queue.is_closed() && shared.queue.is_empty() {
                        break;
                    }
                }
            }
        }
    }

    /// Processes queued events and *currently due* timers until none remain,
    /// then returns. Useful in tests: no second thread needed.
    pub fn run_until_idle(&self) {
        let shared = Arc::clone(&self.shared);
        CURRENT.with(|c| c.borrow_mut().push(Arc::clone(&shared)));
        struct TlsGuard;
        impl Drop for TlsGuard {
            fn drop(&mut self) {
                CURRENT.with(|c| {
                    c.borrow_mut().pop();
                });
            }
        }
        let _g = TlsGuard;
        while shared.pump_once(false) {}
    }

    /// The loop's diagnostic name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }
}

/// A clonable handle for posting events to an [`EventLoop`] from any thread.
#[derive(Clone)]
pub struct EventLoopHandle {
    shared: Arc<Shared>,
}

impl EventLoopHandle {
    /// Posts a handler as a normal-priority event. Returns its id, or `None`
    /// if the loop has shut down.
    pub fn post(&self, f: impl FnOnce() + Send + 'static) -> Option<EventId> {
        self.post_event(Event::new(f))
    }

    /// Posts a pre-built event.
    pub fn post_event(&self, event: Event) -> Option<EventId> {
        let id = event.id();
        // Emit before the push so the posted timestamp causally precedes
        // any dispatch of the same event on the loop thread.
        pyjama_trace::emit(event.trace_id(), Stage::EventPosted, 0);
        if self.shared.queue.push(event) {
            Some(id)
        } else {
            None
        }
    }

    /// Schedules a handler to run after `delay`.
    pub fn post_delayed(&self, delay: Duration, f: impl FnOnce() + Send + 'static) {
        self.shared.timers.schedule(delay, Event::new(f));
        // Wake the loop so it can observe the (possibly earlier) deadline.
        self.shared
            .queue
            .push(Event::new(|| {}).with_priority(Priority::High).with_label("timer-wake"));
    }

    /// Requests the loop to stop after the current event; pending events are
    /// discarded.
    pub fn quit(&self) {
        self.shared.quit.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    /// True when called from the thread currently running this loop.
    pub fn is_loop_thread(&self) -> bool {
        CURRENT.with(|c| {
            c.borrow()
                .iter()
                .any(|s| Arc::ptr_eq(s, &self.shared))
        })
    }

    /// Registers a waker notified whenever an event is posted to this loop
    /// (or the loop shuts down). Used by the runtime's await barrier so a
    /// parked EDT wakes the instant new work arrives. Returns a token for
    /// [`remove_waker`](Self::remove_waker).
    pub fn add_waker(&self, waker: Arc<dyn QueueWaker>) -> u64 {
        self.shared.queue.add_waker(waker)
    }

    /// Removes a waker registered with [`add_waker`](Self::add_waker).
    pub fn remove_waker(&self, id: u64) {
        self.shared.queue.remove_waker(id)
    }

    /// The deadline of the earliest pending delayed event, if any. A parked
    /// helper bounds its sleep by this: a timer firing is the one wake no
    /// post-side hook can deliver.
    pub fn next_timer_deadline(&self) -> Option<Instant> {
        self.shared.timers.next_deadline()
    }

    /// Number of queued (not yet dispatched) events.
    pub fn pending(&self) -> usize {
        self.shared.queue.len()
    }

    /// Dispatch statistics so far.
    pub fn stats(&self) -> LoopStats {
        self.shared.stats()
    }

    /// The loop's diagnostic name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

}

impl std::fmt::Debug for EventLoopHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoopHandle")
            .field("name", &self.shared.name)
            .field("pending", &self.pending())
            .finish()
    }
}

pub(crate) fn current_shared() -> Option<Arc<Shared>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

pub(crate) fn handle_from_shared(shared: Arc<Shared>) -> EventLoopHandle {
    EventLoopHandle { shared }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    #[test]
    fn run_until_idle_dispatches_everything() {
        let el = EventLoop::new("test");
        let h = el.handle();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log = Arc::clone(&log);
            h.post(move || log.lock().push(i));
        }
        el.run_until_idle();
        assert_eq!(*log.lock(), vec![0, 1, 2]);
        assert_eq!(h.stats().dispatched, 3);
    }

    #[test]
    fn run_on_thread_and_quit() {
        let el = EventLoop::new("edt");
        let h = el.handle();
        let t = std::thread::spawn(move || el.run());
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        h.post(move || d.store(true, Ordering::SeqCst));
        while !done.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        h.quit();
        t.join().unwrap();
        assert!(h.post(|| {}).is_none(), "posting after quit is rejected");
    }

    #[test]
    fn delayed_events_fire_after_delay() {
        let el = EventLoop::new("edt");
        let h = el.handle();
        let fired = Arc::new(Mutex::new(None::<Instant>));
        let t0 = Instant::now();
        let f = Arc::clone(&fired);
        let h2 = h.clone();
        h.post_delayed(Duration::from_millis(30), move || {
            *f.lock() = Some(Instant::now());
            h2.quit();
        });
        let t = std::thread::spawn(move || el.run());
        t.join().unwrap();
        let at = fired.lock().expect("delayed event fired");
        assert!(at.duration_since(t0) >= Duration::from_millis(30));
    }

    #[test]
    fn handler_panic_does_not_kill_loop() {
        let el = EventLoop::new("edt");
        let h = el.handle();
        h.post(|| panic!("handler bug"));
        let ok = Arc::new(AtomicBool::new(false));
        let ok2 = Arc::clone(&ok);
        h.post(move || ok2.store(true, Ordering::SeqCst));
        el.run_until_idle();
        assert!(ok.load(Ordering::SeqCst));
        let stats = h.stats();
        assert_eq!(stats.dispatched, 2);
        assert_eq!(stats.panicked, 1);
    }

    #[test]
    fn is_loop_thread_only_inside_handlers() {
        let el = EventLoop::new("edt");
        let h = el.handle();
        assert!(!h.is_loop_thread());
        let observed = Arc::new(AtomicBool::new(false));
        let o = Arc::clone(&observed);
        let h2 = h.clone();
        h.post(move || o.store(h2.is_loop_thread(), Ordering::SeqCst));
        el.run_until_idle();
        assert!(observed.load(Ordering::SeqCst));
    }

    #[test]
    fn occupancy_is_recorded() {
        let el = EventLoop::new("edt");
        let occ = Arc::new(OccupancyTracker::new());
        el.attach_occupancy(Arc::clone(&occ));
        let h = el.handle();
        h.post(|| std::thread::sleep(Duration::from_millis(5)));
        el.run_until_idle();
        assert!(occ.busy() >= Duration::from_millis(5));
        assert_eq!(occ.intervals(), 1);
    }

    #[test]
    fn queue_latency_recorded() {
        let el = EventLoop::new("edt");
        let lat = Arc::new(LatencyRecorder::new());
        el.attach_queue_latency(Arc::clone(&lat));
        let h = el.handle();
        h.post(|| {});
        std::thread::sleep(Duration::from_millis(5));
        el.run_until_idle();
        assert_eq!(lat.count(), 1);
        assert!(lat.max() >= Duration::from_millis(5));
    }

    #[test]
    fn quit_discards_pending() {
        let el = EventLoop::new("edt");
        let h = el.handle();
        let ran = Arc::new(AtomicBool::new(false));
        let h2 = h.clone();
        h.post(move || h2.quit());
        let r = Arc::clone(&ran);
        h.post(move || r.store(true, Ordering::SeqCst));
        let t = std::thread::spawn(move || el.run());
        t.join().unwrap();
        assert!(!ran.load(Ordering::SeqCst));
    }
}
