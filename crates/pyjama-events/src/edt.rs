//! A dedicated event-dispatch thread, in the style of the AWT/Swing EDT.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::eventloop::{EventLoop, EventLoopHandle, LoopStats};

/// An owned dispatch thread running an [`EventLoop`].
///
/// GUI frameworks confine all widget access to one such thread (§II-A:
/// "updates to the GUI should only be executed by the EDT"). `Edt` provides
/// the two `SwingUtilities`-style entry points, [`invoke_later`]
/// (asynchronous post) and [`invoke_and_wait`] (synchronous round-trip).
///
/// [`invoke_later`]: Edt::invoke_later
/// [`invoke_and_wait`]: Edt::invoke_and_wait
pub struct Edt {
    handle: EventLoopHandle,
    thread: Option<JoinHandle<()>>,
}

impl Edt {
    /// Spawns a new dispatch thread named `name` and waits until its loop is
    /// accepting events.
    pub fn spawn(name: impl Into<String>) -> Self {
        Self::spawn_with(name, |_| {})
    }

    /// Like [`spawn`](Self::spawn), but lets the caller configure the loop
    /// (attach occupancy/latency instrumentation) before it starts.
    pub fn spawn_with(name: impl Into<String>, configure: impl FnOnce(&EventLoop) + Send + 'static) -> Self {
        let name = name.into();
        let slot: Arc<(Mutex<Option<EventLoopHandle>>, Condvar)> =
            Arc::new((Mutex::new(None), Condvar::new()));
        let slot2 = Arc::clone(&slot);
        let tname = name.clone();
        let thread = std::thread::Builder::new()
            .name(tname.clone())
            .spawn(move || {
                let el = EventLoop::new(tname);
                configure(&el);
                {
                    let (lock, cond) = &*slot2;
                    *lock.lock() = Some(el.handle());
                    cond.notify_all();
                }
                el.run();
            })
            .expect("failed to spawn EDT thread");
        let handle = {
            let (lock, cond) = &*slot;
            let mut g = lock.lock();
            while g.is_none() {
                cond.wait(&mut g);
            }
            g.take().expect("loop handle published")
        };
        Edt {
            handle,
            thread: Some(thread),
        }
    }

    /// Posts a handler to run on the EDT (SwingUtilities.invokeLater).
    pub fn invoke_later(&self, f: impl FnOnce() + Send + 'static) {
        self.handle.post(f);
    }

    /// Runs `f` on the EDT and blocks until it completes, returning its
    /// value (SwingUtilities.invokeAndWait).
    ///
    /// Unlike Swing — which throws when called from the EDT — calling this
    /// *on* the EDT runs `f` inline, since blocking there would deadlock.
    pub fn invoke_and_wait<R: Send + 'static>(&self, f: impl FnOnce() -> R + Send + 'static) -> R {
        if self.handle.is_loop_thread() {
            return f();
        }
        let slot: Arc<(Mutex<Option<std::thread::Result<R>>>, Condvar)> =
            Arc::new((Mutex::new(None), Condvar::new()));
        let slot2 = Arc::clone(&slot);
        let posted = self.handle.post(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let (lock, cond) = &*slot2;
            *lock.lock() = Some(r);
            cond.notify_all();
        });
        assert!(posted.is_some(), "invoke_and_wait on a stopped EDT");
        let (lock, cond) = &*slot;
        let mut g = lock.lock();
        while g.is_none() {
            cond.wait(&mut g);
        }
        match g.take().expect("result published") {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Schedules a handler to run on the EDT after `delay`.
    pub fn invoke_delayed(&self, delay: Duration, f: impl FnOnce() + Send + 'static) {
        self.handle.post_delayed(delay, f);
    }

    /// True when called from the dispatch thread itself.
    pub fn is_edt(&self) -> bool {
        self.handle.is_loop_thread()
    }

    /// The underlying loop handle (for registering as a virtual target).
    pub fn handle(&self) -> EventLoopHandle {
        self.handle.clone()
    }

    /// Dispatch statistics.
    pub fn stats(&self) -> LoopStats {
        self.handle.stats()
    }

    /// Stops the loop and joins the thread. Idempotent.
    ///
    /// If called *on the EDT itself* (e.g. the owner was dropped inside a
    /// handler), the thread is detached instead of joined — a thread cannot
    /// join itself; the loop still exits via the quit flag.
    pub fn shutdown(&mut self) {
        self.handle.quit();
        if let Some(t) = self.thread.take() {
            if t.thread().id() == std::thread::current().id() {
                drop(t);
            } else {
                let _ = t.join();
            }
        }
    }
}

impl Drop for Edt {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Edt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Edt").field("name", &self.handle.name()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn invoke_later_runs_on_edt_thread() {
        let edt = Edt::spawn("edt-test");
        let h = edt.handle();
        let on_edt = Arc::new(AtomicBool::new(false));
        let o = Arc::clone(&on_edt);
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        edt.invoke_later(move || {
            o.store(h.is_loop_thread(), Ordering::SeqCst);
            d.store(true, Ordering::SeqCst);
        });
        while !done.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(on_edt.load(Ordering::SeqCst));
    }

    #[test]
    fn invoke_and_wait_returns_value() {
        let edt = Edt::spawn("edt-test");
        let v = edt.invoke_and_wait(|| 6 * 7);
        assert_eq!(v, 42);
    }

    #[test]
    fn invoke_and_wait_from_edt_runs_inline() {
        let edt = Arc::new(Edt::spawn("edt-test"));
        let e2 = Arc::clone(&edt);
        let v = edt.invoke_and_wait(move || e2.invoke_and_wait(|| 7));
        assert_eq!(v, 7);
    }

    #[test]
    fn invoke_and_wait_propagates_panic() {
        let edt = Edt::spawn("edt-test");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            edt.invoke_and_wait(|| panic!("widget error"))
        }));
        assert!(r.is_err());
        // EDT still alive afterwards.
        assert_eq!(edt.invoke_and_wait(|| 1), 1);
    }

    #[test]
    fn events_execute_in_fifo_order() {
        let edt = Edt::spawn("edt-test");
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..100 {
            let c = Arc::clone(&counter);
            edt.invoke_later(move || {
                // Each event asserts it's the i-th to run.
                let prev = c.fetch_add(1, Ordering::SeqCst);
                assert_eq!(prev, i);
            });
        }
        // Barrier: round-trip guarantees all prior events dispatched.
        edt.invoke_and_wait(|| {});
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn is_edt_false_from_outside() {
        let edt = Edt::spawn("edt-test");
        assert!(!edt.is_edt());
        assert!(edt.invoke_and_wait({
            let h = edt.handle();
            move || h.is_loop_thread()
        }));
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut edt = Edt::spawn("edt-test");
        edt.shutdown();
        edt.shutdown();
        drop(edt);
    }

    #[test]
    fn invoke_delayed_runs() {
        let edt = Edt::spawn("edt-test");
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        edt.invoke_delayed(Duration::from_millis(20), move || {
            d.store(true, Ordering::SeqCst)
        });
        let t0 = std::time::Instant::now();
        while !done.load(Ordering::SeqCst) {
            assert!(t0.elapsed() < Duration::from_secs(5), "timer never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
