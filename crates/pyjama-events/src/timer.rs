//! Delayed events: a deadline-ordered timer queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::event::Event;

struct TimerEntry {
    deadline: Instant,
    seq: u64,
    event: Event,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deadline
            .cmp(&other.deadline)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A thread-safe min-heap of (deadline, event) pairs.
///
/// The event loop integrates this: before blocking on the main queue it asks
/// [`TimerQueue::next_deadline`] and wakes in time to
/// [`drain_due`](TimerQueue::drain_due) expired
/// timers into the dispatch path.
pub struct TimerQueue {
    inner: Mutex<TimerState>,
}

struct TimerState {
    heap: BinaryHeap<Reverse<TimerEntry>>,
    next_seq: u64,
}

impl TimerQueue {
    /// Creates an empty timer queue.
    pub fn new() -> Self {
        TimerQueue {
            inner: Mutex::new(TimerState {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }),
        }
    }

    /// Schedules `event` to become due after `delay`.
    pub fn schedule(&self, delay: Duration, event: Event) {
        self.schedule_at(Instant::now() + delay, event);
    }

    /// Schedules `event` to become due at `deadline`.
    pub fn schedule_at(&self, deadline: Instant, event: Event) {
        let mut g = self.inner.lock();
        let seq = g.next_seq;
        g.next_seq += 1;
        g.heap.push(Reverse(TimerEntry {
            deadline,
            seq,
            event,
        }));
    }

    /// Earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.inner.lock().heap.peek().map(|Reverse(e)| e.deadline)
    }

    /// Removes and returns all events whose deadline is at or before `now`,
    /// in deadline order.
    pub fn drain_due(&self, now: Instant) -> Vec<Event> {
        let mut g = self.inner.lock();
        let mut due = Vec::new();
        while let Some(Reverse(top)) = g.heap.peek() {
            if top.deadline <= now {
                let Reverse(e) = g.heap.pop().expect("peeked entry exists");
                due.push(e.event);
            } else {
                break;
            }
        }
        due
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    /// True when no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TimerQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;
    use std::sync::Arc;

    #[test]
    fn due_events_drain_in_deadline_order() {
        let tq = TimerQueue::new();
        let order = Arc::new(PMutex::new(Vec::new()));
        let now = Instant::now();
        for (delay_ms, tag) in [(30u64, "c"), (10, "a"), (20, "b")] {
            let order = Arc::clone(&order);
            tq.schedule_at(
                now + Duration::from_millis(delay_ms),
                Event::new(move || order.lock().push(tag)),
            );
        }
        for e in tq.drain_due(now + Duration::from_millis(25)) {
            e.dispatch();
        }
        assert_eq!(*order.lock(), vec!["a", "b"]);
        assert_eq!(tq.len(), 1);
    }

    #[test]
    fn nothing_due_before_deadline() {
        let tq = TimerQueue::new();
        tq.schedule(Duration::from_secs(60), Event::new(|| {}));
        assert!(tq.drain_due(Instant::now()).is_empty());
        assert_eq!(tq.len(), 1);
    }

    #[test]
    fn next_deadline_is_minimum() {
        let tq = TimerQueue::new();
        assert!(tq.next_deadline().is_none());
        let now = Instant::now();
        tq.schedule_at(now + Duration::from_millis(50), Event::new(|| {}));
        tq.schedule_at(now + Duration::from_millis(10), Event::new(|| {}));
        let d = tq.next_deadline().unwrap();
        assert!(d <= now + Duration::from_millis(10));
    }

    #[test]
    fn equal_deadlines_fifo() {
        let tq = TimerQueue::new();
        let order = Arc::new(PMutex::new(Vec::new()));
        let deadline = Instant::now();
        for i in 0..3 {
            let order = Arc::clone(&order);
            tq.schedule_at(deadline, Event::new(move || order.lock().push(i)));
        }
        for e in tq.drain_due(deadline) {
            e.dispatch();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }
}
