//! Event-loop / event-dispatch-thread (EDT) substrate.
//!
//! Event-driven applications are driven by "an infinite loop (known as the
//! event-loop) with associated event listeners" (§II-A of the paper). This
//! crate provides that substrate:
//!
//! * [`Event`] — a unit of dispatch: a handler (stored inline via
//!   [`InlineFn`] when its captures are small) plus priority and
//!   correlation metadata.
//! * [`EventQueue`] — the blocking, priority-ordered queue behind a loop.
//! * [`EventLoop`] — the dispatch loop itself, with the one non-standard
//!   capability the paper's `await` mode requires: **re-entrant pumping**.
//!   Pyjama "achieves this by slightly modifying the event queue dispatching
//!   mechanism in the Java AWT runtime library" (§IV-B); here the analogous
//!   hook is [`EventLoop`]'s `pump_once`, reachable from inside a handler
//!   through [`pump::try_pump_current`].
//! * [`Edt`] — a dedicated dispatch thread owning an event loop, with
//!   `invoke_later` / `invoke_and_wait` in the style of
//!   `SwingUtilities`.
//! * [`timer`] — delayed event scheduling.
//!
//! The crate deliberately knows nothing about virtual targets; the runtime
//! crate layers the paper's offloading semantics on top of these hooks.

pub mod coalesce;
pub mod edt;
pub mod event;
pub mod eventloop;
pub mod inline;
pub mod pump;
pub mod queue;
pub mod recurring;
pub mod timer;

pub use coalesce::Coalescer;
pub use edt::Edt;
pub use event::{Event, EventId, Priority};
pub use inline::InlineFn;
pub use eventloop::{EventLoop, EventLoopHandle, LoopStats};
pub use queue::{EventQueue, QueueWaker};
pub use recurring::IntervalHandle;
pub use timer::TimerQueue;
