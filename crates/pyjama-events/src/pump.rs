//! Re-entrant pumping — the hook behind the paper's `await` mode.
//!
//! Algorithm 1 (§IV-B) implements `await` as a *logical barrier*:
//!
//! ```text
//! while B is not finished do
//!     T.processAnotherEventHandler()
//! end while
//! ```
//!
//! For the EDT, "the current experimental version of Pyjama achieves this by
//! slightly modifying the event queue dispatching mechanism in the Java AWT
//! runtime library". Our event loop exposes the same capability directly:
//! from inside a handler, [`try_pump_current`] dispatches one other pending
//! event on the same loop, re-entrantly.
//!
//! When the loop has *nothing* pending, the barrier does not poll this
//! function: it registers a waker on the current loop (via
//! [`current_handle`] + [`crate::EventLoopHandle::add_waker`]) and parks
//! until a post signals it, at which point one `try_pump_current` call
//! dispatches the newly arrived event.

use crate::eventloop::{current_shared, EventLoopHandle};

/// If the current thread is running an [`crate::EventLoop`], dispatch one
/// pending event (or due timer) re-entrantly and return `true`. Returns
/// `false` when not on a loop thread or when nothing is pending.
pub fn try_pump_current() -> bool {
    match current_shared() {
        Some(shared) => shared.pump_once(true),
        None => false,
    }
}

/// True when the current thread is running an event loop (i.e. we are inside
/// a handler, or inside `run_until_idle`).
pub fn is_event_loop_thread() -> bool {
    current_shared().is_some()
}

/// Handle to the loop the current thread is running, if any.
pub fn current_handle() -> Option<EventLoopHandle> {
    current_shared().map(EventLoopHandle::from_shared)
}

impl EventLoopHandle {
    pub(crate) fn from_shared(shared: std::sync::Arc<crate::eventloop::Shared>) -> Self {
        // EventLoopHandle's field is private to eventloop.rs; construct via
        // a helper there.
        crate::eventloop::handle_from_shared(shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventLoop;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn pumping_off_loop_thread_is_false() {
        assert!(!try_pump_current());
        assert!(!is_event_loop_thread());
        assert!(current_handle().is_none());
    }

    #[test]
    fn handler_can_pump_a_later_event() {
        let el = EventLoop::new("edt");
        let h = el.handle();
        let order = Arc::new(Mutex::new(Vec::new()));

        // First handler pumps; the second event runs *inside* the first.
        let o1 = Arc::clone(&order);
        h.post(move || {
            o1.lock().push("first:start");
            while try_pump_current() {}
            o1.lock().push("first:end");
        });
        let o2 = Arc::clone(&order);
        h.post(move || o2.lock().push("second"));

        el.run_until_idle();
        assert_eq!(
            *order.lock(),
            vec!["first:start", "second", "first:end"],
            "second event must be dispatched re-entrantly inside the first"
        );
        assert_eq!(h.stats().reentrant, 1);
        assert_eq!(h.stats().max_depth, 2);
    }

    #[test]
    fn current_handle_posts_back_to_same_loop() {
        let el = EventLoop::new("edt");
        let h = el.handle();
        let ran = Arc::new(AtomicBool::new(false));
        let r = Arc::clone(&ran);
        h.post(move || {
            let me = current_handle().expect("inside a handler");
            let r = Arc::clone(&r);
            me.post(move || r.store(true, Ordering::SeqCst));
        });
        el.run_until_idle();
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn is_event_loop_thread_true_inside_handler() {
        let el = EventLoop::new("edt");
        let h = el.handle();
        let seen = Arc::new(AtomicBool::new(false));
        let s = Arc::clone(&seen);
        h.post(move || s.store(is_event_loop_thread(), Ordering::SeqCst));
        el.run_until_idle();
        assert!(seen.load(Ordering::SeqCst));
    }
}
