//! The unit of dispatch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use pyjama_trace::TraceId;

use crate::inline::InlineFn;

/// Globally unique identifier of a posted event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u64);

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

impl EventId {
    /// Allocates a fresh id.
    pub fn next() -> Self {
        EventId(NEXT_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// Dispatch priority. Events of equal priority dispatch in FIFO order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Dispatched before everything else (e.g. quit, urgent repaints).
    High = 2,
    /// Ordinary events.
    #[default]
    Normal = 1,
    /// Background/idle work.
    Low = 0,
}

/// An event: a one-shot handler plus metadata.
///
/// In an event-driven framework "the listener triggers the callback function
/// implemented by programmers" (§II-A); an `Event` is that callback, queued.
pub struct Event {
    id: EventId,
    priority: Priority,
    label: Option<String>,
    fired_at: Instant,
    trace: TraceId,
    handler: InlineFn,
}

impl Event {
    /// Creates a normal-priority event from a handler.
    pub fn new(handler: impl FnOnce() + Send + 'static) -> Self {
        Event {
            id: EventId::next(),
            priority: Priority::Normal,
            label: None,
            fired_at: Instant::now(),
            trace: TraceId::mint(),
            handler: InlineFn::new(handler),
        }
    }

    /// Sets the priority (builder style).
    pub fn with_priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Attaches a human-readable label (builder style).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The event's unique id.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// The event's priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The label, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// When the event was created ("fired").
    pub fn fired_at(&self) -> Instant {
        self.fired_at
    }

    /// The causal trace id minted at creation (NONE while tracing is off).
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// True when the handler's captures are stored inline (no allocation).
    pub fn handler_is_inline(&self) -> bool {
        self.handler.is_inline()
    }

    /// Consumes the event and runs its handler.
    pub fn dispatch(self) {
        self.handler.call()
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn ids_are_unique_and_increasing() {
        let a = EventId::next();
        let b = EventId::next();
        assert!(b > a);
    }

    #[test]
    fn dispatch_runs_handler_once() {
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        let e = Event::new(move || r2.store(true, Ordering::SeqCst));
        e.dispatch();
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn builder_sets_metadata() {
        let e = Event::new(|| {})
            .with_priority(Priority::High)
            .with_label("click");
        assert_eq!(e.priority(), Priority::High);
        assert_eq!(e.label(), Some("click"));
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
