//! Recurring timers — `javax.swing.Timer`-style periodic events.
//!
//! The GUI benchmarks and examples need tickers (paper Figure 1's stream
//! of incoming requests); this module provides a cancelable periodic
//! event source built on the loop's delayed-post primitive.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::eventloop::EventLoopHandle;

/// Handle to a running periodic timer; dropping it does **not** stop the
/// timer (like Swing), call [`cancel`](IntervalHandle::cancel).
#[derive(Clone)]
pub struct IntervalHandle {
    cancelled: Arc<AtomicBool>,
    fired: Arc<AtomicU64>,
}

impl IntervalHandle {
    /// Stops the timer after at most one more firing.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// True once cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Number of times the callback has run.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }
}

impl EventLoopHandle {
    /// Schedules `f` to run on the loop every `period`, starting one
    /// period from now, until cancelled (or the loop shuts down).
    pub fn post_interval(
        &self,
        period: Duration,
        f: impl Fn() + Send + Sync + 'static,
    ) -> IntervalHandle {
        let handle = IntervalHandle {
            cancelled: Arc::new(AtomicBool::new(false)),
            fired: Arc::new(AtomicU64::new(0)),
        };
        schedule_tick(self.clone(), period, Arc::new(f), handle.clone());
        handle
    }
}

fn schedule_tick(
    loop_handle: EventLoopHandle,
    period: Duration,
    f: Arc<dyn Fn() + Send + Sync>,
    interval: IntervalHandle,
) {
    let lh = loop_handle.clone();
    loop_handle.post_delayed(period, move || {
        if interval.cancelled.load(Ordering::SeqCst) {
            return;
        }
        f();
        interval.fired.fetch_add(1, Ordering::SeqCst);
        schedule_tick(lh, period, f, interval);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edt::Edt;
    use std::time::Instant;

    #[test]
    fn interval_fires_repeatedly_until_cancelled() {
        let edt = Edt::spawn("edt");
        let ih = edt.handle().post_interval(Duration::from_millis(5), || {});
        let t0 = Instant::now();
        while ih.fired() < 3 {
            assert!(t0.elapsed() < Duration::from_secs(10), "timer never fired 3×");
            std::thread::sleep(Duration::from_millis(1));
        }
        ih.cancel();
        assert!(ih.is_cancelled());
        let after = ih.fired();
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            ih.fired() <= after + 1,
            "at most one more firing after cancel"
        );
    }

    #[test]
    fn multiple_intervals_coexist() {
        let edt = Edt::spawn("edt");
        let fast = edt.handle().post_interval(Duration::from_millis(3), || {});
        let slow = edt.handle().post_interval(Duration::from_millis(30), || {});
        let t0 = Instant::now();
        while fast.fired() < 8 {
            assert!(t0.elapsed() < Duration::from_secs(10));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            fast.fired() > slow.fired(),
            "fast ticker must outpace slow one: {} vs {}",
            fast.fired(),
            slow.fired()
        );
        fast.cancel();
        slow.cancel();
    }

    #[test]
    fn interval_callback_runs_on_the_loop_thread() {
        let edt = Edt::spawn("edt");
        let h = edt.handle();
        let on_loop = Arc::new(AtomicBool::new(false));
        let o2 = Arc::clone(&on_loop);
        let h2 = h.clone();
        let ih = h.post_interval(Duration::from_millis(2), move || {
            o2.store(h2.is_loop_thread(), Ordering::SeqCst);
        });
        let t0 = Instant::now();
        while ih.fired() == 0 {
            assert!(t0.elapsed() < Duration::from_secs(10));
            std::thread::sleep(Duration::from_millis(1));
        }
        ih.cancel();
        assert!(on_loop.load(Ordering::SeqCst));
    }

    #[test]
    fn interval_rearms_after_handler_slower_than_period() {
        // A handler outlasting its own period must not kill the ticker:
        // each completion schedules the next tick, so firing continues
        // (at the handler's pace) instead of stopping after one round.
        let edt = Edt::spawn("edt");
        let ih = edt.handle().post_interval(Duration::from_millis(2), || {
            std::thread::sleep(Duration::from_millis(15));
        });
        let t0 = Instant::now();
        while ih.fired() < 3 {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "slow handler stopped the interval after {} fires",
                ih.fired()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        ih.cancel();
    }

    #[test]
    fn cancel_during_running_handler_stops_future_ticks() {
        // Cancel lands while a tick's handler is mid-run: the in-flight
        // tick finishes (its firing already counted or about to be), but
        // the re-arm it performs must observe the flag and go dead.
        let edt = Edt::spawn("edt");
        let entered = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let (e2, r2) = (Arc::clone(&entered), Arc::clone(&release));
        let ih = edt.handle().post_interval(Duration::from_millis(2), move || {
            e2.store(true, Ordering::SeqCst);
            let t0 = Instant::now();
            while !r2.load(Ordering::SeqCst) && t0.elapsed() < Duration::from_secs(5) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let t0 = Instant::now();
        while !entered.load(Ordering::SeqCst) {
            assert!(t0.elapsed() < Duration::from_secs(10), "first tick never ran");
            std::thread::sleep(Duration::from_millis(1));
        }
        ih.cancel(); // mid-flight: the handler is blocked inside its run
        release.store(true, Ordering::SeqCst);
        // Wait out several would-be periods; the count must settle at the
        // in-flight firing alone.
        std::thread::sleep(Duration::from_millis(40));
        let settled = ih.fired();
        assert!(settled <= 1, "cancel mid-flight allowed {settled} fires");
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ih.fired(), settled, "timer kept ticking after cancel");
    }

    #[test]
    fn cancelled_handle_reports_zero_future_fires() {
        let edt = Edt::spawn("edt");
        let ih = edt
            .handle()
            .post_interval(Duration::from_millis(500), || {});
        ih.cancel();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ih.fired(), 0);
    }
}
