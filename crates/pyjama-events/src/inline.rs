//! `InlineFn` — small-closure storage that skips the allocator.
//!
//! `Box<dyn FnOnce()>` costs one heap allocation per closure, and on the
//! posting hot path (one closure per event, one per target region) that
//! allocation dominates everything else the post does. Typical capture sets
//! are tiny — an `Arc` or two, an integer — so this type stores closures of
//! up to [`INLINE_WORDS`] machine words (with alignment ≤ that of `usize`)
//! directly inside the struct and only spills larger or over-aligned
//! captures to the heap.
//!
//! The layout is a hand-rolled vtable of two function pointers:
//!
//! * `call` — moves the closure out of storage and invokes it, consuming it;
//! * `drop_in_place` — destroys a never-called closure (handler dropped
//!   because a queue was closed, a region cancelled, …).
//!
//! Both are monomorphised per closure type by [`InlineFn::new`], so calling
//! an `InlineFn` is one indirect call — the same cost as `Box<dyn FnOnce>` —
//! while creating one is free for the common case.
//!
//! Safety note: `InlineFn` is `Send` (the constructor bounds `F: Send`) but
//! deliberately not `Sync` — the storage is moved out by value on call.

use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};
use std::ptr;

/// Number of machine words a closure may capture and still be stored inline.
pub const INLINE_WORDS: usize = 3;

/// Raw inline storage: `INLINE_WORDS` words, `usize`-aligned.
type Slot = MaybeUninit<[usize; INLINE_WORDS]>;

/// Does `F` fit the inline slot (size *and* alignment)?
const fn fits_inline<F>() -> bool {
    size_of::<F>() <= size_of::<Slot>() && align_of::<F>() <= align_of::<Slot>()
}

/// A `FnOnce() + Send` stored without heap allocation when small.
///
/// Drop-in replacement for `Box<dyn FnOnce() + Send>` on hot paths:
///
/// ```
/// use pyjama_events::inline::InlineFn;
/// let x = 41u64;
/// let f = InlineFn::new(move || assert_eq!(x + 1, 42));
/// assert!(f.is_inline());
/// f.call();
/// ```
pub struct InlineFn {
    /// Either the closure itself (inline) or a `*mut F` (spilled).
    slot: Slot,
    /// Moves the closure out of `slot` and runs it.
    call: unsafe fn(*mut Slot),
    /// Destroys an uncalled closure in `slot`.
    drop_in_place: unsafe fn(*mut Slot),
    /// True when the closure lives in `slot` directly (observability only).
    inline: bool,
}

// SAFETY: `new` requires `F: Send`, and the closure is only ever accessed
// by whoever owns the `InlineFn`, which itself moves between threads as a
// value. A spilled closure is an owned heap pointer, same as `Box<F>`.
unsafe impl Send for InlineFn {}

impl InlineFn {
    /// Wraps `f`, storing it inline when it fits and boxing it otherwise.
    pub fn new<F: FnOnce() + Send + 'static>(f: F) -> Self {
        if fits_inline::<F>() {
            // SAFETY: size/align checked; the value is written once here and
            // read exactly once by `call_inline` or `drop_inline`.
            unsafe fn call_inline<F: FnOnce()>(slot: *mut Slot) {
                let f: F = unsafe { ptr::read(slot.cast::<F>()) };
                f();
            }
            unsafe fn drop_inline<F>(slot: *mut Slot) {
                unsafe { ptr::drop_in_place(slot.cast::<F>()) }
            }
            let mut slot = Slot::uninit();
            unsafe { ptr::write(slot.as_mut_ptr().cast::<F>(), f) };
            InlineFn {
                slot,
                call: call_inline::<F>,
                drop_in_place: drop_inline::<F>,
                inline: true,
            }
        } else {
            // Spill: store the box's raw pointer in the first slot word.
            unsafe fn call_boxed<F: FnOnce()>(slot: *mut Slot) {
                let f = unsafe { Box::from_raw(ptr::read(slot.cast::<*mut F>())) };
                f();
            }
            unsafe fn drop_boxed<F>(slot: *mut Slot) {
                drop(unsafe { Box::from_raw(ptr::read(slot.cast::<*mut F>())) });
            }
            let raw = Box::into_raw(Box::new(f));
            let mut slot = Slot::uninit();
            unsafe { ptr::write(slot.as_mut_ptr().cast::<*mut F>(), raw) };
            InlineFn {
                slot,
                call: call_boxed::<F>,
                drop_in_place: drop_boxed::<F>,
                inline: false,
            }
        }
    }

    /// True when the closure is stored inline (no allocation happened).
    pub fn is_inline(&self) -> bool {
        self.inline
    }

    /// Consumes the wrapper and runs the closure.
    pub fn call(self) {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: `self` is consumed and its Drop suppressed, so the slot is
        // read exactly once.
        unsafe { (this.call)(&mut this.slot) }
    }
}

impl Drop for InlineFn {
    fn drop(&mut self) {
        // SAFETY: `call` consumes `self` via ManuallyDrop, so reaching Drop
        // means the closure was never taken out.
        unsafe { (self.drop_in_place)(&mut self.slot) }
    }
}

impl std::fmt::Debug for InlineFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InlineFn")
            .field("inline", &self.inline)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn zero_capture_is_inline() {
        let f = InlineFn::new(|| {});
        assert!(f.is_inline());
        f.call();
    }

    #[test]
    fn small_captures_stay_inline_and_run() {
        let hits = Arc::new(AtomicUsize::new(0));
        let (h, n) = (Arc::clone(&hits), 7usize);
        let f = InlineFn::new(move || {
            h.fetch_add(n, Ordering::SeqCst);
        });
        assert!(f.is_inline(), "Arc + usize must fit {INLINE_WORDS} words");
        f.call();
        assert_eq!(hits.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn large_captures_spill_and_run() {
        let big = [7u64; 16];
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let f = InlineFn::new(move || {
            h.fetch_add(big.iter().sum::<u64>() as usize, Ordering::SeqCst);
        });
        assert!(!f.is_inline());
        f.call();
        assert_eq!(hits.load(Ordering::SeqCst), 7 * 16);
    }

    #[test]
    fn over_aligned_captures_spill() {
        #[repr(align(64))]
        #[derive(Clone, Copy)]
        struct Aligned(#[allow(dead_code)] u8);
        let a = Aligned(3);
        // black_box the whole struct: edition-2021 closures capture disjoint
        // fields, and `a.0` alone would be a 1-byte (inline-able) capture.
        let f = InlineFn::new(move || {
            std::hint::black_box(a);
        });
        assert!(!f.is_inline(), "align 64 exceeds slot alignment");
        f.call();
    }

    #[test]
    fn uncalled_inline_closure_drops_captures() {
        let arc = Arc::new(());
        let probe = Arc::clone(&arc);
        let f = InlineFn::new(move || {
            let _keep = &probe;
        });
        assert!(f.is_inline());
        assert_eq!(Arc::strong_count(&arc), 2);
        drop(f);
        assert_eq!(Arc::strong_count(&arc), 1, "capture must be destroyed");
    }

    #[test]
    fn uncalled_spilled_closure_drops_captures() {
        let arc = Arc::new(());
        let probe = Arc::clone(&arc);
        let pad = [0u64; 16];
        let f = InlineFn::new(move || {
            let _keep = (&probe, &pad);
        });
        assert!(!f.is_inline());
        drop(f);
        assert_eq!(Arc::strong_count(&arc), 1);
    }

    #[test]
    fn call_consumes_exactly_once() {
        struct Bomb(Arc<AtomicUsize>);
        impl Drop for Bomb {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let bomb = Bomb(Arc::clone(&drops));
        let f = InlineFn::new(move || {
            let _b = &bomb;
        });
        f.call();
        assert_eq!(drops.load(Ordering::SeqCst), 1, "capture dropped once");
    }

    #[test]
    fn sendable_across_threads() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let f = InlineFn::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::spawn(move || f.call()).join().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
