//! Event coalescing — AWT/Swing-style collapsing of redundant updates.
//!
//! GUI frameworks coalesce repaint and progress events: if an update for
//! the same key is still queued, the new one *replaces* it instead of
//! piling up behind a slow EDT. The paper's broadcast-style `nowait`
//! progress updates (§III-C: "broadcasting interim updates") are exactly
//! the events worth coalescing.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::eventloop::EventLoopHandle;

type Job = Box<dyn FnOnce() + Send>;
/// The freshest not-yet-dispatched handler for one key.
type Slot = Arc<Mutex<Option<Job>>>;

/// Posts keyed events to a loop, collapsing same-key events that have not
/// yet dispatched.
pub struct Coalescer {
    handle: EventLoopHandle,
    pending: Arc<Mutex<HashMap<String, Slot>>>,
}

impl Coalescer {
    /// Wraps a loop handle.
    pub fn new(handle: EventLoopHandle) -> Self {
        Coalescer {
            handle,
            pending: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Posts `f` under `key`. If a `key` event is still queued, its
    /// handler is replaced by `f` (the stale update is dropped) and no new
    /// event is enqueued.
    pub fn post(&self, key: &str, f: impl FnOnce() + Send + 'static) {
        let mut pending = self.pending.lock();
        if let Some(slot) = pending.get(key) {
            let mut g = slot.lock();
            if g.is_some() {
                // Still queued: replace the stale handler.
                *g = Some(Box::new(f));
                return;
            }
            // Already dispatched (slot emptied); fall through to repost.
        }
        let slot: Slot = Arc::new(Mutex::new(Some(Box::new(f))));
        pending.insert(key.to_string(), Arc::clone(&slot));
        drop(pending);

        let pending_map = Arc::clone(&self.pending);
        let key = key.to_string();
        self.handle.post(move || {
            // Take the freshest handler and clear the key before running,
            // so a post from inside the handler re-enqueues.
            let job = {
                let job = slot.lock().take();
                pending_map.lock().remove(&key);
                job
            };
            if let Some(job) = job {
                job();
            }
        });
    }

    /// Number of keys with a queued (not yet dispatched) event.
    pub fn pending_keys(&self) -> usize {
        self.pending.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventLoop;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn burst_of_same_key_updates_coalesces_to_latest() {
        let el = EventLoop::new("edt");
        let c = Coalescer::new(el.handle());
        let last = Arc::new(AtomicU64::new(0));
        let runs = Arc::new(AtomicU64::new(0));
        for i in 1..=100u64 {
            let last = Arc::clone(&last);
            let runs = Arc::clone(&runs);
            c.post("progress", move || {
                last.store(i, Ordering::SeqCst);
                runs.fetch_add(1, Ordering::SeqCst);
            });
        }
        el.run_until_idle();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "99 stale updates dropped");
        assert_eq!(last.load(Ordering::SeqCst), 100, "the freshest survives");
    }

    #[test]
    fn different_keys_do_not_coalesce() {
        let el = EventLoop::new("edt");
        let c = Coalescer::new(el.handle());
        let runs = Arc::new(AtomicU64::new(0));
        for key in ["a", "b", "c"] {
            let runs = Arc::clone(&runs);
            c.post(key, move || {
                runs.fetch_add(1, Ordering::SeqCst);
            });
        }
        el.run_until_idle();
        assert_eq!(runs.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn post_after_dispatch_enqueues_again() {
        let el = EventLoop::new("edt");
        let c = Coalescer::new(el.handle());
        let runs = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&runs);
        c.post("k", move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        el.run_until_idle();
        let r = Arc::clone(&runs);
        c.post("k", move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        el.run_until_idle();
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        assert_eq!(c.pending_keys(), 0);
    }

    #[test]
    fn coalesced_event_keeps_its_queue_position_among_plain_events() {
        // Replacing a queued handler must not move the event: a same-key
        // repost updates the payload in place, so the coalesced event still
        // dispatches *before* plain events posted after the original, and
        // the plain events around it are unaffected.
        let el = EventLoop::new("edt");
        let h = el.handle();
        let c = Coalescer::new(h.clone());
        let order = Arc::new(Mutex::new(Vec::new()));

        let o = Arc::clone(&order);
        c.post("progress", move || o.lock().push("stale"));
        let o = Arc::clone(&order);
        h.post(move || o.lock().push("plain-1"));
        // Replaces the queued "stale" payload; position stays first.
        let o = Arc::clone(&order);
        c.post("progress", move || o.lock().push("fresh"));
        let o = Arc::clone(&order);
        h.post(move || o.lock().push("plain-2"));

        el.run_until_idle();
        assert_eq!(*order.lock(), vec!["fresh", "plain-1", "plain-2"]);
    }

    #[test]
    fn mixed_keys_and_plain_events_all_run_with_latest_payloads() {
        let el = EventLoop::new("edt");
        let h = el.handle();
        let c = Coalescer::new(h.clone());
        let last_a = Arc::new(AtomicU64::new(0));
        let last_b = Arc::new(AtomicU64::new(0));
        let plain = Arc::new(AtomicU64::new(0));
        for i in 1..=10u64 {
            let a = Arc::clone(&last_a);
            c.post("a", move || a.store(i, Ordering::SeqCst));
            let b = Arc::clone(&last_b);
            c.post("b", move || b.store(i * 100, Ordering::SeqCst));
            let p = Arc::clone(&plain);
            h.post(move || {
                p.fetch_add(1, Ordering::SeqCst);
            });
        }
        el.run_until_idle();
        assert_eq!(last_a.load(Ordering::SeqCst), 10);
        assert_eq!(last_b.load(Ordering::SeqCst), 1000);
        assert_eq!(plain.load(Ordering::SeqCst), 10, "plain events never coalesce");
        assert_eq!(c.pending_keys(), 0);
    }

    #[test]
    fn repost_from_inside_handler_works() {
        let el = EventLoop::new("edt");
        let c = Arc::new(Coalescer::new(el.handle()));
        let runs = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let r2 = Arc::clone(&runs);
        c.post("k", move || {
            r2.fetch_add(1, Ordering::SeqCst);
            let r3 = Arc::clone(&r2);
            c2.post("k", move || {
                r3.fetch_add(1, Ordering::SeqCst);
            });
        });
        el.run_until_idle();
        assert_eq!(runs.load(Ordering::SeqCst), 2);
    }
}
