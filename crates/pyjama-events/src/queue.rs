//! The blocking, priority-ordered event queue.
//!
//! Almost all traffic in practice is [`Priority::Normal`] (the default), for
//! which priority order degenerates to FIFO. The queue therefore runs a
//! plain `VecDeque` fast lane while every queued event is Normal, and only
//! falls back to the binary heap for the duration of a *mixed episode*: the
//! first non-Normal push migrates the pending fast-lane events into the heap
//! (keeping their sequence numbers, so ordering is unchanged), and once the
//! heap drains the queue reverts to the fast lane.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::event::{Event, Priority};

/// An observer notified whenever work arrives on (or the lifecycle of) an
/// [`EventQueue`] changes.
///
/// This is the hook behind the runtime's wake-driven `await` barrier: a
/// thread logically blocked in an await registers its parker here so an
/// event posted to its loop wakes it immediately, instead of being
/// discovered a poll quantum later. `wake` is called *after* the event is
/// visible to `try_pop`, and also on [`EventQueue::close`] so registered
/// observers re-check rather than sleep through shutdown. Implementations
/// must be cheap and must not call back into the queue.
pub trait QueueWaker: Send + Sync {
    /// A new event was enqueued, or the queue closed.
    fn wake(&self);
}

/// Queue entry ordering: priority first, then FIFO by sequence number.
struct Entry {
    priority: Priority,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority wins; within a priority, lower seq
        // (older) wins, so reverse the seq comparison.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Inner {
    /// FIFO fast lane, holding `(seq, event)` pairs. Non-empty only while
    /// `mixed` is false (i.e. every queued event is `Priority::Normal`).
    fifo: VecDeque<(u64, Event)>,
    /// Priority heap, used only during a mixed episode (`mixed` is true).
    heap: BinaryHeap<Entry>,
    /// True while a non-Normal event has been seen and the heap has not yet
    /// drained. Exactly one of `fifo`/`heap` is in use at a time.
    mixed: bool,
    next_seq: u64,
    closed: bool,
    wakers: Vec<(u64, Arc<dyn QueueWaker>)>,
    next_waker_id: u64,
}

impl Inner {
    /// Clones the registered wakers so they can be notified after the lock
    /// is released (a waker must never run under the queue lock).
    fn wakers_snapshot(&self) -> Vec<Arc<dyn QueueWaker>> {
        if self.wakers.is_empty() {
            Vec::new()
        } else {
            self.wakers.iter().map(|(_, w)| Arc::clone(w)).collect()
        }
    }

    /// Removes the next event in dispatch order from whichever lane is
    /// active, reverting to the fast lane once the heap drains.
    fn take_next(&mut self) -> Option<Event> {
        if self.mixed {
            let e = self.heap.pop().map(|e| e.event);
            if self.heap.is_empty() {
                self.mixed = false;
            }
            e
        } else {
            self.fifo.pop_front().map(|(_, e)| e)
        }
    }

    fn queued(&self) -> usize {
        self.fifo.len() + self.heap.len()
    }
}

/// A thread-safe event queue with priorities, blocking pop, and close.
///
/// Closing the queue wakes all blocked consumers; remaining events can still
/// be drained, after which `pop` returns `None`.
pub struct EventQueue {
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl EventQueue {
    /// Creates an empty, open queue.
    pub fn new() -> Self {
        EventQueue {
            inner: Mutex::new(Inner {
                fifo: VecDeque::new(),
                heap: BinaryHeap::new(),
                mixed: false,
                next_seq: 0,
                closed: false,
                wakers: Vec::new(),
                next_waker_id: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Enqueues an event. Returns `false` (dropping the event) if the queue
    /// is closed.
    pub fn push(&self, event: Event) -> bool {
        let mut g = self.inner.lock();
        if g.closed {
            return false;
        }
        let seq = g.next_seq;
        g.next_seq += 1;
        let priority = event.priority();
        if !g.mixed && priority == Priority::Normal {
            g.fifo.push_back((seq, event));
        } else {
            if !g.mixed {
                // First non-Normal event: begin a mixed episode. Migrate the
                // pending fast-lane events with their original sequence
                // numbers, so relative order is exactly what the heap alone
                // would have produced.
                g.mixed = true;
                let inner = &mut *g;
                for (s, e) in inner.fifo.drain(..) {
                    inner.heap.push(Entry {
                        priority: Priority::Normal,
                        seq: s,
                        event: e,
                    });
                }
            }
            g.heap.push(Entry {
                priority,
                seq,
                event,
            });
        }
        let wakers = g.wakers_snapshot();
        drop(g);
        self.cond.notify_one();
        for w in wakers {
            w.wake();
        }
        true
    }

    /// Removes the highest-priority event without blocking.
    pub fn try_pop(&self) -> Option<Event> {
        self.inner.lock().take_next()
    }

    /// Drains up to `max` events in dispatch order under a single lock
    /// acquisition, appending them to `out`. Returns the number taken.
    ///
    /// Batching amortises the lock handshake across events: a pump that
    /// would otherwise lock once per event locks once per batch. Order is
    /// identical to `max` consecutive [`try_pop`](Self::try_pop) calls.
    pub fn try_pop_batch(&self, max: usize, out: &mut Vec<Event>) -> usize {
        if max == 0 {
            return 0;
        }
        let mut g = self.inner.lock();
        let mut taken = 0;
        while taken < max {
            match g.take_next() {
                Some(e) => {
                    out.push(e);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }

    /// Blocks until an event is available or the queue is closed *and*
    /// drained, returning `None` in the latter case.
    pub fn pop(&self) -> Option<Event> {
        let mut g = self.inner.lock();
        loop {
            if let Some(e) = g.take_next() {
                return Some(e);
            }
            if g.closed {
                return None;
            }
            self.cond.wait(&mut g);
        }
    }

    /// Like [`pop`](Self::pop) but gives up at `deadline`.
    pub fn pop_until(&self, deadline: Instant) -> Option<Event> {
        let mut g = self.inner.lock();
        loop {
            if let Some(e) = g.take_next() {
                return Some(e);
            }
            if g.closed || Instant::now() >= deadline {
                return None;
            }
            self.cond.wait_until(&mut g, deadline);
        }
    }

    /// Like [`pop`](Self::pop) but waits at most `timeout`.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<Event> {
        self.pop_until(Instant::now() + timeout)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.inner.lock().queued()
    }

    /// True while the queue is running on the FIFO fast lane (no non-Normal
    /// event queued since the last time the heap drained). Exposed for tests
    /// and diagnostics; dispatch order does not depend on it.
    pub fn is_fast_path(&self) -> bool {
        !self.inner.lock().mixed
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes are rejected and blocked consumers
    /// wake up once the queue drains.
    pub fn close(&self) {
        let wakers = {
            let mut g = self.inner.lock();
            g.closed = true;
            g.wakers_snapshot()
        };
        self.cond.notify_all();
        for w in wakers {
            w.wake();
        }
    }

    /// Registers a waker to be notified on every subsequent push (and on
    /// close). Returns a token for [`remove_waker`](Self::remove_waker).
    ///
    /// Registration works on a closed queue too (the caller re-checks its
    /// own condition after registering, so no notification is lost either
    /// way). Tokens are never reused, so a stale deregistration is harmless.
    pub fn add_waker(&self, waker: Arc<dyn QueueWaker>) -> u64 {
        let mut g = self.inner.lock();
        let id = g.next_waker_id;
        g.next_waker_id += 1;
        g.wakers.push((id, waker));
        id
    }

    /// Removes a previously registered waker. Unknown tokens are ignored.
    pub fn remove_waker(&self, id: u64) {
        self.inner.lock().wakers.retain(|(i, _)| *i != id);
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn noop() -> Event {
        Event::new(|| {})
    }

    #[test]
    fn fifo_within_priority() {
        let q = EventQueue::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let order = Arc::clone(&order);
            q.push(Event::new(move || order.lock().push(i)));
        }
        while let Some(e) = q.try_pop() {
            e.dispatch();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn high_priority_jumps_queue() {
        let q = EventQueue::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        q.push(Event::new(move || o.lock().push("normal")));
        let o = Arc::clone(&order);
        q.push(Event::new(move || o.lock().push("high")).with_priority(Priority::High));
        let o = Arc::clone(&order);
        q.push(Event::new(move || o.lock().push("low")).with_priority(Priority::Low));
        while let Some(e) = q.try_pop() {
            e.dispatch();
        }
        assert_eq!(*order.lock(), vec!["high", "normal", "low"]);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(EventQueue::new());
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().is_some());
        std::thread::sleep(Duration::from_millis(10));
        q.push(noop());
        assert!(h.join().unwrap());
    }

    #[test]
    fn pop_timeout_expires() {
        let q = EventQueue::new();
        let t0 = Instant::now();
        assert!(q.pop_timeout(Duration::from_millis(20)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn close_rejects_push_and_wakes_poppers() {
        let q = Arc::new(EventQueue::new());
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(h.join().unwrap().is_none());
        assert!(!q.push(noop()));
    }

    #[test]
    fn close_allows_draining_remaining() {
        let q = EventQueue::new();
        q.push(noop());
        q.push(noop());
        q.close();
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn concurrent_producers_consumers_conserve_events() {
        let q = Arc::new(EventQueue::new());
        let dispatched = Arc::new(AtomicUsize::new(0));
        const N: usize = 2_000;
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let d = Arc::clone(&dispatched);
                std::thread::spawn(move || {
                    for _ in 0..N / 4 {
                        let d = Arc::clone(&d);
                        q.push(Event::new(move || {
                            d.fetch_add(1, Ordering::Relaxed);
                        }));
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    while let Some(e) = q.pop() {
                        e.dispatch();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        // Wait for drain, then close to release consumers.
        while !q.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(dispatched.load(Ordering::Relaxed), N);
    }

    struct CountingWaker(AtomicUsize);
    impl QueueWaker for CountingWaker {
        fn wake(&self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn waker_fires_on_push_and_close_not_after_removal() {
        let q = EventQueue::new();
        let w = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let id = q.add_waker(Arc::clone(&w) as Arc<dyn QueueWaker>);
        q.push(noop());
        q.push(noop());
        assert_eq!(w.0.load(Ordering::SeqCst), 2);
        q.remove_waker(id);
        q.push(noop());
        assert_eq!(w.0.load(Ordering::SeqCst), 2, "removed waker must not fire");

        let id2 = q.add_waker(Arc::clone(&w) as Arc<dyn QueueWaker>);
        q.close();
        assert_eq!(w.0.load(Ordering::SeqCst), 3, "close must wake observers");
        q.remove_waker(id2);
    }

    #[test]
    fn waker_tokens_are_independent() {
        let q = EventQueue::new();
        let a = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let b = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let ida = q.add_waker(Arc::clone(&a) as Arc<dyn QueueWaker>);
        let _idb = q.add_waker(Arc::clone(&b) as Arc<dyn QueueWaker>);
        q.remove_waker(ida);
        q.push(noop());
        assert_eq!(a.0.load(Ordering::SeqCst), 0);
        assert_eq!(b.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn mixed_episode_migrates_fast_lane_and_reverts_after_drain() {
        let q = EventQueue::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let o = Arc::clone(&order);
            q.push(Event::new(move || o.lock().push(i)));
        }
        assert!(q.is_fast_path(), "normal-only traffic stays on the fast lane");

        let o = Arc::clone(&order);
        q.push(Event::new(move || o.lock().push(99)).with_priority(Priority::High));
        assert!(!q.is_fast_path(), "a non-Normal push starts a mixed episode");
        for i in 3..5 {
            let o = Arc::clone(&order);
            q.push(Event::new(move || o.lock().push(i)));
        }
        assert_eq!(q.len(), 6);

        while let Some(e) = q.try_pop() {
            e.dispatch();
        }
        // The high event jumps the queue; the migrated fast-lane events and
        // the mid-episode normals keep their original FIFO order.
        assert_eq!(*order.lock(), vec![99, 0, 1, 2, 3, 4]);
        assert!(q.is_fast_path(), "draining the heap ends the episode");

        // Post-episode traffic is FIFO again without heap involvement.
        order.lock().clear();
        for i in 0..4 {
            let o = Arc::clone(&order);
            q.push(Event::new(move || o.lock().push(i)));
        }
        assert!(q.is_fast_path());
        while let Some(e) = q.try_pop() {
            e.dispatch();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn low_priority_alone_still_forces_heap_order() {
        let q = EventQueue::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        q.push(Event::new(move || o.lock().push("low")).with_priority(Priority::Low));
        assert!(!q.is_fast_path(), "Low is non-Normal and must use the heap");
        let o = Arc::clone(&order);
        q.push(Event::new(move || o.lock().push("normal")));
        while let Some(e) = q.try_pop() {
            e.dispatch();
        }
        assert_eq!(*order.lock(), vec!["normal", "low"]);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let q = EventQueue::new();
        assert!(q.is_empty());
        q.push(noop());
        q.push(noop());
        assert_eq!(q.len(), 2);
        q.try_pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn batch_pop_preserves_dispatch_order() {
        let q = EventQueue::new();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..5 {
            let o = Arc::clone(&order);
            q.push(Event::new(move || o.lock().push(i)));
        }
        let mut batch = Vec::new();
        assert_eq!(q.try_pop_batch(3, &mut batch), 3);
        assert_eq!(q.try_pop_batch(10, &mut batch), 2);
        assert_eq!(q.try_pop_batch(1, &mut batch), 0, "drained");
        for e in batch {
            e.dispatch();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn batch_pop_respects_priority_lanes() {
        let q = EventQueue::new();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        q.push(Event::new(move || o.lock().push("normal")));
        let o = Arc::clone(&order);
        q.push(Event::new(move || o.lock().push("high")).with_priority(Priority::High));
        let mut batch = Vec::new();
        assert_eq!(q.try_pop_batch(8, &mut batch), 2);
        for e in batch {
            e.dispatch();
        }
        assert_eq!(*order.lock(), vec!["high", "normal"]);
    }
}
