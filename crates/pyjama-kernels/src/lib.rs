//! Computational kernels from the Java Grande Forum benchmark suite.
//!
//! The paper's GUI evaluation (§V-A) simulates "time-consuming computational
//! work within event handlers" with four JGF kernels, chosen because each
//! "can be parallelized by using traditional OpenMP directives":
//!
//! * [`crypt`] — IDEA block-cipher encryption/decryption over a byte array.
//! * [`series`] — Fourier coefficients of `(x+1)^x` over `[0, 2]`.
//! * [`montecarlo`] — Monte-Carlo simulation of geometric-Brownian-motion
//!   price paths (a simplified stand-in for JGF's historical-data variant:
//!   same shape — many independent stochastic paths, then aggregation).
//! * [`raytracer`] — a sphere-scene ray tracer with shadows and reflections.
//!
//! Every kernel has a sequential entry point and an `omp`-parallel one built
//! on [`pyjama_omp`], and both produce **bit-identical results** so the
//! parallel versions validate against the sequential ones (the JGF suite's
//! own validation discipline). Determinism is preserved under any schedule
//! by making each parallel unit (block, coefficient, path, scanline) a pure
//! function of its index, written into its own output slot.
//!
//! [`workload::Workload`] wraps the four kernels behind one
//! interface for the benchmark harnesses, with sizes scaled to
//! event-handler-like durations (the paper's point is that "even
//! computations lasting only a few hundred milliseconds demand concurrency").

pub mod crypt;
pub mod montecarlo;
pub mod raytracer;
pub mod series;
pub mod vec3;
pub mod workload;

pub use workload::{KernelKind, Workload};
