//! JGF RayTracer: renders a sphere scene with shadows and reflections.
//!
//! The JGF kernel renders 64 spheres at N×N and validates a pixel checksum.
//! This implementation builds a deterministic procedural scene of spheres
//! over a ground plane, one point light, Phong shading, hard shadows and
//! recursive reflections. Scanlines are the parallel dimension — each row
//! is written to its own slice, so parallel rendering is bit-identical to
//! sequential.

use pyjama_omp::{parallel, Schedule};

use crate::vec3::Vec3;

/// Surface material.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Material {
    /// Diffuse colour (RGB in `[0,1]`).
    pub color: Vec3,
    /// Specular highlight strength.
    pub specular: f64,
    /// Phong exponent.
    pub shininess: f64,
    /// Mirror reflectivity in `[0,1]`.
    pub reflect: f64,
}

/// A sphere primitive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sphere {
    /// Centre.
    pub center: Vec3,
    /// Radius.
    pub radius: f64,
    /// Surface material.
    pub material: Material,
}

/// A renderable scene.
#[derive(Clone, Debug)]
pub struct Scene {
    /// All spheres.
    pub spheres: Vec<Sphere>,
    /// Point-light position.
    pub light: Vec3,
    /// Camera origin.
    pub eye: Vec3,
    /// Background colour.
    pub background: Vec3,
    /// Maximum reflection bounces.
    pub max_depth: u32,
}

impl Scene {
    /// The benchmark scene: a deterministic grid of spheres with varying
    /// materials above a large "ground" sphere.
    pub fn benchmark(n_spheres: usize) -> Self {
        let mut spheres = Vec::with_capacity(n_spheres + 1);
        // Ground: an enormous sphere acting as a plane.
        spheres.push(Sphere {
            center: Vec3::new(0.0, -10_004.0, -20.0),
            radius: 10_000.0,
            material: Material {
                color: Vec3::new(0.4, 0.4, 0.4),
                specular: 0.0,
                shininess: 1.0,
                reflect: 0.05,
            },
        });
        for i in 0..n_spheres {
            let fi = i as f64;
            let row = (i / 8) as f64;
            let col = (i % 8) as f64;
            spheres.push(Sphere {
                center: Vec3::new(
                    -7.0 + col * 2.0,
                    -2.0 + row * 2.0 + 0.3 * (fi * 1.7).sin(),
                    -18.0 - 2.0 * (fi * 0.9).cos(),
                ),
                radius: 0.7 + 0.25 * ((fi * 2.3).sin() * 0.5 + 0.5),
                material: Material {
                    color: Vec3::new(
                        0.5 + 0.5 * (fi * 0.7).sin().abs(),
                        0.5 + 0.5 * (fi * 1.1).cos().abs(),
                        0.5 + 0.5 * (fi * 1.9).sin().abs(),
                    ),
                    specular: 0.6,
                    shininess: 32.0,
                    reflect: if i % 3 == 0 { 0.4 } else { 0.1 },
                },
            });
        }
        Scene {
            spheres,
            light: Vec3::new(10.0, 20.0, 10.0),
            eye: Vec3::ZERO,
            background: Vec3::new(0.1, 0.15, 0.3),
            max_depth: 3,
        }
    }

    /// Nearest intersection of ray `origin + t·dir` with any sphere.
    fn intersect(&self, origin: Vec3, dir: Vec3) -> Option<(f64, &Sphere)> {
        let mut best: Option<(f64, &Sphere)> = None;
        for s in &self.spheres {
            if let Some(t) = intersect_sphere(origin, dir, s) {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, s));
                }
            }
        }
        best
    }

    /// Traces one ray to a colour.
    fn trace(&self, origin: Vec3, dir: Vec3, depth: u32) -> Vec3 {
        let Some((t, sphere)) = self.intersect(origin, dir) else {
            return self.background;
        };
        let hit = origin + dir * t;
        let normal = (hit - sphere.center).normalized();
        let to_light = (self.light - hit).normalized();
        let m = sphere.material;

        // Ambient.
        let mut color = m.color * 0.1;

        // Shadow test: offset along the normal to dodge self-intersection.
        let shadow_origin = hit + normal * 1e-4;
        let light_dist = (self.light - hit).len();
        let lit = match self.intersect(shadow_origin, to_light) {
            Some((ts, _)) => ts > light_dist,
            None => true,
        };
        if lit {
            let diff = normal.dot(to_light).max(0.0);
            color = color + m.color * (0.8 * diff);
            if m.specular > 0.0 {
                let refl = (-to_light).reflect(normal);
                let spec = refl.dot(dir.normalized()).max(0.0).powf(m.shininess);
                color = color + Vec3::new(1.0, 1.0, 1.0) * (m.specular * spec);
            }
        }
        if m.reflect > 0.0 && depth < self.max_depth {
            let rdir = dir.reflect(normal).normalized();
            let rcol = self.trace(hit + normal * 1e-4, rdir, depth + 1);
            color = color + rcol * m.reflect;
        }
        color.clamp01()
    }

    /// Renders pixel `(x, y)` of an `n × n` image to packed RGB bytes.
    pub fn render_pixel(&self, x: usize, y: usize, n: usize) -> [u8; 3] {
        let fov = std::f64::consts::FRAC_PI_3; // 60°
        let scale = (fov / 2.0).tan();
        let px = (2.0 * (x as f64 + 0.5) / n as f64 - 1.0) * scale;
        let py = (1.0 - 2.0 * (y as f64 + 0.5) / n as f64) * scale;
        let dir = Vec3::new(px, py, -1.0).normalized();
        let c = self.trace(self.eye, dir, 0);
        [
            (c.x * 255.0).round() as u8,
            (c.y * 255.0).round() as u8,
            (c.z * 255.0).round() as u8,
        ]
    }
}

fn intersect_sphere(origin: Vec3, dir: Vec3, s: &Sphere) -> Option<f64> {
    let oc = origin - s.center;
    let a = dir.dot(dir);
    let b = 2.0 * oc.dot(dir);
    let c = oc.dot(oc) - s.radius * s.radius;
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let t1 = (-b - sq) / (2.0 * a);
    let t2 = (-b + sq) / (2.0 * a);
    if t1 > 1e-6 {
        Some(t1)
    } else if t2 > 1e-6 {
        Some(t2)
    } else {
        None
    }
}

/// Renders the benchmark scene at `n × n`, sequentially. Returns RGB bytes.
pub fn render_seq(scene: &Scene, n: usize) -> Vec<u8> {
    let mut img = vec![0u8; n * n * 3];
    for y in 0..n {
        render_row(scene, y, n, &mut img[y * n * 3..(y + 1) * n * 3]);
    }
    img
}

fn render_row(scene: &Scene, y: usize, n: usize, row: &mut [u8]) {
    for x in 0..n {
        let px = scene.render_pixel(x, y, n);
        row[x * 3..x * 3 + 3].copy_from_slice(&px);
    }
}

/// Renders in parallel: scanlines workshared dynamically (rows near the
/// spheres cost more than background rows — exactly the irregular load that
/// motivates non-static schedules).
pub fn render_par(scene: &Scene, n: usize, num_threads: usize) -> Vec<u8> {
    let mut img = vec![0u8; n * n * 3];
    {
        struct Row(*mut u8, usize);
        unsafe impl Send for Row {}
        unsafe impl Sync for Row {}
        let rows: Vec<Row> = img
            .chunks_mut(n * 3)
            .map(|r| Row(r.as_mut_ptr(), r.len()))
            .collect();
        let rows = &rows;
        parallel(num_threads, |ctx| {
            ctx.for_range_nowait(0..n, Schedule::Dynamic { chunk: 2 }, |y| {
                // SAFETY: row y is written by exactly one iteration.
                let row = unsafe { std::slice::from_raw_parts_mut(rows[y].0, rows[y].1) };
                render_row(scene, y, n, row);
            });
        });
    }
    img
}

/// FNV-1a checksum of the image (JGF validates a pixel checksum).
pub fn checksum(img: &[u8]) -> u64 {
    crate::crypt::checksum(img)
}

/// Full kernel entry point: render `n × n` with 32 spheres, sanity-check,
/// return the checksum.
pub fn kernel(n: usize, num_threads: Option<usize>) -> u64 {
    let scene = Scene::benchmark(32);
    let img = match num_threads {
        None => render_seq(&scene, n),
        Some(t) => render_par(&scene, n, t),
    };
    validate(&img);
    checksum(&img)
}

/// The image must not be a constant field: spheres, shadows and background
/// produce variation.
pub fn validate(img: &[u8]) {
    let first = img[0];
    assert!(
        img.iter().any(|&b| b != first),
        "rendered image is uniform — tracing produced nothing"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_intersection_hits_and_misses() {
        let s = Sphere {
            center: Vec3::new(0.0, 0.0, -5.0),
            radius: 1.0,
            material: Material {
                color: Vec3::ZERO,
                specular: 0.0,
                shininess: 1.0,
                reflect: 0.0,
            },
        };
        let hit = intersect_sphere(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0), &s);
        assert!((hit.unwrap() - 4.0).abs() < 1e-9);
        let miss = intersect_sphere(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0), &s);
        assert!(miss.is_none());
    }

    #[test]
    fn intersection_from_inside_returns_far_root() {
        let s = Sphere {
            center: Vec3::ZERO,
            radius: 2.0,
            material: Material {
                color: Vec3::ZERO,
                specular: 0.0,
                shininess: 1.0,
                reflect: 0.0,
            },
        };
        let t = intersect_sphere(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), &s).unwrap();
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn image_has_structure() {
        let scene = Scene::benchmark(8);
        let img = render_seq(&scene, 32);
        validate(&img);
        assert_eq!(img.len(), 32 * 32 * 3);
    }

    #[test]
    fn parallel_render_bit_identical() {
        let scene = Scene::benchmark(16);
        let s = render_seq(&scene, 48);
        let p = render_par(&scene, 48, 4);
        assert_eq!(s, p);
    }

    #[test]
    fn kernel_checksums_agree() {
        assert_eq!(kernel(32, None), kernel(32, Some(3)));
    }

    #[test]
    fn more_spheres_change_the_image() {
        let a = render_seq(&Scene::benchmark(4), 32);
        let b = render_seq(&Scene::benchmark(24), 32);
        assert_ne!(a, b);
    }

    #[test]
    fn deeper_reflections_change_the_image() {
        let mut scene = Scene::benchmark(16);
        let shallow = {
            scene.max_depth = 0;
            render_seq(&scene, 32)
        };
        let deep = {
            scene.max_depth = 3;
            render_seq(&scene, 32)
        };
        assert_ne!(shallow, deep);
    }
}
