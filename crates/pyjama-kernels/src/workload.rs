//! One interface over the four kernels, sized for event handlers.
//!
//! The benchmark harness binds each GUI/HTTP event to one kernel execution
//! (§V-A: "for each benchmark, the event is bound with an execution of its
//! kernel"). [`Workload`] carries the kernel choice and a problem size;
//! [`Workload::run`] executes it sequentially or with an `omp parallel`
//! team.

use crate::{crypt, montecarlo, raytracer, series};

/// Which Java Grande kernel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// IDEA encryption over a byte buffer.
    Crypt,
    /// Fourier coefficients of `(x+1)^x`.
    Series,
    /// Monte-Carlo GBM path simulation.
    MonteCarlo,
    /// Sphere-scene ray tracing.
    RayTracer,
}

impl KernelKind {
    /// All four kernels, in the paper's order.
    pub const ALL: [KernelKind; 4] = [
        KernelKind::Crypt,
        KernelKind::Series,
        KernelKind::MonteCarlo,
        KernelKind::RayTracer,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Crypt => "Crypt",
            KernelKind::Series => "Series",
            KernelKind::MonteCarlo => "MonteCarlo",
            KernelKind::RayTracer => "RayTracer",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A sized kernel execution: the unit of work one event handler performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Workload {
    /// The kernel.
    pub kind: KernelKind,
    /// Kernel-specific size (bytes, coefficients, paths, or image side).
    pub size: usize,
}

impl Workload {
    /// Creates a workload.
    pub const fn new(kind: KernelKind, size: usize) -> Self {
        Workload { kind, size }
    }

    /// A size tuned so one sequential execution takes on the order of a few
    /// milliseconds on commodity hardware — scaled-down stand-ins for the
    /// paper's "a few hundred milliseconds" handlers, keeping full benchmark
    /// sweeps tractable.
    pub fn event_sized(kind: KernelKind) -> Self {
        match kind {
            KernelKind::Crypt => Workload::new(kind, 96 * 1024),
            KernelKind::Series => Workload::new(kind, 48),
            KernelKind::MonteCarlo => Workload::new(kind, 1_500),
            KernelKind::RayTracer => Workload::new(kind, 48),
        }
    }

    /// A size tuned so one sequential execution takes ≈20 ms on commodity
    /// hardware — the scale of the paper's "computations lasting only a
    /// few hundred milliseconds", shrunk ~10× so full sweeps stay fast.
    /// At 10–100 requests/sec (the paper's load axis) this puts the
    /// sequential EDT's utilisation between 0.2 and 2.0, which is what
    /// makes its response time explode mid-sweep (Figure 7's shape).
    pub fn handler_sized(kind: KernelKind) -> Self {
        match kind {
            KernelKind::Crypt => Workload::new(kind, 1024 * 1024),
            KernelKind::Series => Workload::new(kind, 420),
            KernelKind::MonteCarlo => Workload::new(kind, 2_200),
            KernelKind::RayTracer => Workload::new(kind, 220),
        }
    }

    /// A deliberately small size for unit tests.
    pub fn tiny(kind: KernelKind) -> Self {
        match kind {
            KernelKind::Crypt => Workload::new(kind, 1024),
            KernelKind::Series => Workload::new(kind, 6),
            KernelKind::MonteCarlo => Workload::new(kind, 64),
            KernelKind::RayTracer => Workload::new(kind, 16),
        }
    }

    /// Executes the kernel: sequential when `num_threads` is `None`, else
    /// inside an `omp parallel` team of that size. Returns the kernel's
    /// validation checksum.
    pub fn run(&self, num_threads: Option<usize>) -> u64 {
        match self.kind {
            KernelKind::Crypt => crypt::kernel(self.size, num_threads),
            KernelKind::Series => series::kernel(self.size, num_threads),
            KernelKind::MonteCarlo => montecarlo::kernel(self.size, num_threads),
            KernelKind::RayTracer => raytracer::kernel(self.size, num_threads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_runs_and_is_schedule_independent() {
        for kind in KernelKind::ALL {
            let w = Workload::tiny(kind);
            let seq = w.run(None);
            let par = w.run(Some(3));
            assert_eq!(seq, par, "{kind}: parallel checksum diverged");
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = KernelKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["Crypt", "Series", "MonteCarlo", "RayTracer"]);
    }

    #[test]
    fn size_changes_output() {
        let a = Workload::new(KernelKind::Crypt, 1024).run(None);
        let b = Workload::new(KernelKind::Crypt, 2048).run(None);
        assert_ne!(a, b);
    }

    #[test]
    fn event_sized_workloads_complete_quickly() {
        for kind in KernelKind::ALL {
            let w = Workload::event_sized(kind);
            let t0 = std::time::Instant::now();
            w.run(None);
            let dt = t0.elapsed();
            assert!(
                dt < std::time::Duration::from_secs(2),
                "{kind} took {dt:?} — too slow for an event-sized workload"
            );
        }
    }
}
