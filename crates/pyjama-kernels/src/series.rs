//! JGF Series: Fourier coefficients of `f(x) = (x+1)^x` over `[0, 2]`.
//!
//! Computes the first `n` coefficient pairs `(a_k, b_k)` with
//!
//! ```text
//! a_k = ∫₀² f(x)·cos(kπx) dx      b_k = ∫₀² f(x)·sin(kπx) dx
//! ```
//!
//! by trapezoid integration with 1000 sample points, exactly as the Java
//! Grande `Series` kernel does. The loop over coefficients is the
//! parallelisable dimension: each `(a_k, b_k)` is independent and lands in
//! its own output slot, so sequential and parallel runs are bit-identical.

use pyjama_omp::{parallel_for, Schedule};

/// Integration sample count (matches JGF).
const INTERVALS: usize = 1000;

/// The function whose Fourier series is computed.
#[inline]
fn thefunction(x: f64) -> f64 {
    (x + 1.0).powf(x)
}

/// Trapezoid rule for `f(x)·trig(omega_n·x)` over `[a, b]`.
///
/// `select`: 0 = no trig factor, 1 = cosine, 2 = sine (JGF's encoding).
fn trapezoid_integrate(a: f64, b: f64, n: usize, omega_n: f64, select: u8) -> f64 {
    let dx = (b - a) / n as f64;
    let mut x = a;
    let weigh = |x: f64| -> f64 {
        let fx = thefunction(x);
        match select {
            0 => fx,
            1 => fx * (omega_n * x).cos(),
            2 => fx * (omega_n * x).sin(),
            _ => unreachable!("select ∈ {{0,1,2}}"),
        }
    };
    let mut rvalue = weigh(x) / 2.0;
    // Replicates the Java Grande loop exactly, including its quirk of
    // sampling only n-2 interior points (`--nsteps; while (--nsteps > 0)`),
    // so our coefficients match the published JGF validation values.
    for _ in 2..n {
        x += dx;
        rvalue += weigh(x);
    }
    rvalue += weigh(b) / 2.0;
    rvalue * dx
}

/// Computes coefficient pair `k` (with `k = 0` holding `(a_0/2, 0)` as in
/// JGF's `TestArray`).
pub fn coefficient_pair(k: usize) -> (f64, f64) {
    let omega = std::f64::consts::PI;
    if k == 0 {
        (trapezoid_integrate(0.0, 2.0, INTERVALS, 0.0, 0) / 2.0, 0.0)
    } else {
        let w = omega * k as f64;
        (
            trapezoid_integrate(0.0, 2.0, INTERVALS, w, 1),
            trapezoid_integrate(0.0, 2.0, INTERVALS, w, 2),
        )
    }
}

/// Sequential kernel: the first `n` coefficient pairs.
pub fn series_seq(n: usize) -> Vec<(f64, f64)> {
    (0..n).map(coefficient_pair).collect()
}

/// Parallel kernel: worksharing over coefficients (dynamic schedule — the
/// `k = 0` pair costs one integral, the rest two).
pub fn series_par(n: usize, num_threads: usize) -> Vec<(f64, f64)> {
    let mut out = vec![(0.0f64, 0.0f64); n];
    {
        let slots: Vec<parking_lot_free::Slot> = out
            .iter_mut()
            .map(|p| parking_lot_free::Slot(p as *mut (f64, f64)))
            .collect();
        let slots = &slots;
        parallel_for(num_threads, 0..n, Schedule::Dynamic { chunk: 4 }, move |k| {
            // SAFETY: slot k is written by exactly one iteration.
            let p = slots[k].0;
            unsafe { *p = coefficient_pair(k) };
        });
    }
    out
}

/// Tiny helper giving raw output-slot pointers `Send`/`Sync`; sound because
/// the worksharing loop assigns each index to exactly one thread.
mod parking_lot_free {
    pub(super) struct Slot(pub *mut (f64, f64));
    unsafe impl Send for Slot {}
    unsafe impl Sync for Slot {}
}

/// Checksum used by the harness: quantised so it is schedule-independent.
pub fn checksum(coeffs: &[(f64, f64)]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &(a, b) in coeffs {
        for v in [a, b] {
            let q = (v * 1e9).round() as i64;
            for byte in q.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
    }
    h
}

/// Full kernel entry point: compute `n` pairs, validate the leading
/// coefficients, return the checksum.
pub fn kernel(n: usize, num_threads: Option<usize>) -> u64 {
    let coeffs = match num_threads {
        None => series_seq(n),
        Some(t) => series_par(n, t),
    };
    validate(&coeffs);
    checksum(&coeffs)
}

/// Reference values for the first four coefficients (JGF validation data).
const REFERENCE: [(f64, f64); 4] = [
    (2.8729524964837996, 0.0),
    (1.1161046676147888, -1.8819691893398025),
    (0.34429060398168704, -1.1645642623320958),
    (0.15238898702519288, -0.8143461113044298),
];

/// Asserts the leading coefficients match the JGF reference values.
pub fn validate(coeffs: &[(f64, f64)]) {
    for (i, &(ra, rb)) in REFERENCE.iter().enumerate().take(coeffs.len()) {
        let (a, b) = coeffs[i];
        assert!(
            (a - ra).abs() < 1e-6 && (b - rb).abs() < 1e-6,
            "coefficient {i} failed validation: got ({a}, {b}), want ({ra}, {rb})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_coefficients_match_jgf_reference() {
        let c = series_seq(4);
        validate(&c);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let s = series_seq(32);
        let p = series_par(32, 4);
        assert_eq!(s.len(), p.len());
        for (i, (a, b)) in s.iter().zip(&p).enumerate() {
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "a_{i}");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "b_{i}");
        }
    }

    #[test]
    fn kernel_checksums_agree() {
        assert_eq!(kernel(16, None), kernel(16, Some(3)));
    }

    #[test]
    fn coefficients_decay() {
        // Fourier coefficients of a smooth function must decay.
        let c = series_seq(20);
        let early = c[1].0.abs() + c[1].1.abs();
        let late = c[19].0.abs() + c[19].1.abs();
        assert!(late < early, "coefficients should decay: {early} vs {late}");
    }

    #[test]
    fn zero_pairs_is_empty() {
        assert!(series_seq(0).is_empty());
        assert!(series_par(0, 2).is_empty());
    }

    #[test]
    fn checksum_quantisation_tolerates_tiny_noise() {
        let a = vec![(1.0, 2.0)];
        let b = vec![(1.0 + 1e-13, 2.0 - 1e-13)];
        assert_eq!(checksum(&a), checksum(&b));
    }
}
