//! Minimal 3-vector math for the ray tracer.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-component `f64` vector.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// Constructs from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    pub fn len(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction (zero stays zero).
    pub fn normalized(self) -> Vec3 {
        let l = self.len();
        if l == 0.0 {
            Vec3::ZERO
        } else {
            self / l
        }
    }

    /// Component-wise product (used for colour modulation).
    pub fn hadamard(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Reflection of `self` about unit normal `n`.
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self - n * (2.0 * self.dot(n))
    }

    /// Clamps each component to `[0, 1]`.
    pub fn clamp01(self) -> Vec3 {
        Vec3::new(self.x.clamp(0.0, 1.0), self.y.clamp(0.0, 1.0), self.z.clamp(0.0, 1.0))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross_basics() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(x), -z);
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!((v.len() - 5.0).abs() < 1e-12);
        assert!((v.normalized().len() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn reflection_preserves_length_and_inverts_normal_component() {
        let d = Vec3::new(1.0, -1.0, 0.0).normalized();
        let n = Vec3::new(0.0, 1.0, 0.0);
        let r = d.reflect(n);
        assert!((r.len() - 1.0).abs() < 1e-12);
        assert!((r.y - (-d.y)).abs() < 1e-12);
        assert!((r.x - d.x).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(a.hadamard(b), Vec3::new(4.0, 10.0, 18.0));
    }

    #[test]
    fn clamp01_bounds_components() {
        let v = Vec3::new(-0.5, 0.5, 1.5).clamp01();
        assert_eq!(v, Vec3::new(0.0, 0.5, 1.0));
    }
}
