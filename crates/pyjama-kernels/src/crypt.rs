//! JGF Crypt: IDEA (International Data Encryption Algorithm) over a byte
//! array — encrypt, then decrypt, then verify round-trip.
//!
//! IDEA operates on 64-bit blocks with 16-bit lanes and three group
//! operations: XOR, addition mod 2^16, multiplication mod 2^16+1 (with 0
//! standing for 2^16). 8.5 rounds, 52 encryption subkeys derived from a
//! 128-bit user key by 25-bit rotation; decryption subkeys are the
//! multiplicative/additive inverses in reverse layout.

use pyjama_omp::{parallel_for, Schedule};

/// Number of 16-bit subkeys.
const KEYS: usize = 52;
/// Bytes per IDEA block.
pub const BLOCK: usize = 8;

/// An IDEA key pair: encryption and decryption subkeys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdeaKey {
    enc: [u16; KEYS],
    dec: [u16; KEYS],
}

/// Multiplication in the group Z*_{65537}, where 0 represents 65536.
#[inline]
fn mul(a: u16, b: u16) -> u16 {
    let a = a as u32;
    let b = b as u32;
    if a == 0 {
        // 65536 * b ≡ -b ≡ 65537 - b (mod 65537)
        (0x10001 - b) as u16
    } else if b == 0 {
        (0x10001 - a) as u16
    } else {
        let p = a * b;
        let hi = p >> 16;
        let lo = p & 0xFFFF;
        if lo >= hi {
            (lo - hi) as u16
        } else {
            (lo.wrapping_sub(hi).wrapping_add(0x10001)) as u16
        }
    }
}

/// Multiplicative inverse in Z*_{65537} (0 stands for 65536). `inv(0) = 0`
/// and `inv(1) = 1` by the group's conventions.
fn inv(x: u16) -> u16 {
    if x <= 1 {
        return x; // 0 and 1 are self-inverse under the representation
    }
    // Extended Euclid on (65537, x).
    let modulus: i64 = 0x10001;
    let mut t0: i64 = 0;
    let mut t1: i64 = 1;
    let mut r0: i64 = modulus;
    let mut r1: i64 = x as i64;
    while r1 != 0 {
        let q = r0 / r1;
        (t0, t1) = (t1, t0 - q * t1);
        (r0, r1) = (r1, r0 - q * r1);
    }
    debug_assert_eq!(r0, 1, "65537 is prime; gcd must be 1");
    (t0.rem_euclid(modulus)) as u16
}

impl IdeaKey {
    /// Expands a 128-bit user key into encryption and decryption schedules.
    pub fn new(user_key: [u16; 8]) -> Self {
        let enc = Self::expand(user_key);
        let dec = Self::invert(&enc);
        IdeaKey { enc, dec }
    }

    /// A fixed key for reproducible benchmarks (JGF uses a generated key;
    /// any key exercises the same arithmetic).
    pub fn benchmark_key() -> Self {
        Self::new([0x0102, 0x0304, 0x0506, 0x0708, 0x090a, 0x0b0c, 0x0d0e, 0x0f10])
    }

    fn expand(user: [u16; 8]) -> [u16; KEYS] {
        // Each successive group of 8 subkeys is the 128-bit key rotated
        // left by a further 25 bits (canonical IDEA schedule).
        let mut z = [0u16; KEYS];
        z[..8].copy_from_slice(&user);
        for j in 8..KEYS {
            let i = j % 8;
            z[j] = if i < 6 {
                (z[j - 7] << 9) | (z[j - 6] >> 7)
            } else if i == 6 {
                (z[j - 7] << 9) | (z[j - 14] >> 7)
            } else {
                (z[j - 15] << 9) | (z[j - 14] >> 7)
            };
        }
        z
    }

    fn invert(e: &[u16; KEYS]) -> [u16; KEYS] {
        // Decryption subkeys are the encryption subkeys' group inverses,
        // laid out in reverse round order; the two inner additive keys swap
        // in all but the boundary groups.
        let mut d = [0u16; KEYS];
        let mut p = KEYS; // write position, descending
        let mut k = 0; // read position, ascending

        let (t1, t2, t3, t4) = (
            inv(e[k]),
            e[k + 1].wrapping_neg(),
            e[k + 2].wrapping_neg(),
            inv(e[k + 3]),
        );
        k += 4;
        d[p - 1] = t4;
        d[p - 2] = t3;
        d[p - 3] = t2;
        d[p - 4] = t1;
        p -= 4;

        for round in 0..8 {
            d[p - 1] = e[k + 1];
            d[p - 2] = e[k];
            p -= 2;
            k += 2;
            let (t1, t2, t3, t4) = (
                inv(e[k]),
                e[k + 1].wrapping_neg(),
                e[k + 2].wrapping_neg(),
                inv(e[k + 3]),
            );
            k += 4;
            d[p - 1] = t4;
            if round < 7 {
                d[p - 2] = t2; // swapped
                d[p - 3] = t3;
            } else {
                d[p - 2] = t3;
                d[p - 3] = t2;
            }
            d[p - 4] = t1;
            p -= 4;
        }
        debug_assert_eq!(p, 0);
        debug_assert_eq!(k, KEYS);
        d
    }

    /// The encryption schedule.
    pub fn encryption_schedule(&self) -> &[u16; KEYS] {
        &self.enc
    }

    /// The decryption schedule.
    pub fn decryption_schedule(&self) -> &[u16; KEYS] {
        &self.dec
    }
}

/// Transforms one 8-byte block in place with the given 52-subkey schedule.
fn cipher_block(block: &mut [u8], z: &[u16; KEYS]) {
    debug_assert_eq!(block.len(), BLOCK);
    let mut x1 = u16::from_be_bytes([block[0], block[1]]);
    let mut x2 = u16::from_be_bytes([block[2], block[3]]);
    let mut x3 = u16::from_be_bytes([block[4], block[5]]);
    let mut x4 = u16::from_be_bytes([block[6], block[7]]);

    let mut k = 0;
    for _round in 0..8 {
        x1 = mul(x1, z[k]);
        x2 = x2.wrapping_add(z[k + 1]);
        x3 = x3.wrapping_add(z[k + 2]);
        x4 = mul(x4, z[k + 3]);

        let t2 = x1 ^ x3;
        let t2 = mul(t2, z[k + 4]);
        let t1 = t2.wrapping_add(x2 ^ x4);
        let t1 = mul(t1, z[k + 5]);
        let t2 = t1.wrapping_add(t2);

        x1 ^= t1;
        x4 ^= t2;
        let tmp = x2 ^ t2;
        x2 = x3 ^ t1;
        x3 = tmp;
        k += 6;
    }
    // Output transform.
    let y1 = mul(x1, z[k]);
    let y2 = x3.wrapping_add(z[k + 1]);
    let y3 = x2.wrapping_add(z[k + 2]);
    let y4 = mul(x4, z[k + 3]);

    block[0..2].copy_from_slice(&y1.to_be_bytes());
    block[2..4].copy_from_slice(&y2.to_be_bytes());
    block[4..6].copy_from_slice(&y3.to_be_bytes());
    block[6..8].copy_from_slice(&y4.to_be_bytes());
}

/// Encrypts `data` in place, sequentially. Length must be a multiple of 8.
pub fn encrypt_seq(key: &IdeaKey, data: &mut [u8]) {
    run_seq(&key.enc, data)
}

/// Decrypts `data` in place, sequentially.
pub fn decrypt_seq(key: &IdeaKey, data: &mut [u8]) {
    run_seq(&key.dec, data)
}

fn run_seq(z: &[u16; KEYS], data: &mut [u8]) {
    assert_eq!(data.len() % BLOCK, 0, "data must be block aligned");
    for block in data.chunks_mut(BLOCK) {
        cipher_block(block, z);
    }
}

/// Encrypts `data` in place with an `omp parallel for` over blocks.
pub fn encrypt_par(key: &IdeaKey, data: &mut [u8], num_threads: usize) {
    run_par(&key.enc, data, num_threads)
}

/// Decrypts `data` in place in parallel.
pub fn decrypt_par(key: &IdeaKey, data: &mut [u8], num_threads: usize) {
    run_par(&key.dec, data, num_threads)
}

fn run_par(z: &[u16; KEYS], data: &mut [u8], num_threads: usize) {
    assert_eq!(data.len() % BLOCK, 0, "data must be block aligned");
    let nblocks = data.len() / BLOCK;
    // Each 8-byte block is an independent unit; hand each iteration a raw
    // pointer to its own block so the workshared loop can mutate disjoint
    // chunks without aliasing.
    struct BlockPtr(*mut u8);
    unsafe impl Send for BlockPtr {}
    unsafe impl Sync for BlockPtr {}
    let blocks: Vec<BlockPtr> = data.chunks_mut(BLOCK).map(|b| BlockPtr(b.as_mut_ptr())).collect();
    let blocks = &blocks;
    parallel_for(num_threads, 0..nblocks, Schedule::Static { chunk: None }, move |b| {
        // SAFETY: every index is assigned to exactly one thread and touches
        // only its own block.
        let ptr = blocks[b].0;
        let block = unsafe { std::slice::from_raw_parts_mut(ptr, BLOCK) };
        cipher_block(block, z);
    });
}

/// Deterministic pseudo-random plaintext of `len` bytes (block aligned).
pub fn make_plaintext(len: usize) -> Vec<u8> {
    assert_eq!(len % BLOCK, 0);
    // xorshift64*: cheap, reproducible, dependency-free.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut v = Vec::with_capacity(len);
    while v.len() < len {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let x = state.wrapping_mul(0x2545F4914F6CDD1D);
        v.extend_from_slice(&x.to_le_bytes());
    }
    v.truncate(len);
    v
}

/// FNV-1a checksum used to compare kernel outputs.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The full JGF Crypt kernel: encrypt `size` bytes, decrypt, validate the
/// round-trip, and return the ciphertext checksum.
pub fn kernel(size: usize, num_threads: Option<usize>) -> u64 {
    let key = IdeaKey::benchmark_key();
    let original = make_plaintext(size);
    let mut data = original.clone();
    match num_threads {
        None => encrypt_seq(&key, &mut data),
        Some(t) => encrypt_par(&key, &mut data, t),
    }
    let cipher_sum = checksum(&data);
    match num_threads {
        None => decrypt_seq(&key, &mut data),
        Some(t) => decrypt_par(&key, &mut data, t),
    }
    assert_eq!(data, original, "IDEA round-trip failed validation");
    cipher_sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_matches_group_definition() {
        // Brute-check against the mathematical definition on a sample.
        let golden = |a: u16, b: u16| -> u16 {
            let aa: u64 = if a == 0 { 0x10000 } else { a as u64 };
            let bb: u64 = if b == 0 { 0x10000 } else { b as u64 };
            let m = (aa * bb) % 0x10001;
            if m == 0x10000 {
                0
            } else {
                m as u16
            }
        };
        for &a in &[0u16, 1, 2, 3, 255, 256, 4821, 32767, 32768, 65535] {
            for &b in &[0u16, 1, 2, 77, 1024, 40503, 65535] {
                assert_eq!(mul(a, b), golden(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inv_is_multiplicative_inverse() {
        for &x in &[1u16, 2, 3, 100, 255, 32767, 40000, 65535] {
            assert_eq!(mul(x, inv(x)), 1, "x={x}");
        }
        assert_eq!(inv(0), 0, "65536 is self-inverse in the IDEA convention");
        assert_eq!(mul(0, inv(0)), 1);
    }

    #[test]
    fn published_idea_test_vector() {
        // Key 0001 0002 0003 0004 0005 0006 0007 0008,
        // plaintext 0000 0001 0002 0003 → ciphertext 11FB ED2B 0198 6DE5.
        let key = IdeaKey::new([1, 2, 3, 4, 5, 6, 7, 8]);
        let mut block = [0x00, 0x00, 0x00, 0x01, 0x00, 0x02, 0x00, 0x03];
        cipher_block(&mut block, key.encryption_schedule());
        assert_eq!(block, [0x11, 0xFB, 0xED, 0x2B, 0x01, 0x98, 0x6D, 0xE5]);
        cipher_block(&mut block, key.decryption_schedule());
        assert_eq!(block, [0x00, 0x00, 0x00, 0x01, 0x00, 0x02, 0x00, 0x03]);
    }

    #[test]
    fn encrypt_changes_data_decrypt_restores() {
        let key = IdeaKey::benchmark_key();
        let original = make_plaintext(1024);
        let mut data = original.clone();
        encrypt_seq(&key, &mut data);
        assert_ne!(data, original);
        decrypt_seq(&key, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn single_block_roundtrip_all_byte_patterns() {
        let key = IdeaKey::benchmark_key();
        for seed in 0u8..32 {
            let original: Vec<u8> = (0..8).map(|i| seed.wrapping_mul(31).wrapping_add(i)).collect();
            let mut block = original.clone();
            cipher_block(&mut block, key.encryption_schedule());
            cipher_block(&mut block, key.decryption_schedule());
            assert_eq!(block, original, "seed={seed}");
        }
    }

    #[test]
    fn parallel_matches_sequential_ciphertext() {
        let key = IdeaKey::benchmark_key();
        let mut seq = make_plaintext(4096);
        let mut par = seq.clone();
        encrypt_seq(&key, &mut seq);
        encrypt_par(&key, &mut par, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_roundtrip() {
        let key = IdeaKey::benchmark_key();
        let original = make_plaintext(4096);
        let mut data = original.clone();
        encrypt_par(&key, &mut data, 3);
        decrypt_par(&key, &mut data, 5);
        assert_eq!(data, original);
    }

    #[test]
    fn kernel_seq_and_par_same_checksum() {
        let a = kernel(2048, None);
        let b = kernel(2048, Some(4));
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_different_ciphertext() {
        let k1 = IdeaKey::benchmark_key();
        let k2 = IdeaKey::new([1, 2, 3, 4, 5, 6, 7, 8]);
        let mut d1 = make_plaintext(64);
        let mut d2 = d1.clone();
        encrypt_seq(&k1, &mut d1);
        encrypt_seq(&k2, &mut d2);
        assert_ne!(d1, d2);
    }

    #[test]
    #[should_panic(expected = "block aligned")]
    fn unaligned_data_rejected() {
        let key = IdeaKey::benchmark_key();
        let mut data = vec![0u8; 7];
        encrypt_seq(&key, &mut data);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(&[1, 2, 3]), checksum(&[3, 2, 1]));
    }

    #[test]
    fn plaintext_is_deterministic() {
        assert_eq!(make_plaintext(64), make_plaintext(64));
    }
}
