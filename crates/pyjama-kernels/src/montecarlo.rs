//! JGF MonteCarlo (simplified): Monte-Carlo pricing over geometric
//! Brownian motion paths.
//!
//! The original JGF kernel replays historical rate data to seed thousands of
//! independent stochastic time-series simulations, then averages them. The
//! historical dataset is not redistributable, so this reproduction keeps the
//! *computational shape* — many independent pseudo-random walks, each a
//! few thousand floating-point steps, then a global aggregation — using a
//! standard GBM asset-price model (documented substitution, see DESIGN.md).
//!
//! Determinism across schedules: each path derives its RNG stream purely
//! from the path index, and per-path results land in dedicated slots summed
//! sequentially afterwards, so sequential and parallel runs agree bitwise.

use pyjama_omp::{parallel_for, Schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulation parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McParams {
    /// Initial asset price.
    pub s0: f64,
    /// Drift per year.
    pub mu: f64,
    /// Volatility per sqrt-year.
    pub sigma: f64,
    /// Time horizon in years.
    pub horizon: f64,
    /// Time steps per path.
    pub steps: usize,
    /// Strike price of the call option being priced.
    pub strike: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for McParams {
    fn default() -> Self {
        McParams {
            s0: 100.0,
            mu: 0.05,
            sigma: 0.2,
            horizon: 1.0,
            steps: 256,
            strike: 105.0,
            seed: 0x5EED_CAFE,
        }
    }
}

/// The aggregate result of a simulation run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McResult {
    /// Mean terminal price across paths.
    pub mean_final_price: f64,
    /// Monte-Carlo estimate of the (undiscounted) call payoff.
    pub call_price: f64,
    /// Number of simulated paths.
    pub paths: usize,
}

/// Standard-normal sample via Box–Muller from two uniforms.
#[inline]
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Simulates one GBM path, returning its terminal price. Pure in
/// `(params, path_index)`.
pub fn simulate_path(p: &McParams, path_index: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(p.seed ^ (path_index as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let dt = p.horizon / p.steps as f64;
    let drift = (p.mu - 0.5 * p.sigma * p.sigma) * dt;
    let vol = p.sigma * dt.sqrt();
    let mut s = p.s0;
    for _ in 0..p.steps {
        s *= (drift + vol * gaussian(&mut rng)).exp();
    }
    s
}

fn aggregate(p: &McParams, finals: &[f64]) -> McResult {
    let n = finals.len().max(1) as f64;
    let mean = finals.iter().sum::<f64>() / n;
    let payoff = finals.iter().map(|s| (s - p.strike).max(0.0)).sum::<f64>() / n;
    McResult {
        mean_final_price: mean,
        call_price: payoff,
        paths: finals.len(),
    }
}

/// Sequential kernel over `paths` simulations.
pub fn montecarlo_seq(p: &McParams, paths: usize) -> McResult {
    let finals: Vec<f64> = (0..paths).map(|i| simulate_path(p, i)).collect();
    aggregate(p, &finals)
}

/// Parallel kernel: paths workshared with a dynamic schedule, results
/// written into per-path slots, aggregation done sequentially.
pub fn montecarlo_par(p: &McParams, paths: usize, num_threads: usize) -> McResult {
    let mut finals = vec![0.0f64; paths];
    {
        struct Slot(*mut f64);
        unsafe impl Send for Slot {}
        unsafe impl Sync for Slot {}
        let slots: Vec<Slot> = finals.iter_mut().map(|v| Slot(v as *mut f64)).collect();
        let slots = &slots;
        parallel_for(num_threads, 0..paths, Schedule::Dynamic { chunk: 16 }, move |i| {
            // SAFETY: each index writes only its own slot.
            let slot = slots[i].0;
            unsafe { *slot = simulate_path(p, i) };
        });
    }
    aggregate(p, &finals)
}

/// Quantised checksum of a result (schedule-independent).
pub fn checksum(r: &McResult) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in [r.mean_final_price, r.call_price] {
        let q = (v * 1e9).round() as i64;
        for byte in q.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h ^ r.paths as u64
}

/// Full kernel entry point: simulate, sanity-check, checksum.
pub fn kernel(paths: usize, num_threads: Option<usize>) -> u64 {
    let p = McParams::default();
    let r = match num_threads {
        None => montecarlo_seq(&p, paths),
        Some(t) => montecarlo_par(&p, paths, t),
    };
    if paths >= 1000 {
        validate(&p, &r);
    }
    checksum(&r)
}

/// Statistical validation: with enough paths the empirical mean must land
/// near `s0·e^{μT}` (GBM expectation), and the call price must be positive
/// and below the mean price.
pub fn validate(p: &McParams, r: &McResult) {
    let expected = p.s0 * (p.mu * p.horizon).exp();
    let rel = (r.mean_final_price - expected).abs() / expected;
    assert!(
        rel < 0.05,
        "mean terminal price {} too far from E[S_T] = {expected}",
        r.mean_final_price
    );
    assert!(r.call_price > 0.0 && r.call_price < r.mean_final_price);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_deterministic_in_index() {
        let p = McParams::default();
        assert_eq!(simulate_path(&p, 7).to_bits(), simulate_path(&p, 7).to_bits());
        assert_ne!(simulate_path(&p, 7).to_bits(), simulate_path(&p, 8).to_bits());
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let p = McParams::default();
        let s = montecarlo_seq(&p, 500);
        let r = montecarlo_par(&p, 500, 4);
        assert_eq!(s.mean_final_price.to_bits(), r.mean_final_price.to_bits());
        assert_eq!(s.call_price.to_bits(), r.call_price.to_bits());
    }

    #[test]
    fn mean_converges_to_gbm_expectation() {
        let p = McParams::default();
        let r = montecarlo_seq(&p, 4000);
        validate(&p, &r);
    }

    #[test]
    fn kernel_checksums_agree() {
        assert_eq!(kernel(1000, None), kernel(1000, Some(3)));
    }

    #[test]
    fn zero_paths_is_safe() {
        let p = McParams::default();
        let r = montecarlo_seq(&p, 0);
        assert_eq!(r.paths, 0);
        assert_eq!(r.mean_final_price, 0.0);
    }

    #[test]
    fn higher_volatility_raises_option_value() {
        // A core no-arbitrage property: call value increases with σ.
        let lo = McParams {
            sigma: 0.1,
            ..Default::default()
        };
        let hi = McParams {
            sigma: 0.5,
            ..Default::default()
        };
        let n = 4000;
        let c_lo = montecarlo_seq(&lo, n).call_price;
        let c_hi = montecarlo_seq(&hi, n).call_price;
        assert!(c_hi > c_lo, "call({}) = {c_hi} should exceed call({}) = {c_lo}", hi.sigma, lo.sigma);
    }

    #[test]
    fn different_seeds_different_results() {
        let a = McParams::default();
        let b = McParams {
            seed: 42,
            ..Default::default()
        };
        assert_ne!(
            montecarlo_seq(&a, 100).mean_final_price.to_bits(),
            montecarlo_seq(&b, 100).mean_final_price.to_bits()
        );
    }
}
