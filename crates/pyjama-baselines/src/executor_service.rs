//! A `java.util.concurrent.ExecutorService`-style fixed thread pool.
//!
//! Deliberately *not* the same object as the runtime's
//! `pyjama_runtime`-style worker target: an `ExecutorService` has no
//! thread-context awareness and no scheduling clauses — submitting is all
//! it does. The Figure 7 baseline combines it with `invokeLater`-style
//! posts for GUI updates, exactly as §II-A describes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Inner {
    queue: Mutex<VecDeque<Job>>,
    cond: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-size thread pool with `submit → Future` semantics.
pub struct ExecutorService {
    inner: Arc<Inner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ExecutorService {
    /// `Executors.newFixedThreadPool(n)`.
    pub fn new_fixed(n: usize) -> Self {
        assert!(n > 0, "pool needs at least one thread");
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let threads = (0..n)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("executor-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let mut q = inner.queue.lock();
                            loop {
                                if let Some(j) = q.pop_front() {
                                    break Some(j);
                                }
                                if inner.shutdown.load(Ordering::SeqCst) {
                                    break None;
                                }
                                inner.cond.wait(&mut q);
                            }
                        };
                        match job {
                            Some(j) => {
                                // Pool threads survive panicking jobs.
                                let _ = std::panic::catch_unwind(
                                    std::panic::AssertUnwindSafe(j),
                                );
                            }
                            None => return,
                        }
                    })
                    .expect("failed to spawn executor thread")
            })
            .collect();
        ExecutorService {
            inner,
            threads: Mutex::new(threads),
        }
    }

    /// Submits a runnable; returns nothing (`execute`).
    pub fn execute(&self, f: impl FnOnce() + Send + 'static) {
        assert!(
            !self.inner.shutdown.load(Ordering::SeqCst),
            "executor has been shut down"
        );
        self.inner.queue.lock().push_back(Box::new(f));
        self.inner.cond.notify_one();
    }

    /// Submits a value-returning task (`submit`), yielding a [`JFuture`].
    pub fn submit<R: Send + 'static>(
        &self,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> JFuture<R> {
        let state = Arc::new(FutureState {
            slot: Mutex::new(FutureSlot::Pending),
            cond: Condvar::new(),
        });
        let s2 = Arc::clone(&state);
        self.execute(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let mut g = s2.slot.lock();
            *g = match r {
                Ok(v) => FutureSlot::Done(Some(v)),
                Err(_) => FutureSlot::Panicked,
            };
            drop(g);
            s2.cond.notify_all();
        });
        JFuture { state }
    }

    /// Queued (not yet started) jobs.
    pub fn queue_len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Pool size.
    pub fn pool_size(&self) -> usize {
        self.threads.lock().len()
    }

    /// `shutdown()` + `awaitTermination`: runs remaining jobs, joins all
    /// threads. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cond.notify_all();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ExecutorService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

enum FutureSlot<R> {
    Pending,
    Done(Option<R>),
    Panicked,
}

struct FutureState<R> {
    slot: Mutex<FutureSlot<R>>,
    cond: Condvar,
}

/// A blocking future for a submitted task (`java.util.concurrent.Future`).
pub struct JFuture<R> {
    state: Arc<FutureState<R>>,
}

impl<R> JFuture<R> {
    /// Blocks until the task completes, returning its value.
    ///
    /// # Panics
    /// Panics if the task panicked (analogous to `ExecutionException`).
    pub fn get(self) -> R {
        let mut g = self.state.slot.lock();
        loop {
            match &mut *g {
                FutureSlot::Pending => self.state.cond.wait(&mut g),
                FutureSlot::Done(v) => return v.take().expect("value taken once"),
                FutureSlot::Panicked => panic!("task panicked (ExecutionException)"),
            }
        }
    }

    /// Blocks up to `timeout`; `None` on expiry.
    pub fn get_timeout(self, timeout: Duration) -> Option<R> {
        let deadline = Instant::now() + timeout;
        let mut g = self.state.slot.lock();
        loop {
            match &mut *g {
                FutureSlot::Pending => {
                    if self.state.cond.wait_until(&mut g, deadline).timed_out()
                        && matches!(*g, FutureSlot::Pending) {
                            return None;
                        }
                }
                FutureSlot::Done(v) => return Some(v.take().expect("value taken once")),
                FutureSlot::Panicked => panic!("task panicked (ExecutionException)"),
            }
        }
    }

    /// Non-blocking completion check (`isDone`).
    pub fn is_done(&self) -> bool {
        !matches!(*self.state.slot.lock(), FutureSlot::Pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn submit_returns_value() {
        let ex = ExecutorService::new_fixed(2);
        let f = ex.submit(|| 6 * 7);
        assert_eq!(f.get(), 42);
    }

    #[test]
    fn execute_runs_all_jobs() {
        let ex = ExecutorService::new_fixed(4);
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let n = Arc::clone(&n);
            ex.execute(move || {
                n.fetch_add(1, Ordering::SeqCst);
            });
        }
        ex.shutdown();
        assert_eq!(n.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn futures_complete_concurrently() {
        let ex = ExecutorService::new_fixed(4);
        let t0 = Instant::now();
        let fs: Vec<_> = (0..4)
            .map(|_| ex.submit(|| std::thread::sleep(Duration::from_millis(40))))
            .collect();
        for f in fs {
            f.get();
        }
        assert!(t0.elapsed() < Duration::from_millis(140), "{:?}", t0.elapsed());
    }

    #[test]
    fn get_timeout_expires_for_slow_task() {
        let ex = ExecutorService::new_fixed(1);
        let f = ex.submit(|| std::thread::sleep(Duration::from_millis(200)));
        assert!(f.get_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn is_done_flips() {
        let ex = ExecutorService::new_fixed(1);
        let f = ex.submit(|| 1);
        while !f.is_done() {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(f.get(), 1);
    }

    #[test]
    #[should_panic(expected = "ExecutionException")]
    fn panicking_task_panics_at_get() {
        let ex = ExecutorService::new_fixed(1);
        let f = ex.submit(|| -> i32 { panic!("bad task") });
        f.get();
    }

    #[test]
    fn pool_survives_panicking_jobs() {
        let ex = ExecutorService::new_fixed(1);
        ex.execute(|| panic!("boom"));
        let f = ex.submit(|| "still alive");
        assert_eq!(f.get(), "still alive");
    }

    #[test]
    #[should_panic(expected = "shut down")]
    fn execute_after_shutdown_panics() {
        let ex = ExecutorService::new_fixed(1);
        ex.shutdown();
        ex.execute(|| {});
    }

    #[test]
    fn shutdown_is_idempotent() {
        let ex = ExecutorService::new_fixed(2);
        ex.shutdown();
        ex.shutdown();
    }
}
