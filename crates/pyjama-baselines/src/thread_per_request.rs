//! Thread-per-request: the "most traditional approach" (§II-A).
//!
//! Every event spawns a brand-new OS thread. The paper lists its two
//! drawbacks: the multithreading expertise demanded, and "the salient
//! drawback of non-scalability, since excessively creating threads could
//! decrease the application's performance". This type exists so the
//! benchmarks can measure that overhead against pooled approaches.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Spawns one thread per offloaded handler and counts them.
#[derive(Default)]
pub struct ThreadPerRequest {
    spawned: AtomicU64,
    live: Arc<AtomicU64>,
}

impl ThreadPerRequest {
    /// Creates a spawner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offloads `f` to a freshly spawned thread (detached, like the classic
    /// pattern — completion is the handler's own business).
    pub fn offload(&self, f: impl FnOnce() + Send + 'static) {
        self.spawned.fetch_add(1, Ordering::Relaxed);
        let live = Arc::clone(&self.live);
        live.fetch_add(1, Ordering::SeqCst);
        std::thread::spawn(move || {
            struct Guard(Arc<AtomicU64>);
            impl Drop for Guard {
                fn drop(&mut self) {
                    self.0.fetch_sub(1, Ordering::SeqCst);
                }
            }
            let _g = Guard(live);
            f();
        });
    }

    /// Total threads ever spawned.
    pub fn spawned(&self) -> u64 {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Threads currently running handlers.
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::SeqCst)
    }

    /// Spin-waits (bounded) until all spawned handlers have finished.
    pub fn wait_idle(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.live() > 0 {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn offload_runs_on_new_thread() {
        let tpr = ThreadPerRequest::new();
        let caller = std::thread::current().id();
        let (tx, rx) = std::sync::mpsc::channel();
        tpr.offload(move || {
            tx.send(std::thread::current().id() != caller).unwrap();
        });
        assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        assert_eq!(tpr.spawned(), 1);
    }

    #[test]
    fn live_count_rises_and_falls() {
        let tpr = ThreadPerRequest::new();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let gate = Arc::new(std::sync::Barrier::new(5));
        for _ in 0..4 {
            let g = Arc::clone(&gate);
            let tx = tx.clone();
            tpr.offload(move || {
                tx.send(()).unwrap();
                g.wait();
            });
        }
        for _ in 0..4 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(tpr.live(), 4);
        gate.wait(); // release them
        assert!(tpr.wait_idle(Duration::from_secs(5)));
        assert_eq!(tpr.live(), 0);
        assert_eq!(tpr.spawned(), 4);
    }

    #[test]
    fn wait_idle_times_out_while_busy() {
        let tpr = ThreadPerRequest::new();
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        tpr.offload(move || {
            g.wait();
        });
        assert!(!tpr.wait_idle(Duration::from_millis(20)));
        gate.wait();
        assert!(tpr.wait_idle(Duration::from_secs(5)));
    }

    #[test]
    fn panicking_handler_still_decrements_live() {
        let tpr = ThreadPerRequest::new();
        tpr.offload(|| panic!("handler bug"));
        assert!(tpr.wait_idle(Duration::from_secs(5)));
        assert_eq!(tpr.live(), 0);
    }
}
