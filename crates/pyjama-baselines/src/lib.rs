//! Baseline offloading approaches the paper compares against (§II, §V-A).
//!
//! The GUI benchmark compares Pyjama's directives with the two standard
//! Java techniques plus the naive one:
//!
//! * [`SwingWorker`] — Java's `javax.swing.SwingWorker` pattern (Figure 3):
//!   a background computation with `publish`/`process` progress chunks and
//!   a `done` continuation, both marshalled onto the EDT. Swing backs this
//!   with a shared 10-thread pool; so does this implementation.
//! * [`ExecutorService`] — `java.util.concurrent`-style fixed thread pool
//!   with [`JFuture`] results; GUI updates are posted back with
//!   `invokeLater` (our [`pyjama_events::EventLoopHandle::post`]).
//! * [`ThreadPerRequest`] — the "most traditional approach" (§II-A):
//!   spawn a fresh thread per event. Simple, unscalable; the benchmarks
//!   show its overhead directly.
//!
//! These exist so the Figure 7/8 harnesses can reproduce the paper's
//! comparison: "Performance achieved by the proposed directive based
//! approach is equal and often superior to manual implementations."

pub mod executor_service;
pub mod swing_worker;
pub mod thread_per_request;

pub use executor_service::{ExecutorService, JFuture};
pub use swing_worker::{SwingWorker, SwingWorkerPool};
pub use thread_per_request::ThreadPerRequest;
