//! The `javax.swing.SwingWorker` pattern (paper Figure 3).
//!
//! A `SwingWorker<T, V>` runs `doInBackground` off the EDT, streams interim
//! `V` chunks through `publish`, which the framework coalesces and delivers
//! to `process` *on the EDT*, and finally calls `done` on the EDT. "The
//! underlying implementation of SwingWorker maintains a default
//! 10-thread-max thread pool" (§V-A) — reproduced by
//! [`SwingWorkerPool::default_pool`].

use std::sync::Arc;

use parking_lot::Mutex;
use pyjama_events::EventLoopHandle;

use crate::executor_service::ExecutorService;

/// The shared background pool all workers execute on.
pub struct SwingWorkerPool {
    executor: ExecutorService,
}

impl SwingWorkerPool {
    /// A pool with `n` threads.
    pub fn new(n: usize) -> Self {
        SwingWorkerPool {
            executor: ExecutorService::new_fixed(n),
        }
    }

    /// Swing's default: 10 threads.
    pub fn default_pool() -> Self {
        Self::new(10)
    }

    fn execute(&self, f: impl FnOnce() + Send + 'static) {
        self.executor.execute(f);
    }
}

/// Handle passed to the background closure for streaming interim results.
pub struct Publisher<V: Send + 'static> {
    edt: EventLoopHandle,
    pending: Arc<Mutex<Vec<V>>>,
    process: Arc<dyn Fn(Vec<V>) + Send + Sync>,
}

impl<V: Send + 'static> Publisher<V> {
    /// `publish(v)`: queues a chunk; chunks are coalesced and delivered to
    /// the `process` callback on the EDT.
    pub fn publish(&self, v: V) {
        let schedule = {
            let mut g = self.pending.lock();
            g.push(v);
            g.len() == 1 // first chunk since the last drain → schedule a drain
        };
        if schedule {
            let pending = Arc::clone(&self.pending);
            let process = Arc::clone(&self.process);
            self.edt.post(move || {
                let chunk: Vec<V> = std::mem::take(&mut *pending.lock());
                if !chunk.is_empty() {
                    process(chunk);
                }
            });
        }
    }
}

/// A background worker with EDT-marshalled progress and completion, built
/// with a fluent API:
///
/// ```no_run
/// # use pyjama_baselines::swing_worker::{SwingWorker, SwingWorkerPool};
/// # use pyjama_events::Edt;
/// # let edt = Edt::spawn("edt");
/// # let pool = SwingWorkerPool::default_pool();
/// SwingWorker::new(edt.handle())
///     .process(|chunks: Vec<u32>| { /* S2: progress, on the EDT */ })
///     .done(|result: String| { /* S4: completion, on the EDT */ })
///     .execute(&pool, |publisher| {
///         // S1/S3: background computation
///         publisher.publish(50);
///         "finished".to_string()
///     });
/// ```
pub struct SwingWorker<T: Send + 'static, V: Send + 'static> {
    edt: EventLoopHandle,
    process: Option<Arc<dyn Fn(Vec<V>) + Send + Sync>>,
    done: Option<Box<dyn FnOnce(T) + Send>>,
}

impl<T: Send + 'static, V: Send + 'static> SwingWorker<T, V> {
    /// Starts building a worker bound to the given EDT.
    pub fn new(edt: EventLoopHandle) -> Self {
        SwingWorker {
            edt,
            process: None,
            done: None,
        }
    }

    /// Sets the `process` callback (runs on the EDT with coalesced chunks).
    pub fn process(mut self, f: impl Fn(Vec<V>) + Send + Sync + 'static) -> Self {
        self.process = Some(Arc::new(f));
        self
    }

    /// Sets the `done` callback (runs on the EDT with the final value).
    pub fn done(mut self, f: impl FnOnce(T) + Send + 'static) -> Self {
        self.done = Some(Box::new(f));
        self
    }

    /// `execute()`: submits `background` to the pool. Progress flows through
    /// the [`Publisher`]; when the background closure returns, `done` is
    /// posted to the EDT with its value.
    pub fn execute(
        self,
        pool: &SwingWorkerPool,
        background: impl FnOnce(&Publisher<V>) -> T + Send + 'static,
    ) {
        let edt = self.edt.clone();
        let publisher = Publisher {
            edt: self.edt.clone(),
            pending: Arc::new(Mutex::new(Vec::new())),
            process: self.process.unwrap_or_else(|| Arc::new(|_| {})),
        };
        let done = self.done;
        pool.execute(move || {
            let result = background(&publisher);
            if let Some(done) = done {
                edt.post(move || done(result));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyjama_events::Edt;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    fn wait_until(flag: &AtomicBool) {
        let t0 = std::time::Instant::now();
        while !flag.load(Ordering::SeqCst) {
            assert!(t0.elapsed() < Duration::from_secs(5), "timed out");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn background_runs_off_edt_done_runs_on_edt() {
        let edt = Edt::spawn("edt");
        let pool = SwingWorkerPool::new(2);
        let h = edt.handle();
        let bg_on_edt = Arc::new(AtomicBool::new(true));
        let done_on_edt = Arc::new(AtomicBool::new(false));
        let finished = Arc::new(AtomicBool::new(false));

        let b2 = Arc::clone(&bg_on_edt);
        let d2 = Arc::clone(&done_on_edt);
        let f2 = Arc::clone(&finished);
        let h2 = h.clone();
        let h3 = h.clone();
        SwingWorker::<u64, ()>::new(h)
            .done(move |v| {
                assert_eq!(v, 99);
                d2.store(h3.is_loop_thread(), Ordering::SeqCst);
                f2.store(true, Ordering::SeqCst);
            })
            .execute(&pool, move |_| {
                b2.store(h2.is_loop_thread(), Ordering::SeqCst);
                99
            });

        wait_until(&finished);
        assert!(!bg_on_edt.load(Ordering::SeqCst), "background must not run on EDT");
        assert!(done_on_edt.load(Ordering::SeqCst), "done must run on EDT");
    }

    #[test]
    fn publish_delivers_all_chunks_in_order_on_edt() {
        let edt = Edt::spawn("edt");
        let pool = SwingWorkerPool::new(1);
        let received = Arc::new(Mutex::new(Vec::new()));
        let finished = Arc::new(AtomicBool::new(false));

        let r2 = Arc::clone(&received);
        let f2 = Arc::clone(&finished);
        SwingWorker::<(), u32>::new(edt.handle())
            .process(move |chunk| r2.lock().extend(chunk))
            .done(move |_| f2.store(true, Ordering::SeqCst))
            .execute(&pool, |publisher| {
                for i in 0..50 {
                    publisher.publish(i);
                }
            });

        wait_until(&finished);
        edt.invoke_and_wait(|| {}); // drain any trailing process event
        let got = received.lock().clone();
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "chunks lost or reordered");
    }

    #[test]
    fn coalescing_batches_multiple_chunks_per_process_call() {
        let edt = Edt::spawn("edt");
        let pool = SwingWorkerPool::new(1);
        let calls = Arc::new(Mutex::new(Vec::new()));
        let finished = Arc::new(AtomicBool::new(false));

        let c2 = Arc::clone(&calls);
        let f2 = Arc::clone(&finished);
        // Park the EDT briefly so publishes pile up and coalesce.
        edt.invoke_later(|| std::thread::sleep(Duration::from_millis(30)));
        SwingWorker::<(), u32>::new(edt.handle())
            .process(move |chunk| c2.lock().push(chunk.len()))
            .done(move |_| f2.store(true, Ordering::SeqCst))
            .execute(&pool, |publisher| {
                for i in 0..20 {
                    publisher.publish(i);
                }
            });

        wait_until(&finished);
        edt.invoke_and_wait(|| {});
        let sizes = calls.lock().clone();
        assert_eq!(sizes.iter().sum::<usize>(), 20);
        assert!(
            sizes.len() < 20,
            "expected coalescing to batch chunks, got {sizes:?}"
        );
    }

    #[test]
    fn worker_without_callbacks_still_runs() {
        let edt = Edt::spawn("edt");
        let pool = SwingWorkerPool::new(1);
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        SwingWorker::<(), ()>::new(edt.handle()).execute(&pool, move |_| {
            r2.store(true, Ordering::SeqCst);
        });
        wait_until(&ran);
    }

    #[test]
    fn many_workers_share_the_pool() {
        let edt = Edt::spawn("edt");
        let pool = SwingWorkerPool::default_pool();
        let done = Arc::new(Mutex::new(0usize));
        for _ in 0..30 {
            let d = Arc::clone(&done);
            SwingWorker::<(), ()>::new(edt.handle())
                .done(move |_| *d.lock() += 1)
                .execute(&pool, |_| {
                    std::thread::sleep(Duration::from_millis(2));
                });
        }
        let t0 = std::time::Instant::now();
        while *done.lock() < 30 {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
