//! Online (single-pass) statistics and report-friendly summaries.

/// Welford's online algorithm for mean and variance, plus min/max.
///
/// Used by the benchmark harnesses to aggregate per-round measurements
/// (the paper runs "10 rounds with different request loads", §V-A).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A finished summary of a measurement series, convenient for report rows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Builds a summary from an [`OnlineStats`].
    pub fn from_stats(s: &OnlineStats) -> Self {
        Summary {
            count: s.count(),
            mean: s.mean(),
            stddev: s.stddev(),
            min: s.min(),
            max: s.max(),
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = OnlineStats::new();
        for &x in xs {
            s.push(x);
        }
        Self::from_stats(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn mean_and_variance_match_textbook() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance is 4; sample variance is 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_track_extremes() {
        let mut s = OnlineStats::new();
        s.push(-3.0);
        s.push(10.0);
        s.push(2.0);
        assert_eq!(s.min(), -3.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn summary_from_slice() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.stddev - 1.0).abs() < 1e-12);
    }
}
