//! Throughput measurement (responses/sec, §V-B).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Counts completed operations and reports rates over the elapsed window.
///
/// The HTTP experiment (Figure 9) measures "the application's ability to
/// process requests" as responses per second under a closed-loop load of
/// virtual users. Completions are counted with a relaxed atomic increment;
/// the window is the wall-clock time between [`ThroughputMeter::start`] and
/// the query.
pub struct ThroughputMeter {
    completed: AtomicU64,
    started_at: parking_lot::Mutex<Option<Instant>>,
}

impl ThroughputMeter {
    /// Creates a meter; the window opens at the first `start()` call
    /// (or lazily at the first `record()` if `start` was never called).
    pub fn new() -> Self {
        ThroughputMeter {
            completed: AtomicU64::new(0),
            started_at: parking_lot::Mutex::new(None),
        }
    }

    /// Opens (or re-opens) the measurement window and zeroes the counter.
    pub fn start(&self) {
        self.completed.store(0, Ordering::SeqCst);
        *self.started_at.lock() = Some(Instant::now());
    }

    /// Records one completed operation.
    pub fn record(&self) {
        {
            let mut guard = self.started_at.lock();
            if guard.is_none() {
                *guard = Some(Instant::now());
            }
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` completed operations.
    pub fn record_n(&self, n: u64) {
        {
            let mut guard = self.started_at.lock();
            if guard.is_none() {
                *guard = Some(Instant::now());
            }
        }
        self.completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Total completions since the window opened.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Elapsed window time (zero if never started).
    pub fn elapsed(&self) -> Duration {
        self.started_at.lock().map(|t| t.elapsed()).unwrap_or_default()
    }

    /// Completions per second over the elapsed window.
    pub fn rate_per_sec(&self) -> f64 {
        let el = self.elapsed().as_secs_f64();
        if el <= 0.0 {
            0.0
        } else {
            self.completed() as f64 / el
        }
    }

    /// Completions per second over an externally supplied window, for
    /// deterministic reporting after a run has finished.
    pub fn rate_over(&self, window: Duration) -> f64 {
        let el = window.as_secs_f64();
        if el <= 0.0 {
            0.0
        } else {
            self.completed() as f64 / el
        }
    }
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ThroughputMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThroughputMeter")
            .field("completed", &self.completed())
            .field("rate_per_sec", &self.rate_per_sec())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_completions() {
        let m = ThroughputMeter::new();
        m.start();
        m.record();
        m.record_n(9);
        assert_eq!(m.completed(), 10);
    }

    #[test]
    fn rate_without_start_is_zero_before_first_record() {
        let m = ThroughputMeter::new();
        assert_eq!(m.rate_per_sec(), 0.0);
        assert_eq!(m.elapsed(), Duration::ZERO);
    }

    #[test]
    fn lazy_start_on_first_record() {
        let m = ThroughputMeter::new();
        m.record();
        std::thread::sleep(Duration::from_millis(2));
        assert!(m.elapsed() >= Duration::from_millis(2));
        assert!(m.rate_per_sec() > 0.0);
    }

    #[test]
    fn restart_zeroes_counter() {
        let m = ThroughputMeter::new();
        m.start();
        m.record_n(5);
        m.start();
        assert_eq!(m.completed(), 0);
    }

    #[test]
    fn rate_over_fixed_window() {
        let m = ThroughputMeter::new();
        m.start();
        m.record_n(100);
        assert!((m.rate_over(Duration::from_secs(2)) - 50.0).abs() < 1e-9);
        assert_eq!(m.rate_over(Duration::ZERO), 0.0);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let m = Arc::new(ThroughputMeter::new());
        m.start();
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        m.record();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(m.completed(), 40_000);
    }
}
