//! Connection-lifecycle counters for the persistent-connection HTTP server.
//!
//! Fig. 9 of the paper measures an HTTP encryption service; with keep-alive
//! in play, throughput depends on how well connections are *reused*, not
//! just how fast handlers run. These counters separate the two: `accepted`
//! counts TCP connections, `reused` counts requests served on a connection
//! beyond its first, `pipelined` counts requests that were already buffered
//! when the previous response was written, and `timed_out_idle` counts
//! keep-alive connections evicted for idling. A healthy keep-alive workload
//! shows `reused ≫ accepted`; a `connection: close` workload shows
//! `reused == 0` with `accepted` equal to the request count.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative connection-lifecycle counters. Increments are single relaxed
/// atomic adds so recording does not perturb the serving hot path.
#[derive(Debug, Default)]
pub struct ConnCounters {
    accepted: AtomicU64,
    reused: AtomicU64,
    pipelined: AtomicU64,
    timed_out_idle: AtomicU64,
}

impl ConnCounters {
    /// An all-zero counter set, usable in `static` position.
    pub const fn new() -> Self {
        ConnCounters {
            accepted: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            pipelined: AtomicU64::new(0),
            timed_out_idle: AtomicU64::new(0),
        }
    }

    /// A TCP connection was accepted.
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was served on a connection past its first request.
    pub fn record_reused(&self) {
        self.reused.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was already buffered when the previous response went out
    /// (true HTTP pipelining, no read wait in between).
    pub fn record_pipelined(&self) {
        self.pipelined.fetch_add(1, Ordering::Relaxed);
    }

    /// An idle keep-alive connection was evicted by the idle timeout.
    pub fn record_timed_out_idle(&self) {
        self.timed_out_idle.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> ConnStats {
        ConnStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            pipelined: self.pipelined.load(Ordering::Relaxed),
            timed_out_idle: self.timed_out_idle.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter. Concurrent increments racing the reset land on
    /// either side of it; callers that need exact deltas should quiesce the
    /// server first, or diff two [`snapshot`](Self::snapshot)s instead.
    pub fn reset(&self) {
        self.accepted.store(0, Ordering::Relaxed);
        self.reused.store(0, Ordering::Relaxed);
        self.pipelined.store(0, Ordering::Relaxed);
        self.timed_out_idle.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of [`ConnCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// TCP connections accepted.
    pub accepted: u64,
    /// Requests served on a connection beyond its first.
    pub reused: u64,
    /// Requests found already buffered behind the previous one (pipelined).
    pub pipelined: u64,
    /// Idle keep-alive connections evicted by timeout.
    pub timed_out_idle: u64,
}

impl ConnStats {
    /// Counter growth between an earlier snapshot and this one (saturating,
    /// so a reset in between reads as zero rather than wrapping).
    pub fn since(&self, earlier: &ConnStats) -> ConnStats {
        ConnStats {
            accepted: self.accepted.saturating_sub(earlier.accepted),
            reused: self.reused.saturating_sub(earlier.reused),
            pipelined: self.pipelined.saturating_sub(earlier.pipelined),
            timed_out_idle: self.timed_out_idle.saturating_sub(earlier.timed_out_idle),
        }
    }

    /// Mean requests served per accepted connection, given a total request
    /// count (`reused` only counts the non-first requests).
    pub fn requests_per_connection(&self) -> f64 {
        if self.accepted == 0 {
            return 0.0;
        }
        (self.accepted + self.reused) as f64 / self.accepted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let c = ConnCounters::new();
        assert_eq!(c.snapshot(), ConnStats::default());
    }

    #[test]
    fn increments_are_visible_in_snapshot() {
        let c = ConnCounters::new();
        c.record_accepted();
        c.record_reused();
        c.record_reused();
        c.record_pipelined();
        c.record_timed_out_idle();
        let s = c.snapshot();
        assert_eq!(s.accepted, 1);
        assert_eq!(s.reused, 2);
        assert_eq!(s.pipelined, 1);
        assert_eq!(s.timed_out_idle, 1);
    }

    #[test]
    fn requests_per_connection_ratio() {
        let s = ConnStats {
            accepted: 10,
            reused: 40,
            pipelined: 0,
            timed_out_idle: 0,
        };
        assert!((s.requests_per_connection() - 5.0).abs() < 1e-9);
        assert_eq!(ConnStats::default().requests_per_connection(), 0.0);
    }

    #[test]
    fn reset_zeroes_and_snapshot_delta_works() {
        let c = ConnCounters::new();
        c.record_accepted();
        c.record_reused();
        let s1 = c.snapshot();
        c.record_reused();
        c.record_timed_out_idle();
        let delta = c.snapshot().since(&s1);
        assert_eq!(delta.accepted, 0);
        assert_eq!(delta.reused, 1);
        assert_eq!(delta.timed_out_idle, 1);
        c.reset();
        assert_eq!(c.snapshot(), ConnStats::default());
    }

    #[test]
    fn concurrent_increments_conserve_counts() {
        let c = std::sync::Arc::new(ConnCounters::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_reused();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().reused, 4000);
    }
}
