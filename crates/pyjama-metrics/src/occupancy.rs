//! EDT occupancy: how long the dispatch thread is busy inside handlers.
//!
//! The paper's motivation (§I, Figure 1) is that a busy EDT delays
//! subsequent events; "an essential requirement is to maximize the idleness
//! of the EDT". [`OccupancyTracker`] measures exactly that: total busy time
//! accumulated across `enter`/`exit` pairs, and the busy *fraction* over a
//! measurement window. The synchronous-parallel baseline (Figure 8) is
//! distinguished from asynchronous offloading precisely by this metric —
//! its handlers finish faster, but the EDT remains occupied throughout.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Tracks cumulative busy time of a single logical thread (typically the EDT).
///
/// `enter()`/`exit()` must be called in matched pairs by the tracked thread;
/// nesting is supported (only the outermost pair accumulates). Queries may be
/// made from any thread.
pub struct OccupancyTracker {
    busy_ns: AtomicU64,
    intervals: AtomicU64,
    state: Mutex<TrackerState>,
}

struct TrackerState {
    window_start: Option<Instant>,
    entered_at: Option<Instant>,
    depth: u32,
}

impl OccupancyTracker {
    /// Creates a tracker; the window opens on `start_window` (or the first
    /// `enter`).
    pub fn new() -> Self {
        OccupancyTracker {
            busy_ns: AtomicU64::new(0),
            intervals: AtomicU64::new(0),
            state: Mutex::new(TrackerState {
                window_start: None,
                entered_at: None,
                depth: 0,
            }),
        }
    }

    /// Opens the measurement window and zeroes accumulated busy time.
    pub fn start_window(&self) {
        let mut st = self.state.lock();
        st.window_start = Some(Instant::now());
        self.busy_ns.store(0, Ordering::SeqCst);
        self.intervals.store(0, Ordering::SeqCst);
    }

    /// Marks the tracked thread as busy (handler entry).
    pub fn enter(&self) {
        let mut st = self.state.lock();
        if st.window_start.is_none() {
            st.window_start = Some(Instant::now());
        }
        if st.depth == 0 {
            st.entered_at = Some(Instant::now());
        }
        st.depth += 1;
    }

    /// Marks the tracked thread as idle again (handler exit).
    ///
    /// # Panics
    /// Panics if called without a matching [`enter`](Self::enter).
    pub fn exit(&self) {
        let mut st = self.state.lock();
        assert!(st.depth > 0, "OccupancyTracker::exit without enter");
        st.depth -= 1;
        if st.depth == 0 {
            if let Some(t0) = st.entered_at.take() {
                let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                self.busy_ns.fetch_add(ns, Ordering::Relaxed);
                self.intervals.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Runs `f` inside an `enter`/`exit` pair.
    pub fn track<R>(&self, f: impl FnOnce() -> R) -> R {
        self.enter();
        struct Guard<'a>(&'a OccupancyTracker);
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.0.exit();
            }
        }
        let _g = Guard(self);
        f()
    }

    /// Total accumulated busy time (completed outermost intervals only).
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed))
    }

    /// Number of completed outermost busy intervals.
    pub fn intervals(&self) -> u64 {
        self.intervals.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the window opened (zero if never opened).
    pub fn window(&self) -> Duration {
        self.state
            .lock()
            .window_start
            .map(|t| t.elapsed())
            .unwrap_or_default()
    }

    /// Busy fraction in `[0, 1]` over the open window.
    pub fn busy_fraction(&self) -> f64 {
        let w = self.window().as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            (self.busy().as_secs_f64() / w).min(1.0)
        }
    }
}

impl Default for OccupancyTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for OccupancyTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OccupancyTracker")
            .field("busy", &self.busy())
            .field("intervals", &self.intervals())
            .field("busy_fraction", &self.busy_fraction())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_busy_time() {
        let t = OccupancyTracker::new();
        t.start_window();
        t.track(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(t.busy() >= Duration::from_millis(5));
        assert_eq!(t.intervals(), 1);
    }

    #[test]
    fn nested_tracking_counts_outermost_once() {
        let t = OccupancyTracker::new();
        t.start_window();
        t.track(|| {
            t.track(|| std::thread::sleep(Duration::from_millis(2)));
            std::thread::sleep(Duration::from_millis(2));
        });
        assert_eq!(t.intervals(), 1);
        let busy = t.busy();
        assert!(busy >= Duration::from_millis(4), "{busy:?}");
        // Nested interval must not be double counted.
        assert!(busy < Duration::from_millis(50), "{busy:?}");
    }

    #[test]
    fn busy_fraction_bounded() {
        let t = OccupancyTracker::new();
        t.start_window();
        t.track(|| std::thread::sleep(Duration::from_millis(3)));
        std::thread::sleep(Duration::from_millis(3));
        let f = t.busy_fraction();
        assert!(f > 0.0 && f <= 1.0, "{f}");
    }

    #[test]
    #[should_panic(expected = "exit without enter")]
    fn unmatched_exit_panics() {
        let t = OccupancyTracker::new();
        t.exit();
    }

    #[test]
    fn window_zero_before_any_activity() {
        let t = OccupancyTracker::new();
        assert_eq!(t.window(), Duration::ZERO);
        assert_eq!(t.busy_fraction(), 0.0);
    }

    #[test]
    fn track_returns_closure_value_and_unwinds_safely() {
        let t = OccupancyTracker::new();
        assert_eq!(t.track(|| 42), 42);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.track(|| panic!("boom"))
        }));
        assert!(r.is_err());
        // Guard must have restored depth to zero so a new interval works.
        t.track(|| ());
        assert_eq!(t.intervals(), 3);
    }
}
