//! Thread-safe latency recording.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::histogram::Histogram;

/// A concurrent latency recorder.
///
/// Handlers running on many threads (EDT, worker pools, HTTP connections)
/// record the end-to-end response time of each event. The recorder is shared
/// via `Arc` and protected by a short `parking_lot::Mutex` section: a single
/// histogram insert is tens of nanoseconds, negligible next to the
/// millisecond-scale handlers in the paper's experiments.
#[derive(Default)]
pub struct LatencyRecorder {
    inner: Mutex<Histogram>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            inner: Mutex::new(Histogram::new()),
        }
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        self.inner.lock().record(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records the elapsed time since `start`.
    pub fn record_since(&self, start: Instant) {
        self.record(start.elapsed());
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.lock().count()
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        Duration::from_nanos(self.inner.lock().mean() as u64)
    }

    /// Latency at quantile `q` (e.g. `0.99`).
    pub fn quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.inner.lock().quantile(q))
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.inner.lock().max())
    }

    /// Takes a snapshot of the underlying histogram.
    pub fn snapshot(&self) -> Histogram {
        self.inner.lock().clone()
    }

    /// Clears all recorded samples.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

impl std::fmt::Debug for LatencyRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let h = self.inner.lock();
        write!(f, "LatencyRecorder({:?})", *h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_and_reports() {
        let r = LatencyRecorder::new();
        r.record(Duration::from_millis(5));
        r.record(Duration::from_millis(15));
        assert_eq!(r.count(), 2);
        let mean = r.mean();
        assert!(mean >= Duration::from_millis(9) && mean <= Duration::from_millis(11));
        assert!(r.max() >= Duration::from_millis(15));
    }

    #[test]
    fn record_since_measures_elapsed() {
        let r = LatencyRecorder::new();
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        r.record_since(t0);
        assert_eq!(r.count(), 1);
        assert!(r.max() >= Duration::from_millis(2));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = Arc::new(LatencyRecorder::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        r.record(Duration::from_nanos(t * 1_000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.count(), 8_000);
    }

    #[test]
    fn snapshot_is_independent_copy() {
        let r = LatencyRecorder::new();
        r.record(Duration::from_micros(10));
        let snap = r.snapshot();
        r.record(Duration::from_micros(20));
        assert_eq!(snap.count(), 1);
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn clear_empties() {
        let r = LatencyRecorder::new();
        r.record(Duration::from_micros(1));
        r.clear();
        assert_eq!(r.count(), 0);
    }
}
