//! Bytecode-VM counters for the PJ compiler's register VM.
//!
//! The VM is a workload generator for every other subsystem: its `Dispatch`
//! ops feed target regions into the runtime's virtual targets and fork
//! `parallel` teams on the hot-team pool. These counters make the lowering
//! auditable, with a conservation law tying the compiler's view to the
//! runtime's:
//!
//! > **`target_dispatches == Σ (posted + inline)` over the run's targets**
//!
//! Every `target` directive the VM executes goes through exactly one
//! `Runtime::try_target` call, which the runtime accounts as either a posted
//! region or a member-inline short-circuit. A violation means the VM lowered
//! a directive without dispatching it (or dispatched one twice) — precisely
//! the kind of bug a dual-engine compiler can mask, because output-equality
//! tests still pass when the work ran on the wrong substrate.
//!
//! `ops_executed` and `frames_pushed` are batched in thread-locals by the
//! dispatch loop and flushed once per VM entry, so the per-op cost is a
//! register increment, not an atomic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative VM counters. Increments are relaxed atomic adds (batched for
/// the per-op counters) so recording does not perturb the dispatch loop.
#[derive(Debug, Default)]
pub struct VmCounters {
    ops_executed: AtomicU64,
    frames_pushed: AtomicU64,
    target_dispatches: AtomicU64,
    team_regions: AtomicU64,
}

impl VmCounters {
    /// An all-zero counter set, usable in `static` position.
    pub const fn new() -> Self {
        VmCounters {
            ops_executed: AtomicU64::new(0),
            frames_pushed: AtomicU64::new(0),
            target_dispatches: AtomicU64::new(0),
            team_regions: AtomicU64::new(0),
        }
    }

    /// Adds a batch of executed ops (flushed once per VM entry).
    pub fn add_ops(&self, n: u64) {
        if n > 0 {
            self.ops_executed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds a batch of pushed call frames (flushed once per VM entry).
    pub fn add_frames(&self, n: u64) {
        if n > 0 {
            self.frames_pushed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// A `target` directive dispatched through `Runtime::try_target`.
    pub fn record_target_dispatch(&self) {
        self.target_dispatches.fetch_add(1, Ordering::Relaxed);
    }

    /// A `parallel` / `parallel for` region forked a team.
    pub fn record_team_region(&self) {
        self.team_regions.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> VmStats {
        VmStats {
            ops_executed: self.ops_executed.load(Ordering::Relaxed),
            frames_pushed: self.frames_pushed.load(Ordering::Relaxed),
            target_dispatches: self.target_dispatches.load(Ordering::Relaxed),
            team_regions: self.team_regions.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter. Concurrent increments racing the reset land on
    /// either side of it; quiesce the VM first for exact figures.
    pub fn reset(&self) {
        self.ops_executed.store(0, Ordering::Relaxed);
        self.frames_pushed.store(0, Ordering::Relaxed);
        self.target_dispatches.store(0, Ordering::Relaxed);
        self.team_regions.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of [`VmCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Bytecode ops executed by dispatch loops.
    pub ops_executed: u64,
    /// Call frames pushed (one per chunk entry: calls, closures, loop bodies).
    pub frames_pushed: u64,
    /// `target` directives dispatched through the runtime.
    pub target_dispatches: u64,
    /// `parallel` / `parallel for` teams forked.
    pub team_regions: u64,
}

impl VmStats {
    /// Counter growth between an earlier snapshot and this one (saturating,
    /// so a reset in between reads as zero rather than wrapping).
    pub fn since(&self, earlier: &VmStats) -> VmStats {
        VmStats {
            ops_executed: self.ops_executed.saturating_sub(earlier.ops_executed),
            frames_pushed: self.frames_pushed.saturating_sub(earlier.frames_pushed),
            target_dispatches: self
                .target_dispatches
                .saturating_sub(earlier.target_dispatches),
            team_regions: self.team_regions.saturating_sub(earlier.team_regions),
        }
    }

    /// The VM conservation law: every `target` dispatch the VM recorded must
    /// be accounted by the runtime as posted or inline. `runtime_dispatches`
    /// is `Σ (posted + inline)` over the run's virtual targets (the
    /// compiler surfaces it as `RunOutput::target_posts`). Check after the
    /// run has quiesced.
    pub fn dispatches_balanced(&self, runtime_dispatches: u64) -> bool {
        self.target_dispatches == runtime_dispatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_balanced() {
        let c = VmCounters::new();
        let s = c.snapshot();
        assert_eq!(s, VmStats::default());
        assert!(s.dispatches_balanced(0));
    }

    #[test]
    fn increments_and_batches_are_visible() {
        let c = VmCounters::new();
        c.add_ops(128);
        c.add_ops(0); // zero batches are elided, not an error
        c.add_frames(3);
        c.record_target_dispatch();
        c.record_target_dispatch();
        c.record_team_region();
        let s = c.snapshot();
        assert_eq!(s.ops_executed, 128);
        assert_eq!(s.frames_pushed, 3);
        assert_eq!(s.target_dispatches, 2);
        assert_eq!(s.team_regions, 1);
        assert!(s.dispatches_balanced(2));
    }

    #[test]
    fn law_violation_is_detected() {
        let c = VmCounters::new();
        c.record_target_dispatch();
        assert!(
            !c.snapshot().dispatches_balanced(0),
            "dispatch the runtime never saw"
        );
        assert!(!c.snapshot().dispatches_balanced(2), "double-counted dispatch");
        assert!(c.snapshot().dispatches_balanced(1));
    }

    #[test]
    fn since_and_reset() {
        let c = VmCounters::new();
        c.add_ops(10);
        c.record_target_dispatch();
        let s1 = c.snapshot();
        c.add_ops(5);
        c.record_team_region();
        let delta = c.snapshot().since(&s1);
        assert_eq!(delta.ops_executed, 5);
        assert_eq!(delta.target_dispatches, 0);
        assert_eq!(delta.team_regions, 1);
        c.reset();
        assert_eq!(c.snapshot(), VmStats::default());
    }

    #[test]
    fn concurrent_batches_conserve_counts() {
        let c = std::sync::Arc::new(VmCounters::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add_ops(3);
                        c.record_target_dispatch();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.ops_executed, 12000);
        assert_eq!(s.target_dispatches, 4000);
        assert!(s.dispatches_balanced(4000));
    }
}
