//! Region/event recycling counters and their conservation law.
//!
//! The runtime recycles terminal `TargetRegion` allocations through a
//! bounded lock-free slab instead of dropping them, so the steady-state
//! posting path never touches the global allocator. These counters make the
//! slab auditable. Every region a program ever sees is in exactly one of
//! three places once constructed:
//!
//! * **live** — checked out: queued, running, or awaiting release (gauge);
//! * **recycled** — resting in the slab awaiting reuse (gauge);
//! * **dropped** — retired for good: slab full, panicked/poisoned, or still
//!   pinned by an outstanding handle at release time (cumulative).
//!
//! which gives the conservation law checked at quiesce:
//!
//! ```text
//! allocated == recycled + live + dropped
//! ```
//!
//! where `allocated` cumulatively counts *fresh* constructions only. A slab
//! hit increments `reused` instead — `reused / (allocated + reused)` is the
//! recycler's hit rate, and a steady-state hit rate of 1.0 is exactly the
//! "0 allocations per post" property the `post_hotpath` bench gates.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative + gauge counters for an allocation recycler. All updates are
/// relaxed atomics; exact equality in the conservation law is only expected
/// at quiesce (no region in flight).
#[derive(Debug, Default)]
pub struct AllocCounters {
    allocated: AtomicU64,
    reused: AtomicU64,
    dropped: AtomicU64,
    poisoned: AtomicU64,
    live: AtomicU64,
    recycled: AtomicU64,
}

impl AllocCounters {
    /// An all-zero counter set, usable in `static` position.
    pub const fn new() -> Self {
        AllocCounters {
            allocated: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            live: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
        }
    }

    /// A fresh region was constructed (slab miss). It starts live.
    pub fn record_fresh(&self) {
        self.allocated.fetch_add(1, Ordering::Relaxed);
        self.live.fetch_add(1, Ordering::Relaxed);
    }

    /// A region was taken from the slab (hit): recycled → live.
    pub fn record_reuse(&self) {
        self.reused.fetch_add(1, Ordering::Relaxed);
        self.recycled.fetch_sub(1, Ordering::Relaxed);
        self.live.fetch_add(1, Ordering::Relaxed);
    }

    /// A parked region was claimed from the slab but found still pinned at
    /// reset time (recycled → live); the caller retires it, and its drop
    /// records live → dropped. Not counted as a reuse — the claim produced
    /// no recycled region.
    pub fn record_unpark(&self) {
        self.recycled.fetch_sub(1, Ordering::Relaxed);
        self.live.fetch_add(1, Ordering::Relaxed);
    }

    /// A terminal region entered the slab: live → recycled.
    pub fn record_recycle(&self) {
        self.recycled.fetch_add(1, Ordering::Relaxed);
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    /// A live region was retired for good (slab full, pinned by a handle,
    /// or simply dropped by its owner): live → dropped.
    pub fn record_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    /// A panicked (poisoned) region was retired instead of recycled.
    /// Also counts as a [`record_drop`](Self::record_drop) — this counter
    /// only attributes the reason.
    pub fn record_poisoned(&self) {
        self.poisoned.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot for reporting.
    pub fn snapshot(&self) -> AllocStats {
        AllocStats {
            allocated: self.allocated.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
            live: self.live.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`AllocCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Fresh constructions (cumulative; slab misses).
    pub allocated: u64,
    /// Slab hits (cumulative; posts that allocated nothing).
    pub reused: u64,
    /// Regions retired for good (cumulative).
    pub dropped: u64,
    /// Of `dropped`, those retired because their body panicked.
    pub poisoned: u64,
    /// Regions currently checked out (gauge).
    pub live: u64,
    /// Regions currently resting in the slab (gauge).
    pub recycled: u64,
}

impl AllocStats {
    /// The conservation law `allocated == recycled + live + dropped`.
    /// Exact at quiesce; transiently off by in-flight transitions otherwise.
    pub fn conserved(&self) -> bool {
        self.allocated == self.recycled + self.live + self.dropped
    }

    /// Fraction of acquisitions served from the slab, in `[0, 1]`.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.allocated + self.reused;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }

    /// Cumulative-counter growth between an earlier snapshot and this one.
    /// Gauges (`live`, `recycled`) are carried from `self` unchanged — a
    /// gauge delta is not meaningful.
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocated: self.allocated.saturating_sub(earlier.allocated),
            reused: self.reused.saturating_sub(earlier.reused),
            dropped: self.dropped.saturating_sub(earlier.dropped),
            poisoned: self.poisoned.saturating_sub(earlier.poisoned),
            live: self.live,
            recycled: self.recycled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_conserved() {
        let c = AllocCounters::new();
        let s = c.snapshot();
        assert_eq!(s, AllocStats::default());
        assert!(s.conserved());
        assert_eq!(s.reuse_rate(), 0.0);
    }

    #[test]
    fn lifecycle_conserves() {
        let c = AllocCounters::new();
        // Two fresh regions; one recycles, one drops.
        c.record_fresh();
        c.record_fresh();
        c.record_recycle();
        c.record_drop();
        let s = c.snapshot();
        assert_eq!(s.allocated, 2);
        assert_eq!(s.recycled, 1);
        assert_eq!(s.live, 0);
        assert_eq!(s.dropped, 1);
        assert!(s.conserved());

        // Reuse the recycled one, then poison-drop it.
        c.record_reuse();
        c.record_poisoned();
        c.record_drop();
        let s = c.snapshot();
        assert_eq!(s.reused, 1);
        assert_eq!(s.poisoned, 1);
        assert_eq!(s.dropped, 2);
        assert!(s.conserved());
        assert_eq!(s.reuse_rate(), 1.0 / 3.0);
    }

    #[test]
    fn since_diffs_cumulative_keeps_gauges() {
        let c = AllocCounters::new();
        c.record_fresh();
        let s1 = c.snapshot();
        c.record_fresh();
        c.record_recycle();
        let d = c.snapshot().since(&s1);
        assert_eq!(d.allocated, 1);
        assert_eq!(d.live, 1, "gauge carried, not diffed");
        assert_eq!(d.recycled, 1);
    }
}
