//! Event timelines for debugging and for visual reconstructions of the
//! paper's Figure 1 (single- vs multi-threaded event processing).

use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// What happened at a timeline point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimelineEventKind {
    /// An event request was fired (the triangle in Figure 1).
    Fired,
    /// Handler execution began (start of the rectangle in Figure 1).
    HandlingStarted,
    /// Handler execution completed.
    HandlingFinished,
    /// A block was offloaded to a named virtual target.
    Offloaded(String),
    /// Free-form annotation.
    Note(String),
}

/// One recorded timeline entry.
#[derive(Clone, Debug)]
pub struct TimelineEvent {
    /// Offset from the timeline epoch.
    pub at: Duration,
    /// Correlation id (e.g. event/request sequence number).
    pub id: u64,
    /// Name of the thread or executor that recorded the entry.
    pub actor: String,
    /// What happened.
    pub kind: TimelineEventKind,
}

/// An append-only, thread-safe log of timestamped events.
///
/// Useful in tests to assert ordering properties ("request 2's handling
/// started before request 1's finished" is exactly the difference between
/// Figure 1(i) and 1(ii)).
pub struct Timeline {
    epoch: Instant,
    entries: Mutex<Vec<TimelineEvent>>,
}

impl Timeline {
    /// Creates a timeline whose epoch is "now".
    pub fn new() -> Self {
        Timeline {
            epoch: Instant::now(),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Appends an entry, timestamped against the epoch.
    pub fn record(&self, id: u64, actor: impl Into<String>, kind: TimelineEventKind) {
        let at = self.epoch.elapsed();
        self.entries.lock().push(TimelineEvent {
            at,
            id,
            actor: actor.into(),
            kind,
        });
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all entries in recording order.
    pub fn entries(&self) -> Vec<TimelineEvent> {
        self.entries.lock().clone()
    }

    /// Entries for a single correlation id, in recording order.
    pub fn for_id(&self, id: u64) -> Vec<TimelineEvent> {
        self.entries.lock().iter().filter(|e| e.id == id).cloned().collect()
    }

    /// Response time of `id`: `Fired` → `HandlingFinished`, if both present.
    pub fn response_time(&self, id: u64) -> Option<Duration> {
        let entries = self.entries.lock();
        let fired = entries
            .iter()
            .find(|e| e.id == id && e.kind == TimelineEventKind::Fired)?
            .at;
        let done = entries
            .iter()
            .rev()
            .find(|e| e.id == id && e.kind == TimelineEventKind::HandlingFinished)?
            .at;
        done.checked_sub(fired)
    }

    /// True if the handling intervals of `a` and `b` overlapped in time —
    /// the signature of multi-threaded event processing (Figure 1(ii)).
    pub fn handled_concurrently(&self, a: u64, b: u64) -> bool {
        let span = |id: u64| -> Option<(Duration, Duration)> {
            let entries = self.entries.lock();
            let s = entries
                .iter()
                .find(|e| e.id == id && e.kind == TimelineEventKind::HandlingStarted)?
                .at;
            let f = entries
                .iter()
                .rev()
                .find(|e| e.id == id && e.kind == TimelineEventKind::HandlingFinished)?
                .at;
            Some((s, f))
        };
        match (span(a), span(b)) {
            (Some((sa, fa)), Some((sb, fb))) => sa < fb && sb < fa,
            _ => false,
        }
    }
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotone_timestamps() {
        let t = Timeline::new();
        t.record(1, "edt", TimelineEventKind::Fired);
        t.record(1, "edt", TimelineEventKind::HandlingStarted);
        t.record(1, "edt", TimelineEventKind::HandlingFinished);
        let es = t.entries();
        assert_eq!(es.len(), 3);
        assert!(es.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn response_time_requires_both_endpoints() {
        let t = Timeline::new();
        t.record(7, "edt", TimelineEventKind::Fired);
        assert!(t.response_time(7).is_none());
        t.record(7, "worker", TimelineEventKind::HandlingFinished);
        assert!(t.response_time(7).is_some());
        assert!(t.response_time(99).is_none());
    }

    #[test]
    fn concurrency_detection() {
        let t = Timeline::new();
        t.record(1, "w1", TimelineEventKind::HandlingStarted);
        t.record(2, "w2", TimelineEventKind::HandlingStarted);
        t.record(1, "w1", TimelineEventKind::HandlingFinished);
        t.record(2, "w2", TimelineEventKind::HandlingFinished);
        assert!(t.handled_concurrently(1, 2));
    }

    #[test]
    fn sequential_handling_not_flagged_concurrent() {
        let t = Timeline::new();
        t.record(1, "edt", TimelineEventKind::HandlingStarted);
        std::thread::sleep(Duration::from_millis(1));
        t.record(1, "edt", TimelineEventKind::HandlingFinished);
        std::thread::sleep(Duration::from_millis(1));
        t.record(2, "edt", TimelineEventKind::HandlingStarted);
        std::thread::sleep(Duration::from_millis(1));
        t.record(2, "edt", TimelineEventKind::HandlingFinished);
        assert!(!t.handled_concurrently(1, 2));
    }

    #[test]
    fn for_id_filters() {
        let t = Timeline::new();
        t.record(1, "a", TimelineEventKind::Note("x".into()));
        t.record(2, "b", TimelineEventKind::Note("y".into()));
        t.record(1, "a", TimelineEventKind::Offloaded("worker".into()));
        assert_eq!(t.for_id(1).len(), 2);
        assert_eq!(t.for_id(2).len(), 1);
        assert!(t.for_id(3).is_empty());
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new();
        assert!(t.is_empty());
        assert!(!t.handled_concurrently(1, 2));
    }
}
