//! Admission-control counters for the overload-shedding HTTP front door.
//!
//! Under sustained overload a server that accepts every request collapses:
//! queue depth grows without bound and every response — including the ones
//! it *could* have served quickly — pays the full queueing delay. The
//! admission controller instead sheds excess requests with `429 Retry-After`
//! the moment queue depth crosses a configured threshold, keeping latency of
//! the *admitted* stream bounded. These counters make that decision
//! auditable: every request the server looked at is `offered`, and each one
//! is then either `admitted` (handed to a handler) or `shed` (answered 429
//! without running the handler). The conservation law
//! `offered == admitted + shed` holds at every quiescent point — a request
//! is never silently dropped and never double-counted.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative admission-control counters. Increments are single relaxed
/// atomic adds so the admission check stays off the serving hot path's
/// critical section.
#[derive(Debug, Default)]
pub struct AdmissionCounters {
    offered: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl AdmissionCounters {
    /// An all-zero counter set, usable in `static` position.
    pub const fn new() -> Self {
        AdmissionCounters {
            offered: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// A parsed request reached the admission decision point.
    pub fn record_offered(&self) {
        self.offered.fetch_add(1, Ordering::Relaxed);
    }

    /// The request was admitted and handed to its handler.
    pub fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// The request was shed with `429 Retry-After` (handler never ran).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> AdmissionStats {
        AdmissionStats {
            offered: self.offered.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter. Concurrent increments racing the reset land on
    /// either side of it; callers that need exact deltas should quiesce the
    /// server first, or diff two [`snapshot`](Self::snapshot)s instead.
    pub fn reset(&self) {
        self.offered.store(0, Ordering::Relaxed);
        self.admitted.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of [`AdmissionCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests that reached the admission decision point.
    pub offered: u64,
    /// Requests admitted to a handler.
    pub admitted: u64,
    /// Requests shed with `429 Retry-After`.
    pub shed: u64,
}

impl AdmissionStats {
    /// Conservation law: every offered request was either admitted or shed.
    /// Only meaningful at quiescent points (no admission decision in
    /// flight between its `offered` and `admitted`/`shed` increments).
    pub fn balanced(&self) -> bool {
        self.offered == self.admitted + self.shed
    }

    /// Fraction of offered requests shed (0.0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed as f64 / self.offered as f64
    }

    /// Counter growth between an earlier snapshot and this one (saturating,
    /// so a reset in between reads as zero rather than wrapping).
    pub fn since(&self, earlier: &AdmissionStats) -> AdmissionStats {
        AdmissionStats {
            offered: self.offered.saturating_sub(earlier.offered),
            admitted: self.admitted.saturating_sub(earlier.admitted),
            shed: self.shed.saturating_sub(earlier.shed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_balanced() {
        let c = AdmissionCounters::new();
        let s = c.snapshot();
        assert_eq!(s, AdmissionStats::default());
        assert!(s.balanced());
        assert_eq!(s.shed_rate(), 0.0);
    }

    #[test]
    fn conservation_law_holds_when_recorded_in_pairs() {
        let c = AdmissionCounters::new();
        for i in 0..100 {
            c.record_offered();
            if i % 3 == 0 {
                c.record_shed();
            } else {
                c.record_admitted();
            }
        }
        let s = c.snapshot();
        assert_eq!(s.offered, 100);
        assert!(s.balanced(), "offered {} != admitted {} + shed {}", s.offered, s.admitted, s.shed);
        assert!((s.shed_rate() - 0.34).abs() < 0.01);
    }

    #[test]
    fn imbalance_is_detectable() {
        let c = AdmissionCounters::new();
        c.record_offered();
        assert!(!c.snapshot().balanced());
        c.record_admitted();
        assert!(c.snapshot().balanced());
    }

    #[test]
    fn delta_and_reset() {
        let c = AdmissionCounters::new();
        c.record_offered();
        c.record_shed();
        let s1 = c.snapshot();
        c.record_offered();
        c.record_admitted();
        let d = c.snapshot().since(&s1);
        assert_eq!(d.offered, 1);
        assert_eq!(d.admitted, 1);
        assert_eq!(d.shed, 0);
        assert!(d.balanced());
        c.reset();
        assert_eq!(c.snapshot(), AdmissionStats::default());
    }

    #[test]
    fn concurrent_offer_admit_pairs_conserve() {
        let c = std::sync::Arc::new(AdmissionCounters::new());
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.record_offered();
                        if (t + i) % 2 == 0 {
                            c.record_admitted();
                        } else {
                            c.record_shed();
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.offered, 4000);
        assert!(s.balanced());
    }
}
