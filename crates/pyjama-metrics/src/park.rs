//! Park/wake counters for the runtime's wake-driven await barrier.
//!
//! The `await` logical barrier blocks on a per-barrier parker that task
//! completion, event posts and pool enqueues all notify. These counters make
//! that machinery observable: how often threads actually blocked, how often
//! a notification had to wake a blocked thread, and how many wakeups
//! delivered no work (spurious). A healthy barrier shows `wakes` close to
//! `parks` and a small `spurious_wakes` fraction; a regression back towards
//! polling would show up as `parks` vastly exceeding `notifies`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative parker counters. Increments are single relaxed atomic adds so
/// recording does not perturb the wake path being measured.
#[derive(Debug, Default)]
pub struct ParkCounters {
    parks: AtomicU64,
    wakes: AtomicU64,
    notifies: AtomicU64,
    spurious_wakes: AtomicU64,
}

impl ParkCounters {
    /// An all-zero counter set, usable in `static` position.
    pub const fn new() -> Self {
        ParkCounters {
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
            notifies: AtomicU64::new(0),
            spurious_wakes: AtomicU64::new(0),
        }
    }

    /// A thread blocked (entered a condvar wait) with nothing to do.
    pub fn record_park(&self) {
        self.parks.fetch_add(1, Ordering::Relaxed);
    }

    /// A blocked thread was released by a notification (not by a deadline).
    pub fn record_wake(&self) {
        self.wakes.fetch_add(1, Ordering::Relaxed);
    }

    /// A wake source fired (whether or not anyone was blocked).
    pub fn record_notify(&self) {
        self.notifies.fetch_add(1, Ordering::Relaxed);
    }

    /// A wakeup was consumed but the woken thread found neither completed
    /// work nor anything to help with.
    pub fn record_spurious(&self) {
        self.spurious_wakes.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> ParkStats {
        ParkStats {
            parks: self.parks.load(Ordering::Relaxed),
            wakes: self.wakes.load(Ordering::Relaxed),
            notifies: self.notifies.load(Ordering::Relaxed),
            spurious_wakes: self.spurious_wakes.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter. Concurrent increments racing the reset land on
    /// either side of it; callers that need exact deltas should quiesce the
    /// measured activity first, or diff two [`snapshot`](Self::snapshot)s
    /// instead.
    pub fn reset(&self) {
        self.parks.store(0, Ordering::Relaxed);
        self.wakes.store(0, Ordering::Relaxed);
        self.notifies.store(0, Ordering::Relaxed);
        self.spurious_wakes.store(0, Ordering::Relaxed);
    }
}

impl ParkStats {
    /// Counter growth between an earlier snapshot and this one (saturating,
    /// so a reset in between reads as zero rather than wrapping).
    pub fn since(&self, earlier: &ParkStats) -> ParkStats {
        ParkStats {
            parks: self.parks.saturating_sub(earlier.parks),
            wakes: self.wakes.saturating_sub(earlier.wakes),
            notifies: self.notifies.saturating_sub(earlier.notifies),
            spurious_wakes: self.spurious_wakes.saturating_sub(earlier.spurious_wakes),
        }
    }
}

/// Snapshot of [`ParkCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParkStats {
    /// Times a thread actually blocked awaiting a wakeup.
    pub parks: u64,
    /// Times a blocked thread was released by a notification.
    pub wakes: u64,
    /// Total notifications sent by wake sources.
    pub notifies: u64,
    /// Wakeups that delivered no work.
    pub spurious_wakes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let c = ParkCounters::new();
        assert_eq!(c.snapshot(), ParkStats::default());
    }

    #[test]
    fn increments_are_visible_in_snapshot() {
        let c = ParkCounters::new();
        c.record_park();
        c.record_park();
        c.record_wake();
        c.record_notify();
        c.record_spurious();
        let s = c.snapshot();
        assert_eq!(s.parks, 2);
        assert_eq!(s.wakes, 1);
        assert_eq!(s.notifies, 1);
        assert_eq!(s.spurious_wakes, 1);
    }

    #[test]
    fn reset_zeroes_and_snapshot_delta_works() {
        let c = ParkCounters::new();
        c.record_park();
        c.record_notify();
        let s1 = c.snapshot();
        c.record_park();
        c.record_wake();
        let delta = c.snapshot().since(&s1);
        assert_eq!(delta.parks, 1);
        assert_eq!(delta.wakes, 1);
        assert_eq!(delta.notifies, 0);
        c.reset();
        assert_eq!(c.snapshot(), ParkStats::default());
    }

    #[test]
    fn concurrent_increments_conserve_counts() {
        let c = std::sync::Arc::new(ParkCounters::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_notify();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().notifies, 4000);
    }
}
