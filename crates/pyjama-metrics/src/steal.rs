//! Scheduler counters for the work-stealing worker pools.
//!
//! The worker virtual target schedules through three sources — the owner's
//! per-thread deque (LIFO), sibling deques (steals), and a global FIFO
//! injector for external submissions. These counters make the distribution
//! observable: a healthy pool under member-produced load shows mostly
//! `local_pops`; external load drains through `injector_pops`; imbalance
//! shows up as `steals`. A high `steal_attempts`-to-`steals` ratio means
//! threads are scanning empty siblings — the pool is starved, not unbalanced.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative work-stealing scheduler counters. Increments are single
/// relaxed atomic adds so recording does not perturb the paths measured.
#[derive(Debug, Default)]
pub struct StealCounters {
    local_pops: AtomicU64,
    steals: AtomicU64,
    steal_attempts: AtomicU64,
    injector_pops: AtomicU64,
}

impl StealCounters {
    /// An all-zero counter set, usable in `static` position.
    pub const fn new() -> Self {
        StealCounters {
            local_pops: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            steal_attempts: AtomicU64::new(0),
            injector_pops: AtomicU64::new(0),
        }
    }

    /// A thread took a task from its own deque.
    pub fn record_local_pop(&self) {
        self.local_pops.fetch_add(1, Ordering::Relaxed);
    }

    /// A thread took a task from a sibling's deque.
    pub fn record_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// A thread probed one sibling deque (hit or miss).
    pub fn record_steal_attempt(&self) {
        self.steal_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// A thread took a task from the global injector.
    pub fn record_injector_pop(&self) {
        self.injector_pops.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> StealStats {
        StealStats {
            local_pops: self.local_pops.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter. Concurrent increments racing the reset land on
    /// either side of it; callers that need exact deltas should quiesce the
    /// measured pool first, or diff two [`snapshot`](Self::snapshot)s
    /// instead.
    pub fn reset(&self) {
        self.local_pops.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.steal_attempts.store(0, Ordering::Relaxed);
        self.injector_pops.store(0, Ordering::Relaxed);
    }
}

impl StealStats {
    /// Counter growth between an earlier snapshot and this one (saturating,
    /// so a reset in between reads as zero rather than wrapping).
    pub fn since(&self, earlier: &StealStats) -> StealStats {
        StealStats {
            local_pops: self.local_pops.saturating_sub(earlier.local_pops),
            steals: self.steals.saturating_sub(earlier.steals),
            steal_attempts: self.steal_attempts.saturating_sub(earlier.steal_attempts),
            injector_pops: self.injector_pops.saturating_sub(earlier.injector_pops),
        }
    }

    /// Total tasks executed by the pool this snapshot describes: every task
    /// leaves through exactly one of the three sources, so
    /// `executed == local_pops + steals + injector_pops` is the scheduler's
    /// conservation law.
    pub fn executed(&self) -> u64 {
        self.local_pops + self.steals + self.injector_pops
    }
}

/// Snapshot of [`StealCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Tasks taken from the owning thread's deque.
    pub local_pops: u64,
    /// Tasks taken from a sibling thread's deque.
    pub steals: u64,
    /// Sibling deques probed, successfully or not.
    pub steal_attempts: u64,
    /// Tasks taken from the global FIFO injector.
    pub injector_pops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let c = StealCounters::new();
        assert_eq!(c.snapshot(), StealStats::default());
    }

    #[test]
    fn increments_are_visible_in_snapshot() {
        let c = StealCounters::new();
        c.record_local_pop();
        c.record_local_pop();
        c.record_steal();
        c.record_steal_attempt();
        c.record_steal_attempt();
        c.record_steal_attempt();
        c.record_injector_pop();
        let s = c.snapshot();
        assert_eq!(s.local_pops, 2);
        assert_eq!(s.steals, 1);
        assert_eq!(s.steal_attempts, 3);
        assert_eq!(s.injector_pops, 1);
    }

    #[test]
    fn reset_zeroes_and_snapshot_delta_works() {
        let c = StealCounters::new();
        c.record_local_pop();
        c.record_steal();
        let s1 = c.snapshot();
        c.record_injector_pop();
        c.record_steal_attempt();
        let delta = c.snapshot().since(&s1);
        assert_eq!(delta.injector_pops, 1);
        assert_eq!(delta.steal_attempts, 1);
        assert_eq!(delta.local_pops, 0);
        assert_eq!(delta.executed(), 1);
        c.reset();
        assert_eq!(c.snapshot(), StealStats::default());
    }

    #[test]
    fn concurrent_increments_conserve_counts() {
        let c = std::sync::Arc::new(StealCounters::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_steal();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().steals, 4000);
    }
}
