//! Scheduler counters for the work-stealing worker pools.
//!
//! The worker virtual target schedules through three sources — the owner's
//! per-thread deque (LIFO), sibling deques (steals), and a global FIFO
//! injector for external submissions. These counters make the distribution
//! observable: a healthy pool under member-produced load shows mostly
//! `local_pops`; external load drains through `injector_pops`; imbalance
//! shows up as `steals`. A high `steal_attempts`-to-`steals` ratio means
//! threads are scanning empty siblings — the pool is starved, not unbalanced.
//!
//! Batching (PR 10) adds a second dimension: both acquisition paths can now
//! take *several* tasks per synchronisation — `steal_half` claims up to half
//! the victim's run under per-item CAS, and the injector drains up to a small
//! batch under one lock acquisition. The per-task counters above still count
//! every executed task exactly once (the conservation law
//! `executed == local_pops + steals + injector_pops` is unchanged); the batch
//! counters count *synchronisation events*, so `injector_pops /
//! injector_batches` and `(steals + steal_moved) / steal_batches` are the
//! realised amortisation factors.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative work-stealing scheduler counters. Increments are single
/// relaxed atomic adds so recording does not perturb the paths measured.
#[derive(Debug, Default)]
pub struct StealCounters {
    local_pops: AtomicU64,
    steals: AtomicU64,
    steal_attempts: AtomicU64,
    injector_pops: AtomicU64,
    steal_batches: AtomicU64,
    steal_moved: AtomicU64,
    injector_batches: AtomicU64,
    injector_moved: AtomicU64,
}

impl StealCounters {
    /// An all-zero counter set, usable in `static` position.
    pub const fn new() -> Self {
        StealCounters {
            local_pops: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            steal_attempts: AtomicU64::new(0),
            injector_pops: AtomicU64::new(0),
            steal_batches: AtomicU64::new(0),
            steal_moved: AtomicU64::new(0),
            injector_batches: AtomicU64::new(0),
            injector_moved: AtomicU64::new(0),
        }
    }

    /// A thread took a task from its own deque.
    pub fn record_local_pop(&self) {
        self.local_pops.fetch_add(1, Ordering::Relaxed);
    }

    /// A thread took a task from a sibling's deque.
    pub fn record_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// A thread probed one sibling deque (hit or miss).
    pub fn record_steal_attempt(&self) {
        self.steal_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// A thread took a task from the global injector.
    pub fn record_injector_pop(&self) {
        self.injector_pops.fetch_add(1, Ordering::Relaxed);
    }

    /// One successful `steal_half`: a batch of `1 + moved` tasks claimed
    /// from a victim — one to run now (counted separately by
    /// [`record_steal`](Self::record_steal)) and `moved` re-queued on the
    /// thief's own deque (they count as `local_pops` when popped).
    pub fn record_steal_batch(&self, moved: u64) {
        self.steal_batches.fetch_add(1, Ordering::Relaxed);
        self.steal_moved.fetch_add(moved, Ordering::Relaxed);
    }

    /// One injector drain: `1 + moved` tasks taken under a single lock
    /// acquisition — one to run now plus `moved` buffered for the next
    /// dispatch turns (each counted by
    /// [`record_injector_pop`](Self::record_injector_pop) when it runs).
    pub fn record_injector_batch(&self, moved: u64) {
        self.injector_batches.fetch_add(1, Ordering::Relaxed);
        self.injector_moved.fetch_add(moved, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> StealStats {
        StealStats {
            local_pops: self.local_pops.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
            steal_batches: self.steal_batches.load(Ordering::Relaxed),
            steal_moved: self.steal_moved.load(Ordering::Relaxed),
            injector_batches: self.injector_batches.load(Ordering::Relaxed),
            injector_moved: self.injector_moved.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter. Concurrent increments racing the reset land on
    /// either side of it; callers that need exact deltas should quiesce the
    /// measured pool first, or diff two [`snapshot`](Self::snapshot)s
    /// instead.
    pub fn reset(&self) {
        self.local_pops.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.steal_attempts.store(0, Ordering::Relaxed);
        self.injector_pops.store(0, Ordering::Relaxed);
        self.steal_batches.store(0, Ordering::Relaxed);
        self.steal_moved.store(0, Ordering::Relaxed);
        self.injector_batches.store(0, Ordering::Relaxed);
        self.injector_moved.store(0, Ordering::Relaxed);
    }
}

impl StealStats {
    /// Counter growth between an earlier snapshot and this one (saturating,
    /// so a reset in between reads as zero rather than wrapping).
    pub fn since(&self, earlier: &StealStats) -> StealStats {
        StealStats {
            local_pops: self.local_pops.saturating_sub(earlier.local_pops),
            steals: self.steals.saturating_sub(earlier.steals),
            steal_attempts: self.steal_attempts.saturating_sub(earlier.steal_attempts),
            injector_pops: self.injector_pops.saturating_sub(earlier.injector_pops),
            steal_batches: self.steal_batches.saturating_sub(earlier.steal_batches),
            steal_moved: self.steal_moved.saturating_sub(earlier.steal_moved),
            injector_batches: self.injector_batches.saturating_sub(earlier.injector_batches),
            injector_moved: self.injector_moved.saturating_sub(earlier.injector_moved),
        }
    }

    /// Total tasks executed by the pool this snapshot describes: every task
    /// leaves through exactly one of the three sources, so
    /// `executed == local_pops + steals + injector_pops` is the scheduler's
    /// conservation law. Batch-moved tasks are *not* a fourth source: a
    /// steal-moved task runs as a later `local_pop`, an injector-moved task
    /// runs as a later `injector_pop`.
    pub fn executed(&self) -> u64 {
        self.local_pops + self.steals + self.injector_pops
    }

    /// Batch-accounting consistency: every batch contributes exactly one
    /// directly-run task, so the per-task counters must dominate the batch
    /// counters (`steals >= steal_batches`,
    /// `injector_pops >= injector_batches + injector_moved` once the moved
    /// tasks have run). Checked at quiesce by the pool's stress tests.
    pub fn batches_consistent(&self) -> bool {
        self.steals >= self.steal_batches
            && self.local_pops >= self.steal_moved
            && self.injector_pops >= self.injector_batches
    }
}

/// Snapshot of [`StealCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Tasks taken from the owning thread's deque.
    pub local_pops: u64,
    /// Tasks taken from a sibling thread's deque and run directly.
    pub steals: u64,
    /// Sibling deques probed, successfully or not.
    pub steal_attempts: u64,
    /// Tasks taken from the global FIFO injector.
    pub injector_pops: u64,
    /// Successful `steal_half` batches (each also counts one `steals`).
    pub steal_batches: u64,
    /// Tasks a `steal_half` moved onto the thief's own deque (they execute
    /// as `local_pops` later).
    pub steal_moved: u64,
    /// Injector drains that took at least one task under one lock hold.
    pub injector_batches: u64,
    /// Tasks an injector drain buffered beyond the first (they execute as
    /// `injector_pops` when dispatched).
    pub injector_moved: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let c = StealCounters::new();
        assert_eq!(c.snapshot(), StealStats::default());
    }

    #[test]
    fn increments_are_visible_in_snapshot() {
        let c = StealCounters::new();
        c.record_local_pop();
        c.record_local_pop();
        c.record_steal();
        c.record_steal_attempt();
        c.record_steal_attempt();
        c.record_steal_attempt();
        c.record_injector_pop();
        let s = c.snapshot();
        assert_eq!(s.local_pops, 2);
        assert_eq!(s.steals, 1);
        assert_eq!(s.steal_attempts, 3);
        assert_eq!(s.injector_pops, 1);
    }

    #[test]
    fn reset_zeroes_and_snapshot_delta_works() {
        let c = StealCounters::new();
        c.record_local_pop();
        c.record_steal();
        let s1 = c.snapshot();
        c.record_injector_pop();
        c.record_steal_attempt();
        let delta = c.snapshot().since(&s1);
        assert_eq!(delta.injector_pops, 1);
        assert_eq!(delta.steal_attempts, 1);
        assert_eq!(delta.local_pops, 0);
        assert_eq!(delta.executed(), 1);
        c.reset();
        assert_eq!(c.snapshot(), StealStats::default());
    }

    #[test]
    fn batch_counters_track_amortisation() {
        let c = StealCounters::new();
        // A steal_half that claimed 4 tasks: 1 run directly, 3 moved.
        c.record_steal();
        c.record_steal_batch(3);
        // The 3 moved tasks later pop locally.
        for _ in 0..3 {
            c.record_local_pop();
        }
        // An injector drain of 2: 1 run now, 1 buffered, both injector_pops.
        c.record_injector_pop();
        c.record_injector_batch(1);
        c.record_injector_pop();
        let s = c.snapshot();
        assert_eq!(s.steal_batches, 1);
        assert_eq!(s.steal_moved, 3);
        assert_eq!(s.injector_batches, 1);
        assert_eq!(s.injector_moved, 1);
        assert_eq!(s.executed(), 1 + 3 + 2);
        assert!(s.batches_consistent());
    }

    #[test]
    fn concurrent_increments_conserve_counts() {
        let c = std::sync::Arc::new(StealCounters::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_steal();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().steals, 4000);
    }
}
