//! Measurement infrastructure for the Pyjama-RS reproduction of
//! *Towards an Event-Driven Programming Model for OpenMP* (ICPP 2016).
//!
//! The paper evaluates its programming model with two kinds of metrics:
//!
//! * **Response time** of GUI events — the "time flow from the event firing
//!   to the finish of its event handling" (§V-A). [`LatencyRecorder`]
//!   captures individual samples, and [`Histogram`] summarises them
//!   (mean, percentiles).
//! * **Throughput** of an HTTP service — "responses/sec" under a constant
//!   load of virtual users (§V-B). [`ThroughputMeter`] counts completions
//!   over a wall-clock window.
//!
//! The crate additionally provides an [`OccupancyTracker`] used to quantify
//! *responsiveness* directly: the fraction of wall-clock time the event
//! dispatch thread (EDT) spends busy inside handlers, which is the quantity
//! the paper's offloading directives are designed to minimise,
//! [`ParkCounters`] observing the runtime's wake-driven await barrier
//! (parks, wakeups, spurious wakeups), [`StealCounters`] observing the
//! worker pools' work-stealing scheduler (local pops, steals, injector
//! drains), [`ConnCounters`] observing the HTTP server's persistent
//! connections (accepts, reuse, pipelining, idle evictions),
//! [`ReactorCounters`] observing the epoll readiness reactor (registrations,
//! re-arms, readiness events dispatched vs spurious — with a conservation
//! law), [`TeamCounters`] observing the fork-join `omp parallel` thread
//! pool (regions forked, threads spawned vs reused, barrier spins vs parks),
//! [`VmCounters`] observing the PJ bytecode VM (ops executed, frames
//! pushed, target/team dispatches — with a conservation law against the
//! runtime's posted+inline accounting), [`AdmissionCounters`] observing the
//! overload-shedding front door (`offered == admitted + shed`), and
//! [`ReconfigCounters`] observing the live control plane (snapshots
//! applied/rejected, current generation).
//!
//! Everything here is synchronisation-cheap (atomics or a short
//! `parking_lot` critical section) so that recording does not perturb the
//! systems being measured.

pub mod admission;
pub mod alloc;
pub mod conn;
pub mod histogram;
pub mod latency;
pub mod occupancy;
pub mod park;
pub mod reactor;
pub mod reconfig;
pub mod stats;
pub mod steal;
pub mod team;
pub mod throughput;
pub mod timeline;
pub mod vm;

pub use admission::{AdmissionCounters, AdmissionStats};
pub use alloc::{AllocCounters, AllocStats};
pub use conn::{ConnCounters, ConnStats};
pub use histogram::Histogram;
pub use latency::LatencyRecorder;
pub use occupancy::OccupancyTracker;
pub use park::{ParkCounters, ParkStats};
pub use reactor::{ReactorCounters, ReactorStats};
pub use reconfig::{ReconfigCounters, ReconfigStats};
pub use stats::{OnlineStats, Summary};
pub use steal::{StealCounters, StealStats};
pub use team::{TeamCounters, TeamStats};
pub use throughput::ThroughputMeter;
pub use timeline::{Timeline, TimelineEvent, TimelineEventKind};
pub use vm::{VmCounters, VmStats};
