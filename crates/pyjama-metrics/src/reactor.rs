//! Readiness-reactor counters for the epoll serving policy.
//!
//! The reactor inverts the serving pipeline: instead of worker threads
//! blocking in `read`, one reactor thread owns every accepted socket and
//! turns kernel readiness into posted target regions. These counters make
//! that event flow auditable end to end, with a conservation law analogous
//! to the scheduler's `executed == local + steals + injector`:
//!
//! > **`readiness_events == dispatched + spurious_ready`**
//!
//! Every readiness notification the reactor consumes either dispatched a
//! registered connection into the worker pool or hit a token with no
//! registration behind it (possible only on the portable fallback or after
//! an eviction raced the notification; structurally zero on the Linux
//! epoll path, where deregistration happens on the reactor thread itself).
//! A violation means readiness notifications are being dropped or double
//! counted — exactly the class of bug an ownership-transfer reactor can
//! hide for a long time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative reactor counters. Increments are single relaxed atomic adds
/// so recording does not perturb the readiness hot path.
#[derive(Debug, Default)]
pub struct ReactorCounters {
    registered: AtomicU64,
    rearms_read: AtomicU64,
    rearms_write: AtomicU64,
    readiness_events: AtomicU64,
    dispatched: AtomicU64,
    spurious_ready: AtomicU64,
    evicted_idle: AtomicU64,
    wakeups: AtomicU64,
}

impl ReactorCounters {
    /// An all-zero counter set, usable in `static` position.
    pub const fn new() -> Self {
        ReactorCounters {
            registered: AtomicU64::new(0),
            rearms_read: AtomicU64::new(0),
            rearms_write: AtomicU64::new(0),
            readiness_events: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            spurious_ready: AtomicU64::new(0),
            evicted_idle: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        }
    }

    /// A connection entered the reactor for the first time.
    pub fn record_registered(&self) {
        self.registered.fetch_add(1, Ordering::Relaxed);
    }

    /// A served connection re-registered for read readiness (waiting for
    /// its next request, or for the rest of a partially-received one).
    pub fn record_rearm_read(&self) {
        self.rearms_read.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection re-registered for write readiness after a short write
    /// (`EPOLLOUT` re-arm: the response did not fit the socket buffer).
    pub fn record_rearm_write(&self) {
        self.rearms_write.fetch_add(1, Ordering::Relaxed);
    }

    /// The reactor consumed one readiness notification for a connection
    /// token (wake-pipe traffic is counted separately as `wakeups`).
    pub fn record_readiness_event(&self) {
        self.readiness_events.fetch_add(1, Ordering::Relaxed);
    }

    /// A readiness notification dispatched its connection into the pool.
    pub fn record_dispatched(&self) {
        self.dispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// A readiness notification found no registration behind its token.
    pub fn record_spurious_ready(&self) {
        self.spurious_ready.fetch_add(1, Ordering::Relaxed);
    }

    /// An idle keep-alive connection was evicted at its deadline.
    pub fn record_evicted_idle(&self) {
        self.evicted_idle.fetch_add(1, Ordering::Relaxed);
    }

    /// The reactor was woken through its wake pipe (registration or stop).
    pub fn record_wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> ReactorStats {
        ReactorStats {
            registered: self.registered.load(Ordering::Relaxed),
            rearms_read: self.rearms_read.load(Ordering::Relaxed),
            rearms_write: self.rearms_write.load(Ordering::Relaxed),
            readiness_events: self.readiness_events.load(Ordering::Relaxed),
            dispatched: self.dispatched.load(Ordering::Relaxed),
            spurious_ready: self.spurious_ready.load(Ordering::Relaxed),
            evicted_idle: self.evicted_idle.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter. Concurrent increments racing the reset land on
    /// either side of it; quiesce the reactor first for exact figures.
    pub fn reset(&self) {
        self.registered.store(0, Ordering::Relaxed);
        self.rearms_read.store(0, Ordering::Relaxed);
        self.rearms_write.store(0, Ordering::Relaxed);
        self.readiness_events.store(0, Ordering::Relaxed);
        self.dispatched.store(0, Ordering::Relaxed);
        self.spurious_ready.store(0, Ordering::Relaxed);
        self.evicted_idle.store(0, Ordering::Relaxed);
        self.wakeups.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of [`ReactorCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Connections registered with the reactor for the first time.
    pub registered: u64,
    /// Read-interest re-registrations (next request / rest of a request).
    pub rearms_read: u64,
    /// Write-interest re-registrations after a short response write.
    pub rearms_write: u64,
    /// Readiness notifications consumed for connection tokens.
    pub readiness_events: u64,
    /// Notifications that dispatched a connection into the worker pool.
    pub dispatched: u64,
    /// Notifications whose token had no registration behind it.
    pub spurious_ready: u64,
    /// Idle connections evicted at their deadline.
    pub evicted_idle: u64,
    /// Wake-pipe wakeups (registrations and stop).
    pub wakeups: u64,
}

impl ReactorStats {
    /// Counter growth between an earlier snapshot and this one (saturating,
    /// so a reset in between reads as zero rather than wrapping).
    pub fn since(&self, earlier: &ReactorStats) -> ReactorStats {
        ReactorStats {
            registered: self.registered.saturating_sub(earlier.registered),
            rearms_read: self.rearms_read.saturating_sub(earlier.rearms_read),
            rearms_write: self.rearms_write.saturating_sub(earlier.rearms_write),
            readiness_events: self
                .readiness_events
                .saturating_sub(earlier.readiness_events),
            dispatched: self.dispatched.saturating_sub(earlier.dispatched),
            spurious_ready: self.spurious_ready.saturating_sub(earlier.spurious_ready),
            evicted_idle: self.evicted_idle.saturating_sub(earlier.evicted_idle),
            wakeups: self.wakeups.saturating_sub(earlier.wakeups),
        }
    }

    /// Total re-registrations, whatever the interest.
    pub fn rearms(&self) -> u64 {
        self.rearms_read + self.rearms_write
    }

    /// The reactor conservation law: every consumed readiness notification
    /// either dispatched a connection or was spurious. Check only when the
    /// reactor is quiescent (shut down, or no I/O in flight).
    pub fn readiness_balanced(&self) -> bool {
        self.readiness_events == self.dispatched + self.spurious_ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_balanced() {
        let c = ReactorCounters::new();
        let s = c.snapshot();
        assert_eq!(s, ReactorStats::default());
        assert!(s.readiness_balanced());
    }

    #[test]
    fn increments_are_visible_and_law_holds() {
        let c = ReactorCounters::new();
        c.record_registered();
        c.record_rearm_read();
        c.record_rearm_read();
        c.record_rearm_write();
        for _ in 0..4 {
            c.record_readiness_event();
            c.record_dispatched();
        }
        c.record_readiness_event();
        c.record_spurious_ready();
        c.record_evicted_idle();
        c.record_wakeup();
        let s = c.snapshot();
        assert_eq!(s.registered, 1);
        assert_eq!(s.rearms_read, 2);
        assert_eq!(s.rearms_write, 1);
        assert_eq!(s.rearms(), 3);
        assert_eq!(s.readiness_events, 5);
        assert_eq!(s.dispatched, 4);
        assert_eq!(s.spurious_ready, 1);
        assert_eq!(s.evicted_idle, 1);
        assert_eq!(s.wakeups, 1);
        assert!(s.readiness_balanced());
    }

    #[test]
    fn law_violation_is_detected() {
        let c = ReactorCounters::new();
        c.record_readiness_event();
        assert!(!c.snapshot().readiness_balanced(), "consumed but not accounted");
        c.record_dispatched();
        assert!(c.snapshot().readiness_balanced());
    }

    #[test]
    fn since_and_reset() {
        let c = ReactorCounters::new();
        c.record_registered();
        c.record_readiness_event();
        c.record_dispatched();
        let s1 = c.snapshot();
        c.record_readiness_event();
        c.record_spurious_ready();
        let delta = c.snapshot().since(&s1);
        assert_eq!(delta.registered, 0);
        assert_eq!(delta.readiness_events, 1);
        assert_eq!(delta.spurious_ready, 1);
        assert!(delta.readiness_balanced());
        c.reset();
        assert_eq!(c.snapshot(), ReactorStats::default());
    }

    #[test]
    fn concurrent_increments_conserve_counts() {
        let c = std::sync::Arc::new(ReactorCounters::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_readiness_event();
                        c.record_dispatched();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.readiness_events, 4000);
        assert!(s.readiness_balanced());
    }
}
