//! Reconfiguration counters for the live control plane.
//!
//! A running server is retuned by publishing immutable config snapshots
//! through `pyjama-control`; each successful publish bumps a monotonically
//! increasing *generation*. These counters record the control plane's
//! decision history — snapshots applied, snapshots rejected by validation,
//! and subscriber callbacks notified — plus the current generation, so a
//! test (or the `/admin` stats endpoint) can assert "exactly one
//! reconfiguration was applied during this window" without reaching into
//! the control plane's internals.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative control-plane counters. Increments are single relaxed atomic
/// adds; reconfiguration is rare, but the counters follow the same
/// zero-perturbation idiom as the data-plane counter sets.
#[derive(Debug, Default)]
pub struct ReconfigCounters {
    applied: AtomicU64,
    rejected: AtomicU64,
    subscribers_notified: AtomicU64,
    generation: AtomicU64,
}

impl ReconfigCounters {
    /// An all-zero counter set, usable in `static` position.
    pub const fn new() -> Self {
        ReconfigCounters {
            applied: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            subscribers_notified: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// A validated snapshot was published; `generation` is the new current
    /// generation.
    pub fn record_applied(&self, generation: u64) {
        self.applied.fetch_add(1, Ordering::Relaxed);
        self.generation.store(generation, Ordering::Relaxed);
    }

    /// A candidate snapshot failed validation and was not published.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// One subscriber callback was run for a published snapshot.
    pub fn record_subscriber_notified(&self) {
        self.subscribers_notified.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> ReconfigStats {
        ReconfigStats {
            applied: self.applied.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            subscribers_notified: self.subscribers_notified.load(Ordering::Relaxed),
            generation: self.generation.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the event counters. The `generation` value is *not* reset —
    /// it mirrors the control plane's monotonic generation, which never
    /// goes backwards while the process lives.
    pub fn reset(&self) {
        self.applied.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.subscribers_notified.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of [`ReconfigCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReconfigStats {
    /// Snapshots validated and published.
    pub applied: u64,
    /// Snapshots rejected by validation.
    pub rejected: u64,
    /// Subscriber callbacks run across all published snapshots.
    pub subscribers_notified: u64,
    /// Current config generation (0 = still on the initial config).
    pub generation: u64,
}

impl ReconfigStats {
    /// Counter growth between an earlier snapshot and this one. The
    /// `generation` field carries the *current* generation, not a delta.
    pub fn since(&self, earlier: &ReconfigStats) -> ReconfigStats {
        ReconfigStats {
            applied: self.applied.saturating_sub(earlier.applied),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            subscribers_notified: self
                .subscribers_notified
                .saturating_sub(earlier.subscribers_notified),
            generation: self.generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let c = ReconfigCounters::new();
        assert_eq!(c.snapshot(), ReconfigStats::default());
    }

    #[test]
    fn applied_tracks_generation() {
        let c = ReconfigCounters::new();
        c.record_applied(1);
        c.record_rejected();
        c.record_applied(2);
        c.record_subscriber_notified();
        c.record_subscriber_notified();
        let s = c.snapshot();
        assert_eq!(s.applied, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.subscribers_notified, 2);
        assert_eq!(s.generation, 2);
    }

    #[test]
    fn reset_preserves_generation() {
        let c = ReconfigCounters::new();
        c.record_applied(7);
        c.reset();
        let s = c.snapshot();
        assert_eq!(s.applied, 0);
        assert_eq!(s.generation, 7);
    }

    #[test]
    fn since_reports_window_deltas_and_current_generation() {
        let c = ReconfigCounters::new();
        c.record_applied(1);
        let s1 = c.snapshot();
        c.record_applied(2);
        c.record_rejected();
        let d = c.snapshot().since(&s1);
        assert_eq!(d.applied, 1);
        assert_eq!(d.rejected, 1);
        assert_eq!(d.generation, 2);
    }
}
