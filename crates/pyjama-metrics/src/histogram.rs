//! Log-bucketed latency histogram.
//!
//! A fixed-size, HDR-style histogram over `u64` values (nanoseconds in
//! practice). Buckets grow geometrically: values below [`Histogram::LINEAR_LIMIT`]
//! are recorded exactly (1 ns resolution is irrelevant for our use, so the
//! linear region uses 1 µs steps), and beyond that each power-of-two range is
//! split into [`Histogram::SUB_BUCKETS`] sub-buckets, giving a bounded
//! relative error of `1 / SUB_BUCKETS`.

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Recording is `O(1)` and allocation-free after construction. Percentile
/// queries walk the bucket array.
#[derive(Clone)]
pub struct Histogram {
    /// Linear region: `LINEAR_BUCKETS` buckets of `LINEAR_STEP` each.
    linear: Vec<u64>,
    /// Geometric region: for each power-of-two range, `SUB_BUCKETS` buckets.
    geometric: Vec<u64>,
    count: u64,
    total: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Width of one linear bucket: 1 µs.
    pub const LINEAR_STEP: u64 = 1_000;
    /// Number of linear buckets (covers 0..1 ms exactly to 1 µs).
    pub const LINEAR_BUCKETS: usize = 1_000;
    /// Upper bound of the linear region (1 ms).
    pub const LINEAR_LIMIT: u64 = Self::LINEAR_STEP * Self::LINEAR_BUCKETS as u64;
    /// Sub-buckets per power-of-two range in the geometric region.
    pub const SUB_BUCKETS: usize = 64;
    /// Number of power-of-two ranges above `LINEAR_LIMIT` (covers > 10^4 s).
    pub const RANGES: usize = 44;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            linear: vec![0; Self::LINEAR_BUCKETS],
            geometric: vec![0; Self::RANGES * Self::SUB_BUCKETS],
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.total += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let idx = Self::bucket_index(value);
        match idx {
            BucketIndex::Linear(i) => self.linear[i] += 1,
            BucketIndex::Geometric(i) => self.geometric[i] += 1,
        }
    }

    /// Records `n` occurrences of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.total += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        match Self::bucket_index(value) {
            BucketIndex::Linear(i) => self.linear[i] += n,
            BucketIndex::Geometric(i) => self.geometric[i] += n,
        }
    }

    fn bucket_index(value: u64) -> BucketIndex {
        if value < Self::LINEAR_LIMIT {
            BucketIndex::Linear((value / Self::LINEAR_STEP) as usize)
        } else {
            // Position within the geometric region. Range r covers
            // [LINEAR_LIMIT * 2^r, LINEAR_LIMIT * 2^(r+1)).
            let ratio = value / Self::LINEAR_LIMIT;
            let range = (63 - ratio.leading_zeros()) as usize;
            let range = range.min(Self::RANGES - 1);
            let base = Self::LINEAR_LIMIT << range;
            let width = base / Self::SUB_BUCKETS as u64; // sub-bucket width
            let sub = ((value.saturating_sub(base)) / width.max(1)) as usize;
            let sub = sub.min(Self::SUB_BUCKETS - 1);
            BucketIndex::Geometric(range * Self::SUB_BUCKETS + sub)
        }
    }

    /// Representative value (midpoint) for a bucket index.
    fn bucket_value(idx: BucketIndex) -> u64 {
        match idx {
            BucketIndex::Linear(i) => i as u64 * Self::LINEAR_STEP + Self::LINEAR_STEP / 2,
            BucketIndex::Geometric(i) => {
                let range = i / Self::SUB_BUCKETS;
                let sub = (i % Self::SUB_BUCKETS) as u64;
                let base = Self::LINEAR_LIMIT << range;
                let width = (base / Self::SUB_BUCKETS as u64).max(1);
                base + sub * width + width / 2
            }
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of all samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (bucket-midpoint approximation).
    ///
    /// Returns 0 for an empty histogram. `q >= 1.0` returns the max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q.max(0.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        let mut seen = 0u64;
        for (i, &c) in self.linear.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(BucketIndex::Linear(i)).min(self.max).max(self.min);
            }
        }
        for (i, &c) in self.geometric.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(BucketIndex::Geometric(i)).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.linear.iter_mut().zip(&other.linear) {
            *a += b;
        }
        for (a, b) in self.geometric.iter_mut().zip(&other.geometric) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Resets the histogram to empty.
    pub fn clear(&mut self) {
        self.linear.iter_mut().for_each(|c| *c = 0);
        self.geometric.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean_ns", &(self.mean() as u64))
            .field("p50_ns", &self.quantile(0.5))
            .field("p99_ns", &self.quantile(0.99))
            .field("max_ns", &self.max)
            .finish()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BucketIndex {
    Linear(usize),
    Geometric(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn single_sample_is_exact_in_linear_region() {
        let mut h = Histogram::new();
        h.record(42_500);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42_500);
        assert_eq!(h.max(), 42_500);
        // Bucket midpoint for 42µs bucket is 42.5µs.
        assert_eq!(h.quantile(0.5), 42_500);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [100u64, 200, 300, 400] {
            h.record(v);
        }
        assert_eq!(h.mean(), 250.0);
    }

    #[test]
    fn quantiles_are_ordered() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i * 977); // spread across linear region and beyond
        }
        let p10 = h.quantile(0.10);
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p999 = h.quantile(0.999);
        assert!(p10 <= p50 && p50 <= p90 && p90 <= p999, "{p10} {p50} {p90} {p999}");
    }

    #[test]
    fn geometric_region_bounded_relative_error() {
        let mut h = Histogram::new();
        let v = 123_456_789u64; // ~123 ms, far in geometric region
        h.record(v);
        let q = h.quantile(0.5);
        let err = (q as f64 - v as f64).abs() / v as f64;
        assert!(err < 2.0 / Histogram::SUB_BUCKETS as f64, "err={err}");
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(5_000, 10);
        for _ in 0..10 {
            b.record(5_000);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.quantile(0.9), b.quantile(0.9));
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(1234, 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000_000);
    }

    #[test]
    fn merge_with_empty_preserves_extrema() {
        let mut a = Histogram::new();
        a.record(500);
        let b = Histogram::new();
        a.merge(&b);
        assert_eq!(a.min(), 500);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(2);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn quantile_one_returns_max() {
        let mut h = Histogram::new();
        h.record(77);
        h.record(1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.5) > 0);
    }

    #[test]
    fn bucket_index_monotone_nondecreasing() {
        // Bucket order must follow value order so quantile walks are correct.
        let mut last = (0usize, 0usize); // (region, idx): region 0 = linear
        let mut v = 1u64;
        while v < u64::MAX / 4 {
            let cur = match Histogram::bucket_index(v) {
                BucketIndex::Linear(i) => (0, i),
                BucketIndex::Geometric(i) => (1, i),
            };
            assert!(cur >= last, "v={v} cur={cur:?} last={last:?}");
            last = cur;
            v = v.saturating_mul(2) / 2 + v / 3 + 1;
        }
    }
}
