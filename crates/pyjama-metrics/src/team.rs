//! Fork-join team counters for the persistent `omp parallel` thread pool.
//!
//! Every `parallel` region *leases* pre-spawned pool workers instead of
//! spawning OS threads, and the hot-team fast path skips even the lease
//! when back-to-back regions have the same composition. These counters
//! make that machinery observable: a healthy steady state shows
//! `threads_spawned` flat (the pool stopped growing), `threads_reused`
//! tracking `member_activations`, and `regions_hot` close to
//! `regions_forked`. The barrier pair shows how often the spin-then-park
//! join resolved within its spin budget (`barrier_spins`) versus having
//! to park a thread (`barrier_parks`).
//!
//! Conservation law: every member activation is served either by a thread
//! spawned for it or by a reused pooled thread, so once all regions have
//! joined,
//!
//! ```text
//! threads_spawned + threads_reused == member_activations
//! ```
//!
//! ([`TeamStats::activations_conserved`]; asserted by the root
//! `omp_pool` acceptance tests).

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative fork-join pool counters. Increments are single relaxed
/// atomic adds so recording does not perturb the region hot path.
#[derive(Debug, Default)]
pub struct TeamCounters {
    regions_forked: AtomicU64,
    regions_hot: AtomicU64,
    threads_spawned: AtomicU64,
    threads_reused: AtomicU64,
    member_activations: AtomicU64,
    barrier_spins: AtomicU64,
    barrier_parks: AtomicU64,
}

impl TeamCounters {
    /// An all-zero counter set, usable in `static` position.
    pub const fn new() -> Self {
        TeamCounters {
            regions_forked: AtomicU64::new(0),
            regions_hot: AtomicU64::new(0),
            threads_spawned: AtomicU64::new(0),
            threads_reused: AtomicU64::new(0),
            member_activations: AtomicU64::new(0),
            barrier_spins: AtomicU64::new(0),
            barrier_parks: AtomicU64::new(0),
        }
    }

    /// A parallel region forked (any team size, pooled or serial).
    pub fn record_region_forked(&self) {
        self.regions_forked.fetch_add(1, Ordering::Relaxed);
    }

    /// A region reused the caller's cached hot team (no lease round-trip).
    pub fn record_region_hot(&self) {
        self.regions_hot.fetch_add(1, Ordering::Relaxed);
    }

    /// The pool spawned a new OS worker thread.
    pub fn record_thread_spawned(&self) {
        self.threads_spawned.fetch_add(1, Ordering::Relaxed);
    }

    /// A member activation was served by an already-running pooled thread.
    pub fn record_thread_reused(&self) {
        self.threads_reused.fetch_add(1, Ordering::Relaxed);
    }

    /// A pool worker started running a team member for one region.
    pub fn record_member_activation(&self) {
        self.member_activations.fetch_add(1, Ordering::Relaxed);
    }

    /// A barrier wait resolved within its bounded spin phase.
    pub fn record_barrier_spin(&self) {
        self.barrier_spins.fetch_add(1, Ordering::Relaxed);
    }

    /// A barrier wait exhausted its spin budget and parked.
    pub fn record_barrier_park(&self) {
        self.barrier_parks.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> TeamStats {
        TeamStats {
            regions_forked: self.regions_forked.load(Ordering::Relaxed),
            regions_hot: self.regions_hot.load(Ordering::Relaxed),
            threads_spawned: self.threads_spawned.load(Ordering::Relaxed),
            threads_reused: self.threads_reused.load(Ordering::Relaxed),
            member_activations: self.member_activations.load(Ordering::Relaxed),
            barrier_spins: self.barrier_spins.load(Ordering::Relaxed),
            barrier_parks: self.barrier_parks.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter. Increments racing the reset land on either
    /// side of it; quiesce all regions first for exact figures, or diff
    /// two [`snapshot`](Self::snapshot)s with [`TeamStats::since`].
    pub fn reset(&self) {
        self.regions_forked.store(0, Ordering::Relaxed);
        self.regions_hot.store(0, Ordering::Relaxed);
        self.threads_spawned.store(0, Ordering::Relaxed);
        self.threads_reused.store(0, Ordering::Relaxed);
        self.member_activations.store(0, Ordering::Relaxed);
        self.barrier_spins.store(0, Ordering::Relaxed);
        self.barrier_parks.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of [`TeamCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TeamStats {
    /// Parallel regions forked (including single-thread regions).
    pub regions_forked: u64,
    /// Regions served by the caller's cached hot team (lease skipped).
    pub regions_hot: u64,
    /// OS threads the pool spawned.
    pub threads_spawned: u64,
    /// Member activations served by an existing pooled thread.
    pub threads_reused: u64,
    /// Team-member activations on pool workers (the caller/master is not
    /// counted: it is neither spawned nor leased).
    pub member_activations: u64,
    /// Barrier waits that resolved inside the spin budget.
    pub barrier_spins: u64,
    /// Barrier waits that parked after exhausting the spin budget.
    pub barrier_parks: u64,
}

impl TeamStats {
    /// Counter growth between an earlier snapshot and this one (saturating,
    /// so a reset in between reads as zero rather than wrapping).
    pub fn since(&self, earlier: &TeamStats) -> TeamStats {
        TeamStats {
            regions_forked: self.regions_forked.saturating_sub(earlier.regions_forked),
            regions_hot: self.regions_hot.saturating_sub(earlier.regions_hot),
            threads_spawned: self.threads_spawned.saturating_sub(earlier.threads_spawned),
            threads_reused: self.threads_reused.saturating_sub(earlier.threads_reused),
            member_activations: self
                .member_activations
                .saturating_sub(earlier.member_activations),
            barrier_spins: self.barrier_spins.saturating_sub(earlier.barrier_spins),
            barrier_parks: self.barrier_parks.saturating_sub(earlier.barrier_parks),
        }
    }

    /// The pool's conservation law: with all regions joined, every member
    /// activation consumed exactly one spawn or one reuse.
    pub fn activations_conserved(&self) -> bool {
        self.threads_spawned + self.threads_reused == self.member_activations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let c = TeamCounters::new();
        assert_eq!(c.snapshot(), TeamStats::default());
        assert!(c.snapshot().activations_conserved());
    }

    #[test]
    fn increments_are_visible_in_snapshot() {
        let c = TeamCounters::new();
        c.record_region_forked();
        c.record_region_forked();
        c.record_region_hot();
        c.record_thread_spawned();
        c.record_thread_reused();
        c.record_thread_reused();
        c.record_member_activation();
        c.record_member_activation();
        c.record_member_activation();
        c.record_barrier_spin();
        c.record_barrier_park();
        let s = c.snapshot();
        assert_eq!(s.regions_forked, 2);
        assert_eq!(s.regions_hot, 1);
        assert_eq!(s.threads_spawned, 1);
        assert_eq!(s.threads_reused, 2);
        assert_eq!(s.member_activations, 3);
        assert_eq!(s.barrier_spins, 1);
        assert_eq!(s.barrier_parks, 1);
        assert!(s.activations_conserved());
    }

    #[test]
    fn reset_zeroes_and_since_deltas() {
        let c = TeamCounters::new();
        c.record_region_forked();
        c.record_thread_spawned();
        let s1 = c.snapshot();
        c.record_region_forked();
        c.record_region_hot();
        c.record_thread_reused();
        c.record_member_activation();
        let delta = c.snapshot().since(&s1);
        assert_eq!(delta.regions_forked, 1);
        assert_eq!(delta.regions_hot, 1);
        assert_eq!(delta.threads_spawned, 0);
        assert_eq!(delta.threads_reused, 1);
        assert_eq!(delta.member_activations, 1);
        assert!(delta.activations_conserved());
        c.reset();
        assert_eq!(c.snapshot(), TeamStats::default());
    }

    #[test]
    fn conservation_law_detects_imbalance() {
        let c = TeamCounters::new();
        c.record_thread_spawned();
        assert!(
            !c.snapshot().activations_conserved(),
            "a spawn with no activation must violate the law"
        );
        c.record_member_activation();
        assert!(c.snapshot().activations_conserved());
    }

    #[test]
    fn concurrent_increments_conserve_counts() {
        let c = std::sync::Arc::new(TeamCounters::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_member_activation();
                        c.record_thread_reused();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.member_activations, 4000);
        assert_eq!(s.threads_reused, 4000);
        assert!(s.activations_conserved());
    }
}
