//! Model ports of pyjama's core lock-free protocols — the Chase–Lev deque,
//! the eventcount parker, the fork-join slot, the injector shutdown, the
//! config-snapshot cell and the worker-retire drain — written against the
//! [`crate::shim`] layer so the checker can explore their interleavings.
//!
//! ## Port-sync discipline
//!
//! These are **manual, line-faithful ports**, not cfg-swapped production
//! code: putting the checker inside `pyjama-runtime` would drag it onto the
//! production dependency graph and force shim types through hot paths. The
//! cost is drift risk, paid down two ways:
//!
//! 1. every model function cites the file/function it ports
//!    (`deque.rs::pop`, `parker.rs::notify`, `pool.rs::signal_done`) and
//!    keeps the same operation order and memory orderings, and
//! 2. the production modules carry a reciprocal comment pointing here, so
//!    a reviewer touching an ordering knows a model must move with it.
//!
//! ## Mutations
//!
//! Each model takes a [`Mutation`] that re-introduces one specific bug —
//! usually a weakened ordering or a dropped protocol step. The scenario
//! suite asserts the checker *catches* every mutation and *passes* the
//! faithful port; that asymmetry is the evidence the checker has teeth
//! (a checker that passes everything is indistinguishable from one that
//! checks nothing).

pub mod config_cell;
pub mod deque;
pub mod parker;
pub mod pool_join;

/// A deliberately re-introduced bug for checker-teeth tests. `None` is the
/// faithful port; every other variant must be caught by the scenario suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Faithful port — must pass every scenario.
    None,
    /// `cell.rs::publish`: swap the snapshot pointer *before* writing the
    /// snapshot's contents. A reader landing in between observes a torn
    /// (generation, contents) pair — exactly what the contents-then-Release
    /// swap order forbids.
    CellPublishPtrFirst,
    /// `deque.rs::pop`: drop the SeqCst fence between the bottom decrement
    /// and the top read, and keep the bottom store buffered (Relaxed). The
    /// classic Chase–Lev store→load hazard: a thief can double-claim the
    /// last item.
    DequePopSkipFence,
    /// `deque.rs::push`: publish the new bottom before writing the item
    /// slot. A thief can steal an uninitialised slot.
    DequePushBottomFirst,
    /// `deque.rs::steal`: take the item without the claiming top CAS. Two
    /// thieves (or thief and owner) both return the same item.
    DequeStealSkipCas,
    /// `deque.rs::steal_half`: when the claiming top CAS loses the race,
    /// keep the already-read item anyway instead of discarding the whole
    /// batch. The winner of the CAS also claims that item — double claim.
    DequeStealHalfKeepOnCasFail,
    /// `parker.rs::notify`: skip setting the permit when the target is not
    /// currently parked. The notify-between-check-and-park window becomes a
    /// lost wakeup (deadlock).
    ParkerNotifySkipPermit,
    /// `parker.rs::await_until_inner` as it was before PR 6: a timed park
    /// that returns by timeout clears `woke_with_no_work`, so
    /// timeout-then-idle cycles never count as spurious. Caught by the
    /// spurious-accounting assertion scenario.
    ParkerTimeoutNotSpurious,
    /// `pool.rs::run_worker`: store `done` *before* the last touch of the
    /// job's shared state. The joiner can observe done and retire the frame
    /// while the worker still writes into it.
    PoolDoneBeforeLastTouch,
    /// `pool.rs::Slot::publish`: skip the notify when the worker flagged
    /// itself parked. Lost wakeup: the worker sleeps forever on a full
    /// slot.
    PoolPublishSkipNotify,
    /// `worker.rs::retire_park`: park on a shrink without draining the own
    /// deque into the injector. The stranded regions are unreachable until
    /// an unrelated grow or shutdown — their waiters deadlock.
    RetireSkipDrain,
    /// `worker.rs::run_loop` shutdown path: return immediately on observing
    /// shutdown instead of performing the final injector drain. Accepted
    /// posts are dropped — `executed + rejected != posted`.
    ShutdownSkipFinalDrain,
}
