//! Model ports of the control plane's two PR-9 protocols: the leaky-epoch
//! [`ConfigCell`] publish/read pair (`pyjama-control/src/cell.rs`) and the
//! live-shrink worker-retire drain handshake
//! (`pyjama-runtime/src/worker.rs::retire_park` / `run_loop` / `resize`).
//!
//! Port map:
//! - [`ModelConfigCell::read`]    ⇔ `cell.rs::ConfigCell::read`
//! - [`ModelConfigCell::publish`] ⇔ `cell.rs::ConfigCell::publish`
//!   (the `AtomicPtr` is modelled as an `AtomicUsize` index into a
//!   never-reused slab — the shim has no pointer atomics, and "slab slots
//!   are retired, never freed" is exactly the leaky-epoch reclamation rule,
//!   so the reduction *is* the protocol)
//! - [`ModelRetirePool::run_loop`]    ⇔ `worker.rs::run_loop` (injector +
//!   own deque only: sibling stealing is dropped because a steal can only
//!   *mask* a missing retire drain, never substitute for it — the injector
//!   is the designated rescue path the drain feeds)
//! - [`ModelRetirePool::retire_park`] ⇔ `worker.rs::retire_park`
//! - [`ModelRetirePool::resize`]      ⇔ `worker.rs::WorkerTarget::resize`
//!   (thread spawning elided: model threads stay alive retired-parked,
//!   which is the production steady state after one grow/shrink cycle)
//! - [`ModelRetirePool::shutdown`]    ⇔ `worker.rs::WorkerTarget::shutdown`
//!
//! The config-cell invariant is the one `cell.rs` promises in its module
//! docs: a reader never observes a generation without the exact contents
//! published with it (here: `payload == generation + 1`), and generations
//! are monotone per reader. The retire invariant is the resize contract:
//! every region accepted before a shrink is executed *without* waiting for
//! a later grow or shutdown to rescue it.

use crate::models::parker::ModelWakeSignal;
use crate::models::Mutation;
use crate::shim::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::shim::sync::Mutex;

// ------------------------------------------------------------ config cell

/// Payload sentinel for a slab slot nothing was published into yet. Chosen
/// so it can never satisfy the `payload == generation + 1` invariant.
const UNWRITTEN: u64 = 0;

struct CellSlot {
    /// ⇔ `Snapshot::generation`.
    generation: AtomicU64,
    /// ⇔ `Snapshot::config`, collapsed to one word whose published value is
    /// always `generation + 1` (mirrors the production torn-pair test that
    /// encodes the generation into `Config::workers`).
    payload: AtomicU64,
}

/// ⇔ `cell.rs::ConfigCell`: one-`Acquire`-load reader, mutex-serialized
/// publisher, retired snapshots kept alive for the cell's lifetime.
pub struct ModelConfigCell {
    /// The snapshot slab. Slot 0 is the pre-publish default (⇔ the static
    /// `INITIAL` snapshot); publish hands out fresh slots and old ones are
    /// never reused — the leaky-epoch rule that makes `read` sound.
    slots: Vec<CellSlot>,
    /// ⇔ `ConfigCell::current` (`AtomicPtr<Snapshot>` as a slab index).
    current: AtomicUsize,
    /// ⇔ the retire-list mutex: serializes publishers, making generations
    /// strictly increasing without a counter CAS. Holds the next free slot.
    publish_lock: Mutex<usize>,
    mutation: Mutation,
}

impl ModelConfigCell {
    pub fn new(capacity: usize, mutation: Mutation) -> Self {
        let slots = (0..capacity)
            .map(|i| CellSlot {
                generation: AtomicU64::named(&format!("cell.slot{i}.gen"), 0),
                // Slot 0 must itself satisfy the invariant (generation 0,
                // payload 1); unpublished slots hold the sentinel.
                payload: AtomicU64::named(
                    &format!("cell.slot{i}.payload"),
                    if i == 0 { 1 } else { UNWRITTEN },
                ),
            })
            .collect();
        ModelConfigCell {
            slots,
            current: AtomicUsize::named("cell.current", 0),
            publish_lock: Mutex::named("cell.publish_lock", 1),
            mutation,
        }
    }

    /// ⇔ `ConfigCell::read`: one `Acquire` load of the pointer, then plain
    /// reads through it. Returns `(generation, payload)`.
    pub fn read(&self) -> (u64, u64) {
        let idx = self.current.load(Ordering::Acquire);
        let slot = &self.slots[idx];
        (slot.generation.load(Ordering::Relaxed), slot.payload.load(Ordering::Relaxed))
    }

    /// ⇔ `ConfigCell::publish`: build the snapshot's contents, then `swap`
    /// the pointer (an RMW — on TSO it commits the content stores before
    /// the new pointer becomes visible). Returns the published generation.
    pub fn publish(&self) -> u64 {
        let mut next = self.publish_lock.lock();
        let generation = self.read().0 + 1;
        let idx = *next;
        *next += 1;
        assert!(idx < self.slots.len(), "scenario under-sized the slab");
        let slot = &self.slots[idx];
        if self.mutation == Mutation::CellPublishPtrFirst {
            // BUG: publish the pointer before the snapshot's contents. The
            // content stores sit in the publisher's buffer until the next
            // flush point (the unlock), so a reader scheduled in between
            // observes the new index over an unwritten slot — the torn
            // (generation, contents) pair the Release swap exists to forbid.
            self.current.swap(idx, Ordering::Release);
            slot.generation.store(generation, Ordering::Relaxed);
            slot.payload.store(generation + 1, Ordering::Relaxed);
        } else {
            slot.generation.store(generation, Ordering::Relaxed);
            slot.payload.store(generation + 1, Ordering::Relaxed);
            self.current.swap(idx, Ordering::Release);
        }
        generation
    }
}

// --------------------------------------------------- worker retire drain

struct RetireSlot {
    /// ⇔ `Slot::deque` (owner-only pops; jobs are opaque ids). The mutex
    /// stands in for the Chase–Lev deque, whose own protocol is checked
    /// separately in [`crate::models::deque`].
    deque: Mutex<Vec<u64>>,
    /// ⇔ `Slot::parked` — eventcount wake candidacy. Stays `false` through
    /// a retire so `wake_one` never picks a retired worker.
    parked: AtomicBool,
    /// ⇔ `Slot::retired`.
    retired: AtomicBool,
    signal: ModelWakeSignal,
}

/// ⇔ `worker.rs::Inner` reduced to the retire handshake: a FIFO injector
/// with its shutdown protocol, per-slot deques, the live-resize target and
/// the eventcount park. `executed` lets scenarios assert the conservation
/// law; `done` releases a scenario thread the moment the expected number of
/// regions has run, so a stranded region surfaces as a checker deadlock
/// instead of a silent count mismatch at shutdown (shutdown's final drain
/// would rescue it and hide the bug).
pub struct ModelRetirePool {
    injector: Mutex<InjectorState>,
    injector_len: AtomicUsize,
    shutdown_flag: AtomicBool,
    /// ⇔ `Inner::target_threads`.
    target: AtomicUsize,
    slots: Vec<RetireSlot>,
    pub executed: AtomicUsize,
    remaining: AtomicUsize,
    done: ModelWakeSignal,
    mutation: Mutation,
}

struct InjectorState {
    jobs: Vec<u64>,
    shutdown: bool,
}

impl ModelRetirePool {
    /// `expect` is the number of regions the scenario will post; executing
    /// the last one notifies [`Self::wait_done`].
    pub fn new(workers: usize, expect: usize, mutation: Mutation) -> Self {
        ModelRetirePool {
            injector: Mutex::named(
                "pool.injector",
                InjectorState { jobs: Vec::new(), shutdown: false },
            ),
            injector_len: AtomicUsize::named("pool.inj_len", 0),
            shutdown_flag: AtomicBool::named("pool.shutdown", false),
            target: AtomicUsize::named("pool.target", workers),
            slots: (0..workers)
                .map(|i| RetireSlot {
                    deque: Mutex::named(&format!("slot{i}.deque"), Vec::new()),
                    parked: AtomicBool::named(&format!("slot{i}.parked"), false),
                    retired: AtomicBool::named(&format!("slot{i}.retired"), false),
                    signal: ModelWakeSignal::new(Mutation::None),
                })
                .collect(),
            executed: AtomicUsize::named("pool.executed", 0),
            remaining: AtomicUsize::named("pool.remaining", expect),
            done: ModelWakeSignal::new(Mutation::None),
            mutation,
        }
    }

    /// Member-thread push onto its own deque (⇔ a `nowait` region posted
    /// from worker context). Owner-called before entering `run_loop`, so no
    /// wake is needed — the owner's own acquire pass finds it.
    pub fn push_local(&self, me: usize, job: u64) {
        self.slots[me].deque.lock().push(job);
    }

    /// ⇔ `Inner::has_pending`, restricted to the injector. Production also
    /// scans the member deques because stealing makes them reachable from
    /// any worker; with stealing elided (module docs) a deque is private to
    /// its owner, so pool-visible pending work is the injector alone.
    fn has_pending(&self) -> bool {
        self.injector_len.load(Ordering::SeqCst) > 0
    }

    /// ⇔ `Inner::wake_one`: first parked (non-retired) slot.
    fn wake_one(&self) {
        for slot in self.slots.iter() {
            if slot.parked.load(Ordering::SeqCst) {
                slot.signal.notify();
                return;
            }
        }
    }

    /// ⇔ `Inner::acquire` minus sibling stealing (see module docs): own
    /// deque first, then the injector.
    fn acquire(&self, me: usize) -> Option<u64> {
        if let Some(job) = self.slots[me].deque.lock().pop() {
            return Some(job);
        }
        let job = {
            let mut g = self.injector.lock();
            let job = g.jobs.pop();
            if job.is_some() {
                self.injector_len.fetch_sub(1, Ordering::SeqCst);
            }
            job
        };
        if job.is_some() && self.has_pending() {
            // Cascade ⇔ `acquire`'s injector branch.
            self.wake_one();
        }
        job
    }

    /// ⇔ `Inner::run`: count the execution and release a finished waiter.
    fn run(&self, _job: u64) {
        self.executed.fetch_add(1, Ordering::SeqCst);
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.done.notify();
        }
    }

    /// Blocks the calling scenario thread until `expect` regions have run.
    /// Deliberately *not* gated on shutdown: a shrink that strands a region
    /// leaves this parked forever, which the checker reports as deadlock.
    pub fn wait_done(&self) {
        while self.remaining.load(Ordering::SeqCst) > 0 {
            self.done.park();
        }
    }

    /// ⇔ `worker.rs::run_loop`: retire check, acquire/execute, shutdown
    /// final drain, eventcount park.
    pub fn run_loop(&self, me: usize) {
        loop {
            if me >= self.target.load(Ordering::SeqCst)
                && !self.shutdown_flag.load(Ordering::SeqCst)
            {
                self.retire_park(me);
                continue;
            }
            if let Some(job) = self.acquire(me) {
                self.run(job);
                continue;
            }
            if self.shutdown_flag.load(Ordering::SeqCst) {
                while let Some(job) = self.acquire(me) {
                    self.run(job);
                }
                return;
            }
            let slot = &self.slots[me];
            slot.parked.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if self.has_pending() || self.shutdown_flag.load(Ordering::SeqCst) {
                slot.parked.store(false, Ordering::SeqCst);
                continue;
            }
            slot.signal.park();
            slot.parked.store(false, Ordering::SeqCst);
        }
    }

    /// ⇔ `Inner::retire_park`: drain own deque into the injector under the
    /// injector lock, flag retired, cascade a wake to a survivor, park
    /// until grow or shutdown.
    fn retire_park(&self, me: usize) {
        let slot = &self.slots[me];
        if self.mutation != Mutation::RetireSkipDrain {
            let mut g = self.injector.lock();
            let mut deque = slot.deque.lock();
            while let Some(job) = deque.pop() {
                g.jobs.push(job);
                self.injector_len.fetch_add(1, Ordering::SeqCst);
            }
        }
        // BUG (RetireSkipDrain): park with regions still on our deque. No
        // survivor can reach them (the owner is the only popper), so they
        // sit stranded until an unrelated grow or shutdown — their waiters
        // deadlock.
        slot.retired.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if self.has_pending() {
            self.wake_one();
        }
        while me >= self.target.load(Ordering::SeqCst)
            && !self.shutdown_flag.load(Ordering::SeqCst)
        {
            slot.signal.park();
        }
        slot.retired.store(false, Ordering::SeqCst);
    }

    /// ⇔ `WorkerTarget::resize` (shrink wakes the shrunk-away workers so
    /// they observe the lowered target; grow wakes retired slots — thread
    /// spawning elided, see module docs).
    pub fn resize(&self, n: usize) {
        let old = self.target.swap(n, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if n > old {
            for i in old..n {
                self.slots[i].signal.notify();
            }
        } else {
            for i in n..old {
                self.slots[i].signal.notify();
            }
        }
    }

    /// ⇔ `WorkerTarget::shutdown` minus the joins (scenarios join the shim
    /// threads themselves).
    pub fn shutdown(&self) {
        self.injector.lock().shutdown = true;
        self.shutdown_flag.store(true, Ordering::SeqCst);
        for slot in self.slots.iter() {
            slot.signal.notify();
        }
    }
}
