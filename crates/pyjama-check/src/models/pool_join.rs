//! Model ports of the omp pool's fork-join slot protocol
//! (`pyjama-omp/src/pool.rs`) and the runtime injector's shutdown
//! protocol (`pyjama-runtime/src/worker.rs`).
//!
//! Port map:
//! - [`ModelSlot::publish`]     ⇔ `pool.rs::Worker::publish`
//! - [`ModelSlot::next_job`]    ⇔ `pool.rs::Worker::next_job`
//!   (spin budget taken as 0 — the model goes straight to the park path,
//!   which is the interesting one; spinning adds schedules, not states)
//! - [`ModelSlot::signal_done`] ⇔ `pool.rs::Worker::signal_done`
//! - [`ModelSlot::wait_done`]   ⇔ `pool.rs::Worker::wait_done`
//! - [`ModelSlot::worker_run`]  ⇔ `pool.rs::worker_loop` body
//! - [`ModelPool`]              ⇔ `pool.rs::lease`/`release` + the hot-team
//!   take-out discipline of `with_workers`
//! - [`ModelInjector`]          ⇔ `worker.rs::post`/`run_loop` idle-park /
//!   `shutdown` / final drain

use crate::models::Mutation;
use crate::shim::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::shim::sync::{Condvar, Mutex};

/// Sentinel for "no job value"; scenarios use small positive job ids.
pub const NO_JOB: u64 = u64::MAX;

/// ⇔ `pool.rs::Slot` + `Worker`: the single-producer/single-consumer
/// fork-join mailbox. The leader-stack-borrowing `Job` is modelled as a
/// `u64` job id; the worker's "last touch of the job" is a write of
/// `job * 2` into `frame`, standing in for results written through the
/// erased borrow into the leader's frame.
pub struct ModelSlot {
    full: AtomicBool,
    parked: AtomicBool,
    done: AtomicBool,
    joiner_parked: AtomicBool,
    job: AtomicU64,
    /// The "leader's stack frame": written by the worker as its last touch.
    pub frame: AtomicU64,
    lock: Mutex<()>,
    cond: Condvar,
    mutation: Mutation,
}

impl ModelSlot {
    pub fn new(mutation: Mutation) -> Self {
        ModelSlot {
            full: AtomicBool::named("slot.full", false),
            parked: AtomicBool::named("slot.parked", false),
            done: AtomicBool::named("slot.done", false),
            joiner_parked: AtomicBool::named("slot.joiner_parked", false),
            job: AtomicU64::named("slot.job", NO_JOB),
            frame: AtomicU64::named("slot.frame", NO_JOB),
            lock: Mutex::named("slot.lock", ()),
            cond: Condvar::named("slot.cond"),
            mutation,
        }
    }

    /// Leaseholder side. ⇔ `Worker::publish`: job write, SeqCst full
    /// publish, lock-protected notify iff the worker flagged itself parked.
    pub fn publish(&self, job: u64) {
        self.job.store(job, Ordering::Relaxed);
        self.full.store(true, Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) {
            if self.mutation == Mutation::PoolPublishSkipNotify {
                // BUG: leave a parked worker asleep on a full slot.
                return;
            }
            let _g = self.lock.lock();
            self.cond.notify_one();
        }
    }

    /// Worker side. ⇔ `Worker::next_job` with spin budget 0: park-path
    /// only — flag parked under the lock, re-check full, wait.
    pub fn next_job(&self) -> u64 {
        while !self.full.load(Ordering::SeqCst) {
            let mut g = self.lock.lock();
            self.parked.store(true, Ordering::SeqCst);
            if !self.full.load(Ordering::SeqCst) {
                self.cond.wait(&mut g);
            }
            self.parked.store(false, Ordering::SeqCst);
        }
        let job = self.job.load(Ordering::Relaxed);
        self.full.store(false, Ordering::SeqCst);
        job
    }

    /// Worker side. ⇔ `Worker::signal_done`.
    pub fn signal_done(&self) {
        self.done.store(true, Ordering::SeqCst);
        if self.joiner_parked.load(Ordering::SeqCst) {
            let _g = self.lock.lock();
            self.cond.notify_all();
        }
    }

    /// Leaseholder side. ⇔ `Worker::wait_done` with spin budget 0.
    pub fn wait_done(&self) {
        while !self.done.load(Ordering::SeqCst) {
            let mut g = self.lock.lock();
            self.joiner_parked.store(true, Ordering::SeqCst);
            if !self.done.load(Ordering::SeqCst) {
                self.cond.wait(&mut g);
            }
            self.joiner_parked.store(false, Ordering::SeqCst);
        }
        self.done.store(false, Ordering::SeqCst);
    }

    /// ⇔ one iteration of `pool.rs::worker_loop`: consume a job, run the
    /// member (here: write the result into the leader's frame — the last
    /// touch), then signal done. Returns the job it ran.
    pub fn worker_run(&self) -> u64 {
        let job = self.next_job();
        if self.mutation == Mutation::PoolDoneBeforeLastTouch {
            // BUG: report done while the job's shared state is still about
            // to be written. The joiner may retire the frame first.
            self.signal_done();
            self.frame.store(job.wrapping_mul(2), Ordering::Relaxed);
        } else {
            self.frame.store(job.wrapping_mul(2), Ordering::Relaxed);
            self.signal_done();
        }
        job
    }
}

/// ⇔ `pool.rs::POOL` + `lease`/`release`: worker identities only. Leasing
/// never blocks — shortfall "spawns" fresh ids — so concurrent and nested
/// regions cannot deadlock against the pool.
pub struct ModelPool {
    idle: Mutex<Vec<u64>>,
    next_id: AtomicUsize,
}

impl ModelPool {
    pub fn new() -> Self {
        ModelPool {
            idle: Mutex::named("pool.idle", Vec::new()),
            next_id: AtomicUsize::named("pool.next_id", 0),
        }
    }

    /// ⇔ `pool.rs::lease`: pooled workers first, spawn the shortfall.
    pub fn lease(&self, k: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(k);
        {
            let mut idle = self.idle.lock();
            while out.len() < k {
                match idle.pop() {
                    Some(w) => out.push(w),
                    None => break,
                }
            }
        }
        while out.len() < k {
            out.push(self.next_id.fetch_add(1, Ordering::SeqCst) as u64);
        }
        out
    }

    /// ⇔ `pool.rs::release`.
    pub fn release(&self, workers: Vec<u64>) {
        if !workers.is_empty() {
            self.idle.lock().extend(workers);
        }
    }
}

impl Default for ModelPool {
    fn default() -> Self {
        Self::new()
    }
}

/// ⇔ `worker.rs`: the shared injector with its shutdown protocol and the
/// idle worker's eventcount park. Jobs are opaque ids; `executed` and
/// `rejected` make the conservation law `executed + rejected == posted`
/// checkable by scenarios.
pub struct ModelInjector {
    /// Queue + shutdown flag, both only mutated under this lock
    /// (⇔ `worker.rs` taking the injector lock in `post` and `shutdown`).
    queue: Mutex<InjState>,
    /// ⇔ `injector_len`: incremented under the lock by an accepted post.
    len: AtomicUsize,
    /// ⇔ the SeqCst shutdown atomic read by workers outside the lock.
    shutdown_flag: AtomicBool,
    /// ⇔ the idle worker's `parked` flag in the eventcount protocol.
    parked: AtomicBool,
    signal: super::parker::ModelWakeSignal,
    pub executed: AtomicUsize,
    pub rejected: AtomicUsize,
    mutation: Mutation,
}

struct InjState {
    jobs: Vec<u64>,
    shutdown: bool,
}

impl ModelInjector {
    pub fn new(mutation: Mutation) -> Self {
        ModelInjector {
            queue: Mutex::named("inj.queue", InjState { jobs: Vec::new(), shutdown: false }),
            len: AtomicUsize::named("inj.len", 0),
            shutdown_flag: AtomicBool::named("inj.shutdown", false),
            parked: AtomicBool::named("inj.parked", false),
            signal: super::parker::ModelWakeSignal::new(Mutation::None),
            executed: AtomicUsize::named("inj.executed", 0),
            rejected: AtomicUsize::named("inj.rejected", 0),
            mutation,
        }
    }

    /// ⇔ `worker.rs::post`: accept/reject under the injector lock (the len
    /// increment — an RMW, hence a TSO flush — happens inside it), then
    /// fence and wake. Returns whether the post was accepted.
    pub fn post(&self, job: u64) -> bool {
        {
            let mut g = self.queue.lock();
            if g.shutdown {
                drop(g);
                self.rejected.fetch_add(1, Ordering::SeqCst);
                return false;
            }
            g.jobs.push(job);
            self.len.fetch_add(1, Ordering::SeqCst);
        }
        fence(Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) {
            self.signal.notify();
        }
        true
    }

    /// ⇔ `worker.rs::shutdown`: flip the flag under the injector lock (so
    /// it serializes against every accept decision), then publish it SeqCst
    /// and wake the parked worker for its final drain.
    pub fn shutdown(&self) {
        {
            let mut g = self.queue.lock();
            g.shutdown = true;
        }
        self.shutdown_flag.store(true, Ordering::SeqCst);
        self.signal.notify();
    }

    fn take(&self) -> Option<u64> {
        let mut g = self.queue.lock();
        let job = g.jobs.pop();
        if job.is_some() {
            self.len.fetch_sub(1, Ordering::SeqCst);
        }
        job
    }

    /// ⇔ `worker.rs::run_loop` for an injector-only worker: execute while
    /// work is pending, park via the eventcount when idle, and on observing
    /// shutdown perform the final drain before exiting.
    ///
    /// The checked invariant (the satellite-3 scenario): every *accepted*
    /// post is executed — acceptance under the lock happens-before the
    /// SeqCst shutdown read that gates the drain, so the drain must see it.
    pub fn worker_loop(&self) {
        loop {
            if let Some(_job) = self.take() {
                self.executed.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            if self.shutdown_flag.load(Ordering::SeqCst) {
                if self.mutation != Mutation::ShutdownSkipFinalDrain {
                    // Final drain: posts accepted before the flag flipped
                    // are still queued; executing them keeps the
                    // conservation law intact.
                    while let Some(_job) = self.take() {
                        self.executed.fetch_add(1, Ordering::SeqCst);
                    }
                }
                // BUG (ShutdownSkipFinalDrain): exit with accepted posts
                // still queued — `executed + rejected < posted`.
                return;
            }
            // Eventcount park ⇔ `run_loop`: advertise parked, fence, then
            // re-check for pending work or shutdown before sleeping.
            self.parked.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if self.len.load(Ordering::SeqCst) > 0 || self.shutdown_flag.load(Ordering::SeqCst) {
                self.parked.store(false, Ordering::SeqCst);
                continue;
            }
            self.signal.park();
            self.parked.store(false, Ordering::SeqCst);
        }
    }
}
