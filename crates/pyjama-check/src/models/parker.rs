//! Model port of `pyjama-runtime/src/parker.rs` — the permit-based
//! [`WakeSignal`] eventcount and the `await_until_inner` barrier loop's
//! spurious-wake accounting.
//!
//! Port map:
//! - [`ModelWakeSignal::notify`]     ⇔ `parker.rs::WakeSignal::notify`
//! - [`ModelWakeSignal::park`]       ⇔ `parker.rs::WakeSignal::park`
//! - [`ModelWakeSignal::park_timed`] ⇔ `parker.rs::WakeSignal::park_until`
//!   (the deadline is abstracted: the scheduler may fire the timeout at
//!   any moment, so every wake-vs-deadline race is explored)
//! - [`model_await`]                 ⇔ `parker.rs::await_until_inner`
//!   (help sources collapsed to one work counter; the caller deadline is
//!   modelled as "a timed park timed out")

use crate::models::Mutation;
use crate::shim::sync::{Condvar, Mutex};

struct SignalState {
    permit: bool,
    parked: bool,
}

/// ⇔ `parker.rs::WakeSignal`: one-thread parker with permit semantics.
pub struct ModelWakeSignal {
    state: Mutex<SignalState>,
    cond: Condvar,
    mutation: Mutation,
}

impl ModelWakeSignal {
    pub fn new(mutation: Mutation) -> Self {
        ModelWakeSignal {
            state: Mutex::named("signal.state", SignalState { permit: false, parked: false }),
            cond: Condvar::named("signal.cond"),
            mutation,
        }
    }

    /// ⇔ `WakeSignal::notify`: store the permit, wake the owner if parked.
    pub fn notify(&self) {
        let mut g = self.state.lock();
        if self.mutation == Mutation::ParkerNotifySkipPermit && !g.parked {
            // BUG: only wake a currently-parked owner. A notify landing in
            // the window between the owner's "no work" check and its park
            // is dropped on the floor — the lost wakeup the permit exists
            // to prevent.
            drop(g);
            return;
        }
        g.permit = true;
        let parked = g.parked;
        drop(g);
        if parked {
            self.cond.notify_all();
        }
    }

    /// ⇔ `WakeSignal::park`: consume a pending permit or block for one.
    pub fn park(&self) {
        let mut g = self.state.lock();
        if g.permit {
            g.permit = false;
            return;
        }
        g.parked = true;
        while !g.permit {
            self.cond.wait(&mut g);
        }
        g.permit = false;
        g.parked = false;
    }

    /// ⇔ `WakeSignal::park_until`, deadline abstracted to a scheduler
    /// choice. Returns `true` if a permit was consumed, `false` on timeout.
    pub fn park_timed(&self) -> bool {
        let mut g = self.state.lock();
        if g.permit {
            g.permit = false;
            return true;
        }
        g.parked = true;
        while !g.permit {
            if self.cond.wait_timed(&mut g) {
                break;
            }
        }
        g.parked = false;
        let notified = g.permit;
        g.permit = false;
        notified
    }
}

/// What [`model_await`] observed, with ground truth alongside the
/// protocol's own accounting so a scenario can assert they agree.
pub struct AwaitOutcome {
    pub finished: bool,
    /// No-work wakeups as counted by the (possibly mutated) protocol logic
    /// — what `COUNTERS.record_spurious()` would have seen.
    pub spurious: u64,
    /// Ground truth: parks whose wakeup (notify *or* timeout) was followed
    /// by a no-work iteration or the deadline exit.
    pub actual_idle_wakes: u64,
}

/// ⇔ `parker.rs::await_until_inner`, reduced to its accounting skeleton:
/// `finished`/`take_work` stand in for the task handle and the help
/// sources (both are scenario-provided closures running on shim state),
/// and the caller deadline fires when a timed park times out.
///
/// Under [`Mutation::ParkerTimeoutNotSpurious`] this reproduces the
/// pre-PR-6 logic (`woke_with_no_work = notified`), which under-counts:
/// a timeout wake followed by an idle iteration is a real no-work wakeup
/// the old code never recorded.
pub fn model_await(
    signal: &ModelWakeSignal,
    finished: impl Fn() -> bool,
    take_work: impl Fn() -> bool,
    timed: bool,
    mutation: Mutation,
) -> AwaitOutcome {
    let mut spurious = 0u64;
    let mut actual_idle_wakes = 0u64;
    let mut woke_with_no_work = false;
    let mut woke_at_all = false;
    let mut deadline_hit = false;
    loop {
        if finished() {
            return AwaitOutcome { finished: true, spurious, actual_idle_wakes };
        }
        if deadline_hit {
            // Deadline-expiry exit: the wake that got us here delivered no
            // work either, so it must be recorded before returning.
            if woke_with_no_work {
                spurious += 1;
            }
            if woke_at_all {
                actual_idle_wakes += 1;
            }
            return AwaitOutcome { finished: finished(), spurious, actual_idle_wakes };
        }
        if take_work() {
            woke_with_no_work = false;
            woke_at_all = false;
            continue;
        }
        if woke_with_no_work {
            spurious += 1;
        }
        if woke_at_all {
            actual_idle_wakes += 1;
        }
        let notified = if timed {
            let n = signal.park_timed();
            if !n {
                deadline_hit = true;
            }
            n
        } else {
            signal.park();
            true
        };
        woke_at_all = true;
        woke_with_no_work = if mutation == Mutation::ParkerTimeoutNotSpurious {
            // BUG (pre-PR-6): a timeout return reported "not woken", so the
            // following idle iteration was never counted as spurious.
            notified
        } else {
            true
        };
    }
}
