//! Model port of `pyjama-runtime/src/deque.rs` — the Chase–Lev
//! work-stealing deque with the Lê-et-al. (PPoPP 2013) orderings.
//!
//! Fixed capacity, no growth: scenarios use a handful of items, and the
//! grow path is lock-free-publication-only (retired-buffer reclamation),
//! orthogonal to the push/pop/steal ordering protocol checked here.
//!
//! Port map (same operation order, same orderings):
//! - [`ModelDeque::push`]       ⇔ `deque.rs::ChaseLev::push`
//! - [`ModelDeque::pop`]        ⇔ `deque.rs::ChaseLev::pop`
//! - [`ModelDeque::steal`]      ⇔ `deque.rs::ChaseLev::steal`
//! - [`ModelDeque::steal_half`] ⇔ `deque.rs::ChaseLev::steal_half`

use crate::models::Mutation;
use crate::shim::atomic::{fence, AtomicIsize, AtomicU64, Ordering};

/// Result of a steal attempt, mirroring `deque.rs::Steal`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelSteal {
    Item(u64),
    Empty,
    Retry,
}

pub struct ModelDeque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    slots: Vec<AtomicU64>,
    mutation: Mutation,
}

impl ModelDeque {
    pub fn new(cap: usize, mutation: Mutation) -> Self {
        ModelDeque {
            top: AtomicIsize::named("deque.top", 0),
            bottom: AtomicIsize::named("deque.bottom", 0),
            slots: (0..cap)
                .map(|i| AtomicU64::named(&format!("deque.slot[{i}]"), u64::MAX))
                .collect(),
            mutation,
        }
    }

    fn slot(&self, i: isize) -> &AtomicU64 {
        &self.slots[i as usize % self.slots.len()]
    }

    /// Owner-only. ⇔ `ChaseLev::push`: slot write is Relaxed, the bottom
    /// publish is Release — the slot write must not sink below it.
    pub fn push(&self, item: u64) {
        let b = self.bottom.load(Ordering::Relaxed);
        if self.mutation == Mutation::DequePushBottomFirst {
            // BUG: publish bottom before the slot holds the item.
            self.bottom.store(b + 1, Ordering::Release);
            self.slot(b).store(item, Ordering::Relaxed);
            return;
        }
        self.slot(b).store(item, Ordering::Relaxed);
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only. ⇔ `ChaseLev::pop`: decrement bottom, SeqCst fence, read
    /// top; on the last item, race thieves with a SeqCst CAS on top.
    pub fn pop(&self) -> Option<u64> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        if self.mutation != Mutation::DequePopSkipFence {
            fence(Ordering::SeqCst);
        }
        // BUG (DequePopSkipFence): without the fence the Relaxed bottom
        // store sits in the owner's store buffer, so a thief still sees the
        // old bottom while the owner reads top — the store→load hazard.
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let item = self.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Last item: win it from the thieves or concede it.
                if self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    self.bottom.store(b + 1, Ordering::Relaxed);
                    return None;
                }
                self.bottom.store(b + 1, Ordering::Relaxed);
            }
            Some(item)
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief-side. ⇔ `ChaseLev::steal`: top Acquire, SeqCst fence, bottom
    /// Acquire; claim via SeqCst CAS on top.
    pub fn steal(&self) -> ModelSteal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let item = self.slot(t).load(Ordering::Relaxed);
            if self.mutation == Mutation::DequeStealSkipCas {
                // BUG: take the item without winning the claiming CAS; two
                // thieves that both read the same top both return it.
                self.top.store(t + 1, Ordering::SeqCst);
                return ModelSteal::Item(item);
            }
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return ModelSteal::Retry;
            }
            ModelSteal::Item(item)
        } else {
            ModelSteal::Empty
        }
    }

    /// One claim probe inside the [`Self::steal_half`] loop. Faithful port:
    /// identical to [`Self::steal`]. The `DequeStealHalfKeepOnCasFail`
    /// mutant returns the already-read item even when the claiming CAS
    /// lost — whoever won that CAS also claims it, so the item is returned
    /// twice.
    fn steal_half_probe(&self) -> ModelSteal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let item = self.slot(t).load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                if self.mutation == Mutation::DequeStealHalfKeepOnCasFail {
                    // BUG: lost the race for index t but keep the item.
                    return ModelSteal::Item(item);
                }
                return ModelSteal::Retry;
            }
            ModelSteal::Item(item)
        } else {
            ModelSteal::Empty
        }
    }

    /// Thief-side batch. ⇔ `deque.rs::ChaseLev::steal_half`: size the batch
    /// from one racy (top, bottom) observation — at most half the run,
    /// rounded up — then claim one proven single-item CAS at a time, first
    /// item returned, surplus pushed onto the thief's own `dest` deque,
    /// stopping the moment a claim is lost. Returns the first-item result
    /// and how many surplus items moved to `dest`.
    pub fn steal_half(&self, dest: &ModelDeque) -> (ModelSteal, usize) {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return (ModelSteal::Empty, 0);
        }
        let goal = ((b - t) as usize).div_ceil(2);
        let mut first = None;
        let mut moved = 0usize;
        let mut miss = ModelSteal::Empty;
        for _ in 0..goal {
            match self.steal_half_probe() {
                ModelSteal::Item(v) => {
                    if first.is_none() {
                        first = Some(v);
                    } else {
                        dest.push(v);
                        moved += 1;
                    }
                }
                m @ (ModelSteal::Empty | ModelSteal::Retry) => {
                    miss = m;
                    break;
                }
            }
        }
        match first {
            Some(v) => (ModelSteal::Item(v), moved),
            None => (miss, 0),
        }
    }
}
